"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still being able to distinguish the subsystem that
failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ModelError(ReproError):
    """An MPLS network model is malformed or used inconsistently."""


class HeaderError(ModelError):
    """A packet header is invalid or an MPLS operation is undefined on it.

    Corresponds to the *undefined* case of the partial header rewrite
    function of Definition 3 in the paper.
    """


class TopologyError(ModelError):
    """A topology element (router, interface, link) is inconsistent."""


class RoutingError(ModelError):
    """A routing-table entry refers to unknown links or invalid operations."""


class RuleValidationError(RoutingError):
    """A forwarding rule failed builder/loader validation.

    Raised at the point the rule is *declared* (builder call or input
    file entry) rather than deep in network compilation, and carries the
    offending coordinates so tooling can point at the routing-table cell.
    """

    def __init__(
        self,
        message: str,
        router: "str | None" = None,
        in_link: "str | None" = None,
        label: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.router = router
        self.in_link = in_link
        self.label = label


class NotFoundError(ReproError):
    """A named resource (built-in network, job run, …) does not exist.

    Distinguished from the other :class:`ReproError` subclasses so the
    HTTP service can answer 404 for genuinely missing resources while
    invalid *input* (loader/validation failures, malformed parameters)
    stays a 400 — previously every ReproError on a GET masqueraded as
    "not found".
    """


class AnalysisError(ReproError):
    """The dataplane linter was misconfigured (unknown rule code, bad
    failure set) — not a lint finding, a usage failure."""


class QueryError(ReproError):
    """Base class for query-language problems."""


class QuerySyntaxError(QueryError):
    """The query text could not be tokenized or parsed.

    Carries the offending ``position`` (0-based offset into the query
    string) to support caret diagnostics in the CLI.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class QuerySemanticsError(QueryError):
    """The query parsed but refers to unknown routers, labels or interfaces."""


class WeightError(QueryError):
    """A weight expression is malformed or uses an unknown atomic quantity."""


class PdaError(ReproError):
    """A pushdown system or P-automaton is used inconsistently."""


class VerificationError(ReproError):
    """The verification pipeline failed (not a *negative answer*, a failure)."""


class FormatError(ReproError):
    """An input file (XML / JSON / IS-IS extract) is malformed."""


class VerificationTimeout(VerificationError):
    """A verification run exceeded its time budget."""


class FarmError(ReproError):
    """The verification farm was misconfigured or a sweep is malformed."""


class ProbError(ReproError):
    """A probabilistic what-if analysis was misconfigured (bad failure
    probabilities, oversized exhaustive enumeration, …)."""


class NumpyFallbackWarning(RuntimeWarning):
    """A numpy-accelerated path degraded to its pure-Python twin.

    Emitted (with an obs counter alongside) when the vectorized
    saturation core falls back to the interned core, or the incremental
    core's integer rule diff falls back to symbolic diffs. Results are
    identical either way — the warning exists so the performance
    degradation is never silent.
    """
