"""Disk-backed shared artifact store: build once, reuse across processes.

The in-memory :class:`~repro.farm.cache.ArtifactCache` amortizes builds
*within* one process; a production deployment runs N server workers (see
``aalwines serve --workers``), and without sharing, every worker pays
the same compilations again. This module provides the missing tier: a
content-hash-keyed store on disk, safe under concurrent access from any
number of processes.

Layout (everything lives under one root directory)::

    <root>/
        network/<aa>/<key>            # network JSON payloads (text)
        compiled/<aa>/<key>           # pickled CompiledQuery artifacts
        jobs/<id>.json                # cross-process job-run snapshots
        jobs/<id>.cancel              # cancellation markers

where ``<aa>`` is the first two hex digits of the SHA-256 ``<key>``
(a fan-out shard so no directory grows unbounded).

Concurrency protocol — the classic build-once dance:

1. **Readers never lock.** Artifacts are written to a temp file and
   ``os.replace``-d into place, so a visible artifact file is always
   complete.
2. **Builders lock per key.** A process that misses takes an exclusive
   ``fcntl`` lock on ``<key>.lock``, re-checks the artifact (another
   process may have built it while we waited — the double-checked
   pattern), builds, publishes, releases. Two processes racing to build
   the same key therefore produce exactly one build; the loser reads
   the winner's artifact. This is pinned by
   ``tests/farm/test_store.py``.

Artifacts are pure deterministic functions of their content-hash key,
so the store needs no invalidation; ``clear()`` exists for tests and
operators. Pickle failures (an artifact that cannot cross process
boundaries) are counted, never raised — the caller just rebuilds
locally, exactly as if the store were cold.

The process-global store is configured either programmatically
(:func:`configure_store`) or via the ``AALWINES_STORE`` environment
variable, which is how forked/spawned farm pool workers inherit the
parent server's store.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro import obs

try:  # POSIX file locking; the store degrades to lock-free on exotic OSes
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

#: Environment variable naming the store directory; read by
#: :func:`active_store` so farm pool workers find the parent's store.
STORE_ENV = "AALWINES_STORE"


@dataclass
class StoreStats:
    """Hit/miss/build counters of one :class:`SharedArtifactStore`."""

    hits: int = 0
    misses: int = 0
    builds: int = 0
    lock_waits: int = 0
    put_failures: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a JSON-ready mapping."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "lock_waits": self.lock_waits,
            "put_failures": self.put_failures,
        }


class SharedArtifactStore:
    """A content-hash artifact store shared by cooperating processes.

    ``kind`` namespaces artifacts ("network", "compiled", …); ``key`` is
    a content hash (see :func:`repro.farm.cache.hash_text`). Text and
    pickled-object artifacts share one locking protocol.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.stats = StoreStats()
        self._lock = threading.Lock()  # guards stats only

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def path_for(self, kind: str, key: str) -> str:
        """The artifact file path of ``(kind, key)`` (shard directories
        are created on demand)."""
        shard = key[:2] if len(key) > 2 else "xx"
        directory = os.path.join(self.root, kind, shard)
        os.makedirs(directory, exist_ok=True)
        return os.path.join(directory, key)

    def _count(self, field: str, value: int = 1) -> None:
        with self._lock:
            setattr(self.stats, field, getattr(self.stats, field) + value)
        obs.add(f"farm.store.{field}", value)

    # ------------------------------------------------------------------
    # raw bytes under the build-once protocol
    # ------------------------------------------------------------------
    def _read(self, path: str) -> Optional[bytes]:
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def _publish(self, path: str, data: bytes) -> None:
        # Atomic publication: a reader either sees the whole artifact or
        # no artifact, never a partial write.
        fd, temp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(temp, path)
        except BaseException:
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise

    def _locked(self, path: str):
        """An exclusive advisory lock scoped to ``path`` (context manager)."""
        return _KeyLock(self, path + ".lock")

    def get_bytes(self, kind: str, key: str) -> Optional[bytes]:
        """The stored artifact bytes, or None (counts a hit/miss)."""
        data = self._read(self.path_for(kind, key))
        self._count("hits" if data is not None else "misses")
        return data

    def put_bytes(self, kind: str, key: str, data: bytes) -> None:
        """Publish artifact bytes (last writer wins; artifacts are
        deterministic so every writer writes equivalent content)."""
        self._publish(self.path_for(kind, key), data)

    def get_or_build_bytes(
        self, kind: str, key: str, build: Callable[[], bytes]
    ) -> Tuple[bytes, bool]:
        """The artifact bytes, building (once across processes) on miss.

        Returns ``(data, built)`` where ``built`` says *this* call ran
        the builder.
        """
        path = self.path_for(kind, key)
        data = self._read(path)
        if data is not None:
            self._count("hits")
            return data, False
        self._count("misses")
        with self._locked(path):
            data = self._read(path)  # double-check under the lock
            if data is not None:
                self._count("hits")
                return data, False
            data = build()
            self._publish(path, data)
            self._count("builds")
            return data, True

    # ------------------------------------------------------------------
    # text artifacts (network JSON payloads)
    # ------------------------------------------------------------------
    def get_text(self, kind: str, key: str) -> Optional[str]:
        """A stored text artifact, or None."""
        data = self.get_bytes(kind, key)
        return None if data is None else data.decode("utf-8")

    def put_text(self, kind: str, key: str, text: str) -> None:
        """Publish a text artifact."""
        self.put_bytes(kind, key, text.encode("utf-8"))

    def get_or_build_text(
        self, kind: str, key: str, build: Callable[[], str]
    ) -> Tuple[str, bool]:
        """Text variant of :meth:`get_or_build_bytes`."""
        data, built = self.get_or_build_bytes(
            kind, key, lambda: build().encode("utf-8")
        )
        return data.decode("utf-8"), built

    # ------------------------------------------------------------------
    # pickled-object artifacts (compiled queries, saturated baselines)
    # ------------------------------------------------------------------
    def get_object(self, kind: str, key: str) -> Optional[Any]:
        """A stored pickled artifact, or None (also on a corrupt file)."""
        data = self.get_bytes(kind, key)
        if data is None:
            return None
        try:
            return pickle.loads(data)
        except Exception:
            # A torn or version-skewed artifact is a miss, not an error:
            # the caller rebuilds and republishes.
            self._count("put_failures")
            return None

    def put_object(self, kind: str, key: str, value: Any) -> bool:
        """Publish a pickled artifact; False (counted) when ``value``
        cannot cross process boundaries."""
        try:
            data = pickle.dumps(value)
        except Exception:
            self._count("put_failures")
            return False
        self.put_bytes(kind, key, data)
        return True

    def get_or_build_object(
        self, kind: str, key: str, build: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """Object variant of :meth:`get_or_build_bytes`; unpicklable
        build results are returned unstored."""
        path = self.path_for(kind, key)
        value = self.get_object(kind, key)
        if value is not None:
            return value, False
        with self._locked(path):
            value = self.get_object(kind, key)
            if value is not None:
                return value, False
            value = build()
            self._count("builds")
            self.put_object(kind, key, value)
            return value, True

    # ------------------------------------------------------------------
    # job-run snapshots (cross-process /jobs visibility)
    # ------------------------------------------------------------------
    def _jobs_dir(self) -> str:
        directory = os.path.join(self.root, "jobs")
        os.makedirs(directory, exist_ok=True)
        return directory

    def publish_job(self, run_id: str, snapshot: Dict[str, Any]) -> None:
        """Publish a job run's snapshot for sibling server workers."""
        path = os.path.join(self._jobs_dir(), f"{run_id}.json")
        self._publish(path, json.dumps(snapshot).encode("utf-8"))

    def load_job(self, run_id: str) -> Optional[Dict[str, Any]]:
        """A sibling worker's published snapshot of ``run_id``, or None."""
        if os.sep in run_id or run_id.startswith("."):
            return None  # defensive: ids come from URLs
        data = self._read(os.path.join(self._jobs_dir(), f"{run_id}.json"))
        if data is None:
            return None
        try:
            return json.loads(data.decode("utf-8"))
        except ValueError:
            return None

    def list_jobs(self) -> Dict[str, Dict[str, Any]]:
        """Every published job snapshot, keyed by run id."""
        jobs: Dict[str, Dict[str, Any]] = {}
        try:
            names = os.listdir(self._jobs_dir())
        except OSError:
            return jobs
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            snapshot = self.load_job(name[: -len(".json")])
            if snapshot is not None and "id" in snapshot:
                jobs[snapshot["id"]] = snapshot
        return jobs

    def request_job_cancel(self, run_id: str) -> None:
        """Leave a cancellation marker for whichever worker owns the run."""
        if os.sep in run_id or run_id.startswith("."):
            return
        path = os.path.join(self._jobs_dir(), f"{run_id}.cancel")
        self._publish(path, b"cancel\n")

    def job_cancel_requested(self, run_id: str) -> bool:
        """Has a sibling worker requested cancellation of ``run_id``?"""
        return os.path.exists(
            os.path.join(self._jobs_dir(), f"{run_id}.cancel")
        )

    def delete_job(self, run_id: str) -> None:
        """Drop a run's published snapshot and cancel marker (eviction —
        each :class:`~repro.farm.jobs.JobManager` prunes its own runs)."""
        if os.sep in run_id or run_id.startswith("."):
            return
        for suffix in (".json", ".cancel"):
            try:
                os.unlink(os.path.join(self._jobs_dir(), f"{run_id}{suffix}"))
            except OSError:
                pass

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Delete every artifact (tests / operator reset)."""
        import shutil

        for entry in os.listdir(self.root):
            path = os.path.join(self.root, entry)
            if os.path.isdir(path):
                shutil.rmtree(path, ignore_errors=True)
            else:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        with self._lock:
            self.stats = StoreStats()

    def __repr__(self) -> str:
        return f"SharedArtifactStore({self.root!r})"


class _KeyLock:
    """Context manager: an exclusive advisory lock on one lock file."""

    def __init__(self, store: SharedArtifactStore, path: str) -> None:
        self._store = store
        self._path = path
        self._fd: Optional[int] = None

    def __enter__(self) -> "_KeyLock":
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            return self
        self._fd = os.open(self._path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            # Try without blocking first so contention is observable.
            fcntl.flock(self._fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            self._store._count("lock_waits")
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, *_exc: object) -> None:
        if self._fd is not None:
            if fcntl is not None:  # pragma: no branch
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None


# ----------------------------------------------------------------------
# the process-global store
# ----------------------------------------------------------------------

_ACTIVE: Optional[SharedArtifactStore] = None
_ACTIVE_CONFIGURED = False
_ACTIVE_LOCK = threading.Lock()


def configure_store(root: Optional[str]) -> Optional[SharedArtifactStore]:
    """Set (or clear, with None) this process's shared artifact store.

    Also mirrors the choice into ``AALWINES_STORE`` so farm pool workers
    spawned later inherit it. Returns the active store.
    """
    global _ACTIVE, _ACTIVE_CONFIGURED
    with _ACTIVE_LOCK:
        if root is None:
            _ACTIVE = None
            _ACTIVE_CONFIGURED = True
            os.environ.pop(STORE_ENV, None)
        else:
            _ACTIVE = SharedArtifactStore(root)
            _ACTIVE_CONFIGURED = True
            os.environ[STORE_ENV] = _ACTIVE.root
        return _ACTIVE


def active_store() -> Optional[SharedArtifactStore]:
    """This process's shared store: the configured one, else the one
    named by ``AALWINES_STORE``, else None."""
    global _ACTIVE, _ACTIVE_CONFIGURED
    with _ACTIVE_LOCK:
        if _ACTIVE is not None or _ACTIVE_CONFIGURED:
            return _ACTIVE
        root = os.environ.get(STORE_ENV)
        if root:
            _ACTIVE = SharedArtifactStore(root)
            _ACTIVE_CONFIGURED = True
        return _ACTIVE


def reset_store_for_tests() -> None:
    """Forget the process-global store (test isolation hook)."""
    global _ACTIVE, _ACTIVE_CONFIGURED
    with _ACTIVE_LOCK:
        _ACTIVE = None
        _ACTIVE_CONFIGURED = False
