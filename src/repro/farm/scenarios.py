"""What-if scenario generation: one network → a sweep of farm jobs.

The paper's operators ask families of questions, not single queries:
"does the policy still hold if any one link fails?", "under every pair
of failures?", "for each of these 6,000 queries?". This module turns
those families into explicit, independent :class:`Scenario`s —

* :func:`failure_scenarios` — every ≤ k link-failure combination: each
  combination is baked into a degraded network (the 𝓐 operator of
  §2.4 partially evaluated, via
  :func:`repro.model.srlg.degrade_network`) and the query's failure
  bound is pinned to 0, answering the *deterministic* what-if question
  "given exactly these links are down, does a matching trace exist?";
* :func:`link_audit_scenarios` — the ``k = 1`` survivability audit:
  one scenario per link, the sweep NetKAT-style tools run per
  maintenance window;
* :func:`suite_scenarios` — a query-file suite against the intact
  network (the §4.2 operator workload).

Scenarios sharing a failure combination share one degraded network
object, so :func:`scenarios_to_jobs` serializes each distinct variant
once and the farm's artifact cache deduplicates the build work.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from math import comb
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import FarmError
from repro.model.network import MplsNetwork
from repro.model.srlg import degrade_network
from repro.query.ast import Query
from repro.query.parser import parse_query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.analysis.diagnostics import Diagnostic
    from repro.prob.enumerate import FailureScenario

#: Queries enter as one text, a list of texts, or (name, text) pairs.
QueriesArg = Union[str, Iterable[Union[str, Tuple[str, str]]]]


@dataclass(frozen=True)
class Scenario:
    """One independent what-if instance: a query on a network variant."""

    name: str
    network: MplsNetwork
    query: str
    #: Links assumed failed in this variant (empty for the baseline).
    failed_links: Tuple[str, ...] = ()
    #: Pre-flight lint findings for the variant (see :func:`analyze`);
    #: populated only when the sweep was built with ``preflight=True``.
    diagnostics: Tuple["Diagnostic", ...] = ()

    def __repr__(self) -> str:
        failed = ",".join(self.failed_links) or "-"
        return f"Scenario({self.name!r}, failed={failed})"


#: Cross-call preflight memo: (rule-set hash, variant content hash) →
#: network-level findings. Degraded variants are rebuilt per sweep, so
#: an id()-keyed memo re-lints content-identical networks on every call;
#: keying by content (and by the registered rule set, so registering or
#: unregistering a rule invalidates naturally) makes repeated sweeps
#: over the same topology lint-free.
_NETWORK_LINT_MEMO: Dict[Tuple[str, str], Tuple["Diagnostic", ...]] = {}

#: (rule-set hash, variant content hash, query text) → DP007 findings.
#: Keyed by the query *text* — scenario names vary per sweep and must
#: not break the memo.
_QUERY_LINT_MEMO: Dict[Tuple[str, str, str], Tuple["Diagnostic", ...]] = {}

#: Memo size caps; oldest entries are evicted first (insertion order).
_MEMO_CAP = 256


def _memo_put(memo: Dict, key: object, value: object) -> None:
    if len(memo) >= _MEMO_CAP:
        memo.pop(next(iter(memo)))
    memo[key] = value


def clear_preflight_memo() -> None:
    """Drop the cross-call preflight memos (test isolation hook)."""
    _NETWORK_LINT_MEMO.clear()
    _QUERY_LINT_MEMO.clear()


def preflight_scenarios(scenarios: List[Scenario]) -> List[Scenario]:
    """Lint every distinct network variant and attach the findings.

    Scenarios sharing a variant (the common case: one degraded network
    × many queries) are linted once — the lint cost of a sweep is per
    *variant*, not per job — and the results are memoized across calls
    by variant *content*, so re-running a sweep (or sweeping overlapping
    link sets) never re-lints a network whose diagnostics cannot have
    changed. Failure combinations are already baked into the variants,
    so each is linted with an empty assumed-failure set. Each scenario
    additionally gets the query-aware findings (DP007) for its own
    query, memoized per (variant, query text).
    """
    from repro import obs
    from repro.analysis import LintConfig, analyze, rule_codes
    from repro.farm.cache import hash_text
    from repro.io.json_format import network_to_json

    ruleset = hash_text(",".join(rule_codes()))
    fingerprint_of: Dict[int, str] = {}
    attached: List[Scenario] = []
    for scenario in scenarios:
        fingerprint = fingerprint_of.get(id(scenario.network))
        if fingerprint is None:
            fingerprint = hash_text(network_to_json(scenario.network))
            fingerprint_of[id(scenario.network)] = fingerprint

        network_key = (ruleset, fingerprint)
        network_findings = _NETWORK_LINT_MEMO.get(network_key)
        if network_findings is None:
            obs.add("farm.preflight.lint_runs")
            network_findings = analyze(scenario.network).diagnostics
            _memo_put(_NETWORK_LINT_MEMO, network_key, network_findings)
        else:
            obs.add("farm.preflight.memo_hits")

        query_findings: Tuple["Diagnostic", ...] = ()
        if "DP007" in rule_codes():
            query_key = (ruleset, fingerprint, scenario.query)
            query_findings = _QUERY_LINT_MEMO.get(query_key)  # type: ignore[assignment]
            if query_findings is None:
                obs.add("farm.preflight.lint_runs")
                query_findings = analyze(
                    scenario.network,
                    config=LintConfig.of(enabled=["DP007"]),
                    queries=[("query", scenario.query)],
                ).diagnostics
                _memo_put(_QUERY_LINT_MEMO, query_key, query_findings)
            else:
                obs.add("farm.preflight.memo_hits")

        findings = network_findings + query_findings
        attached.append(
            replace(scenario, diagnostics=findings) if findings else scenario
        )
    return attached


def preflight_index(
    scenarios: Sequence[Scenario],
) -> Dict[int, Tuple["Diagnostic", ...]]:
    """Map scenario index → findings, for scenarios that have any.

    The farm's job lists are index-aligned with their scenario lists,
    so this is the handoff format :meth:`repro.farm.jobs.JobManager.submit`
    accepts to surface pre-flight findings in run snapshots.
    """
    return {
        index: scenario.diagnostics
        for index, scenario in enumerate(scenarios)
        if scenario.diagnostics
    }


def _named_queries(queries: QueriesArg) -> List[Tuple[str, str]]:
    if isinstance(queries, str):
        return [("query", queries)]
    named: List[Tuple[str, str]] = []
    for entry in queries:
        if isinstance(entry, str):
            named.append((f"q{len(named):04d}", entry))
        else:
            named.append((entry[0], entry[1]))
    if not named:
        raise FarmError("a scenario sweep needs at least one query")
    return named


def _pin_failures(query_text: str, max_failures: int = 0) -> str:
    """Rewrite the query's trailing failure bound ``k``.

    Failure combinations are made explicit in the degraded network, so
    the query itself must stop hypothesizing further failures.
    """
    query = parse_query(query_text)
    pinned = Query(query.initial_header, query.path, query.final_header, max_failures)
    return str(pinned)


def sweep_size(
    link_count: int, max_failures: int, query_count: int = 1,
    include_baseline: bool = True,
) -> int:
    """Number of jobs a failure sweep will generate (before building it)."""
    combos = sum(comb(link_count, size) for size in range(1, max_failures + 1))
    if include_baseline:
        combos += 1
    return combos * query_count


def failure_scenarios(
    network: MplsNetwork,
    queries: QueriesArg,
    max_failures: int = 1,
    links: Optional[Sequence[str]] = None,
    include_baseline: bool = True,
    limit: Optional[int] = 10_000,
    preflight: bool = False,
) -> List[Scenario]:
    """All ≤ ``max_failures`` link-failure combinations × queries.

    ``links`` restricts the failure candidates (default: every link);
    ``limit`` guards against combinatorial blow-up — the sweep size is
    computed up front and a :class:`FarmError` names the excess instead
    of silently truncating. ``include_baseline`` adds the zero-failure
    scenario so a sweep also certifies the intact network. With
    ``preflight=True`` each degraded variant is statically linted
    (:func:`repro.analysis.analyze`) and the findings are attached to
    its scenarios.
    """
    named = _named_queries(queries)
    if max_failures < 0:
        raise FarmError("max_failures must be non-negative")
    if links is None:
        candidates = list(network.link_names())
    else:
        known = set(network.link_names())
        candidates = list(links)
        unknown = [name for name in candidates if name not in known]
        if unknown:
            raise FarmError(f"unknown links in sweep: {', '.join(unknown)}")

    total = sweep_size(
        len(candidates), max_failures, len(named), include_baseline
    )
    if limit is not None and total > limit:
        raise FarmError(
            f"failure sweep would generate {total} jobs (> limit {limit}); "
            "restrict the links, lower max_failures, or raise the limit"
        )

    pinned = [(name, _pin_failures(text)) for name, text in named]
    by_name = {link.name: link for link in network.topology.links}
    scenarios: List[Scenario] = []

    def add_combo(combo: Tuple[str, ...]) -> None:
        if combo:
            failed = {by_name[name] for name in combo}
            tag = f"fail({'+'.join(combo)})"
            variant = degrade_network(
                network, failed, name=f"{network.name}@{tag}"
            )
        else:
            tag = "baseline"
            variant = network
        for query_name, query_text in pinned:
            scenarios.append(
                Scenario(
                    name=f"{query_name}@{tag}",
                    network=variant,
                    query=query_text,
                    failed_links=combo,
                )
            )

    if include_baseline:
        add_combo(())
    for size in range(1, max_failures + 1):
        for combo in itertools.combinations(candidates, size):
            add_combo(combo)
    return preflight_scenarios(scenarios) if preflight else scenarios


def link_audit_scenarios(
    network: MplsNetwork,
    queries: QueriesArg,
    links: Optional[Sequence[str]] = None,
    limit: Optional[int] = 10_000,
    preflight: bool = False,
) -> List[Scenario]:
    """The per-link ``k = 1`` audit: one scenario per single failed link."""
    return failure_scenarios(
        network,
        queries,
        max_failures=1,
        links=links,
        include_baseline=False,
        limit=limit,
        preflight=preflight,
    )


def probabilistic_scenarios(
    network: MplsNetwork,
    query: str,
    failure_scenarios: Sequence["FailureScenario"],
    query_name: str = "query",
) -> Tuple[List[Scenario], List[float]]:
    """Lower probability-ordered failure scenarios to farm scenarios.

    Several enumerated scenarios can fail the *same* link set
    (overlapping SRLGs fire in different combinations); the query's
    verdict only depends on the link set, so each distinct set becomes
    one farm scenario carrying the **sum** of its scenarios'
    probabilities. Returns ``(scenarios, masses)`` index-aligned, with
    distinct link sets in first-seen (i.e. most-likely-first) order —
    the format :func:`repro.prob.sweep.run_probabilistic_sweep` and
    :meth:`repro.farm.jobs.JobManager.submit` consume.
    """
    pinned = _pin_failures(query)
    by_name = {link.name: link for link in network.topology.links}
    index_of: Dict[frozenset, int] = {}
    scenarios: List[Scenario] = []
    masses: List[float] = []
    for outcome in failure_scenarios:
        key = outcome.failed_links
        existing = index_of.get(key)
        if existing is not None:
            masses[existing] += outcome.probability
            continue
        combo = tuple(sorted(key))
        if combo:
            failed = {by_name[name] for name in combo}
            tag = f"fail({'+'.join(combo)})"
            variant = degrade_network(network, failed, name=f"{network.name}@{tag}")
        else:
            tag = "baseline"
            variant = network
        index_of[key] = len(scenarios)
        scenarios.append(
            Scenario(
                name=f"{query_name}@{tag}",
                network=variant,
                query=pinned,
                failed_links=combo,
            )
        )
        masses.append(outcome.probability)
    return scenarios, masses


def suite_scenarios(
    network: MplsNetwork, queries: QueriesArg, preflight: bool = False
) -> List[Scenario]:
    """A query suite against the intact network, one scenario per query."""
    scenarios = [
        Scenario(name=name, network=network, query=text)
        for name, text in _named_queries(queries)
    ]
    return preflight_scenarios(scenarios) if preflight else scenarios


def scenarios_to_jobs(
    scenarios: Sequence[Scenario],
    config: Optional["EngineConfig"] = None,
    timeout: Optional[float] = None,
    baseline: Optional[MplsNetwork] = None,
) -> Tuple[List["FarmJob"], Dict[str, str], Dict[str, MplsNetwork]]:
    """Lower scenarios to the pool's job representation.

    Returns ``(jobs, payloads, prebuilt)``: the picklable job specs,
    the distinct network JSON payloads keyed by content hash, and the
    already-built network objects under the same keys (handed to forked
    workers for free). Scenarios sharing a network object serialize it
    once.

    With ``config.core == "incremental"`` the sweep needs a baseline
    network its variants are deltas of. Pass it as ``baseline``; when
    omitted, the first failure-free scenario's network is used (every
    sweep built with ``include_baseline=True`` has one), falling back to
    the first scenario's network. The baseline is shipped to workers
    like any other artifact and its key is pinned into the config.
    """
    from repro.farm.cache import hash_text
    from repro.farm.pool import EngineConfig, FarmJob
    from repro.io.json_format import network_to_json

    if config is None:
        config = EngineConfig()
    payloads: Dict[str, str] = {}
    prebuilt: Dict[str, MplsNetwork] = {}
    key_of: Dict[int, str] = {}

    def register(network: MplsNetwork) -> str:
        key = key_of.get(id(network))
        if key is None:
            payload = network_to_json(network)
            key = hash_text(payload)
            key_of[id(network)] = key
            payloads[key] = payload
            prebuilt[key] = network
        return key

    if config.core == "incremental" and config.baseline_key is None and scenarios:
        if baseline is None:
            baseline = next(
                (s.network for s in scenarios if not s.failed_links),
                scenarios[0].network,
            )
        config = replace(config, baseline_key=register(baseline))
    elif baseline is not None:
        register(baseline)

    jobs: List[FarmJob] = []
    for scenario in scenarios:
        key = register(scenario.network)
        jobs.append(
            FarmJob(
                name=scenario.name,
                query=scenario.query,
                network_key=key,
                config=config,
                timeout=timeout,
            )
        )
    return jobs, payloads, prebuilt
