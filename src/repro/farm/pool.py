"""The farm's worker pool: fan one sweep out over N processes.

What-if sweeps are embarrassingly parallel — every job is one (network
variant, query) pair verified independently — so the pool is a thin,
careful layer over :class:`concurrent.futures.ProcessPoolExecutor`:

* **Picklable job specs.** A :class:`FarmJob` carries only strings: a
  query, a content-hash key naming its network, and an
  :class:`EngineConfig`. The network JSON payloads travel once per
  worker (through the pool initializer), not once per job.
* **Per-worker artifact reuse.** Workers resolve the key through the
  process-local :func:`~repro.farm.cache.worker_cache`, so a worker
  builds each distinct network variant and engine exactly once no
  matter how many of the sweep's jobs land on it. Under the ``fork``
  start method, variants already built by the parent are inherited
  outright and workers skip even the first build.
* **Crash and timeout containment.** A job that times out or raises a
  :class:`~repro.errors.ReproError` becomes a ``timeout``/``error``
  :class:`~repro.verification.batch.BatchItem`; a worker process that
  dies outright (OOM-kill, segfault) surfaces as ``error`` items for
  the affected jobs — :func:`run_jobs` never raises for per-job
  failures and always returns results aligned with its input order.

The ``max_workers <= 1`` path executes the *same* worker function
in-process, which is both the no-multiprocessing fallback and the
anchor for the farm's serial-equivalence guarantee (see DESIGN.md).
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.errors import FarmError
from repro.farm.cache import worker_cache
from repro.model.network import MplsNetwork
from repro.verification.batch import BatchItem, run_single
from repro.verification.engine import VerificationEngine


@dataclass(frozen=True)
class EngineConfig:
    """Picklable engine settings — everything a worker needs to rebuild
    a :class:`VerificationEngine` identical to the caller's."""

    backend: str = "poststar"
    use_reductions: bool = True
    early_termination: bool = True
    #: Weight vector in CLI text form (``"hops, failures + 3*tunnels"``).
    weight: Optional[str] = None
    #: Static triage mode ("auto" / "off" / "only"); settled scenarios
    #: skip compilation entirely on the worker.
    triage: str = "off"
    #: Saturation core ("interned" / "tuple" / "vectorized" /
    #: "incremental"). Part of
    #: the config — and hence of the worker cache's engine slot — so
    #: switching cores can never serve a result computed by another one.
    core: str = "interned"
    #: Content-hash key of the sweep's baseline network, required by the
    #: incremental core: workers resolve it through the same artifact
    #: cache as variant networks and share one saturated solver family
    #: across all of the baseline's variant jobs.
    baseline_key: Optional[str] = None

    @classmethod
    def from_engine(cls, engine: VerificationEngine) -> "EngineConfig":
        """Capture an engine's settings; raises :class:`FarmError` when
        the engine carries state that cannot cross a process boundary."""
        if engine.distance_of is not None:
            raise FarmError(
                "engines with a custom distance_of callable cannot be "
                "shipped to farm workers; run with jobs=1"
            )
        weight = None
        if engine.weight_vector is not None:
            weight = ", ".join(str(e) for e in engine.weight_vector.expressions)
        return cls(
            backend=engine.backend,
            use_reductions=engine.use_reductions,
            early_termination=engine.early_termination,
            weight=weight,
            triage=engine.triage,
            core=engine.core,
        )

    def build(
        self, network: MplsNetwork, baseline: Optional[MplsNetwork] = None
    ) -> VerificationEngine:
        """Instantiate the configured engine for ``network``."""
        return VerificationEngine(
            network,
            backend=self.backend,
            use_reductions=self.use_reductions,
            early_termination=self.early_termination,
            weight=self.weight,
            triage=self.triage,
            core=self.core,
            baseline=baseline,
            baseline_key=self.baseline_key if baseline is not None else None,
        )


@dataclass(frozen=True)
class FarmJob:
    """One unit of farm work: verify ``query`` on the network stored
    under ``network_key`` with an engine built from ``config``."""

    name: str
    query: str
    network_key: str
    config: EngineConfig = EngineConfig()
    timeout: Optional[float] = None


# ----------------------------------------------------------------------
# worker-side machinery
# ----------------------------------------------------------------------

#: Serialized networks this worker may build, keyed by content hash.
#: Populated by the pool initializer (worker processes) or directly by
#: the in-process path.
_NETWORK_PAYLOADS: Dict[str, str] = {}

#: Pre-built networks inherited from the parent under the ``fork``
#: start method; lets workers skip deserialization entirely.
_PREBUILT: Dict[str, MplsNetwork] = {}


def _init_worker(payloads: Dict[str, str], observe: bool = False) -> None:
    """Pool initializer: receive the sweep's network payloads once.

    ``observe`` mirrors the parent's observability switch into the
    worker process so chunk executions measure their metric deltas.
    """
    _NETWORK_PAYLOADS.update(payloads)
    if observe:
        obs.enable()


def _network_for(key: str) -> MplsNetwork:
    def build() -> MplsNetwork:
        prebuilt = _PREBUILT.get(key)
        if prebuilt is not None:
            return prebuilt
        payload = _NETWORK_PAYLOADS.get(key)
        if payload is None:
            # Shared-store fallback: in a multi-worker deployment the
            # sweep may have been submitted by a *sibling* server
            # process, whose JobManager published the payloads there.
            from repro.farm.store import active_store

            store = active_store()
            if store is not None:
                payload = store.get_text("network", key)
        if payload is None:
            raise FarmError(f"no network registered under key {key[:12]}…")
        from repro.io.json_format import network_from_json

        return network_from_json(payload)

    return worker_cache().network(key, build)


def execute_job(job: FarmJob) -> BatchItem:
    """Run one job in this process, reusing cached artifacts.

    This is the single verification code path of the farm: the process
    pool calls it in workers, and the ``max_workers <= 1`` fallback
    calls it inline.
    """
    network = _network_for(job.network_key)
    baseline: Optional[MplsNetwork] = None
    if job.config.baseline_key is not None:
        # The baseline travels like any other network artifact; the
        # worker resolves it once and every variant job shares the
        # resulting saturated solver family.
        baseline = _network_for(job.config.baseline_key)
    if baseline is not None:
        build = lambda: job.config.build(network, baseline)  # noqa: E731
    else:
        # Keep the no-baseline call unary: EngineConfig subclasses (and
        # older pickled configs) override build(network) without it.
        build = lambda: job.config.build(network)  # noqa: E731
    engine = worker_cache().engine(job.network_key, job.config, build)
    # With a shared store attached, compiled queries of this network
    # variant are reusable across worker processes; the key names them.
    engine.attach_artifact_key(job.network_key)
    return run_single(engine, job.name, job.query, job.timeout)


def execute_chunk(
    chunk: List[FarmJob],
) -> Tuple[List[BatchItem], Optional[Mapping[str, Any]]]:
    """Run a batch of jobs in this process, containing per-job errors.

    The pool dispatches chunks grouped by network variant so that all
    of a variant's queries reuse one worker's cached network and engine
    instead of re-deriving them on whichever workers the scheduler
    happens to pick.

    Returns the items plus, when observation is on in this process, the
    metric delta the chunk produced (``None`` otherwise) so the driver
    can fold worker-side counters into the parent registry.
    """
    before = obs.snapshot() if obs.enabled() else None
    items = [_safe_execute(job) for job in chunk]
    delta = None
    if before is not None:
        delta = obs.diff_snapshots(obs.snapshot(), before)
    return items, delta


# ----------------------------------------------------------------------
# driver side
# ----------------------------------------------------------------------

#: Per-item progress callback (index, total, item) — called in
#: *completion* order, which under parallelism differs from index order.
ProgressCallback = Callable[[int, int, BatchItem], None]


def plan_chunks(network_keys: Sequence[str], max_workers: int) -> List[List[int]]:
    """Group job indices (one per entry of ``network_keys``) into
    dispatch chunks.

    Jobs sharing a network variant stay together so one worker derives
    the variant's network and engine once for all of them; variant
    groups are then packed into ~4 chunks per worker — enough slack for
    load balancing without a dispatch round-trip per job. A variant
    whose group alone exceeds the per-chunk budget is *split* first:
    without the split, a sweep over a single variant collapses into one
    chunk and serializes on one worker no matter how many were asked
    for (a regression the farm cache-counter tests pin down).
    """
    total = len(network_keys)
    if total == 0:
        return []
    target = max(1, 4 * max_workers)
    variant_indices: Dict[str, List[int]] = {}
    for index, key in enumerate(network_keys):
        variant_indices.setdefault(key, []).append(index)
    size_cap = max(1, -(-total // target))  # ceil(total / target)
    groups: List[List[int]] = []
    for group in variant_indices.values():
        for start in range(0, len(group), size_cap):
            groups.append(group[start : start + size_cap])
    chunk_count = min(len(groups), target)
    return [
        [index for group in groups[start::chunk_count] for index in group]
        for start in range(chunk_count)
    ]


def run_jobs(
    jobs: List[FarmJob],
    networks: Dict[str, str],
    max_workers: int = 1,
    progress: Optional[ProgressCallback] = None,
    cancelled: Optional[Callable[[], bool]] = None,
    prebuilt: Optional[Dict[str, MplsNetwork]] = None,
) -> List[Optional[BatchItem]]:
    """Execute every job; returns items aligned with ``jobs``.

    ``networks`` maps content-hash keys to network JSON; ``prebuilt``
    optionally maps the same keys to already-built networks (shared
    with forked workers for free, used directly in-process). A slot is
    ``None`` only when ``cancelled()`` turned true before its job ran;
    every executed job yields a :class:`BatchItem`, with worker crashes
    recorded as ``error`` outcomes rather than raised.
    """
    total = len(jobs)
    results: List[Optional[BatchItem]] = [None] * total
    if total == 0:
        return results

    if max_workers <= 1:
        _NETWORK_PAYLOADS.update(networks)
        if prebuilt:
            _PREBUILT.update(prebuilt)
        try:
            for index, job in enumerate(jobs):
                if cancelled is not None and cancelled():
                    break
                item = _safe_execute(job)
                results[index] = item
                if progress is not None:
                    progress(index, total, item)
        finally:
            for key in prebuilt or ():
                _PREBUILT.pop(key, None)
        return results

    # Parent-side prebuilt networks become visible to fork()ed workers
    # through module globals; under spawn the initializer payload is
    # the (slower) fallback.
    if prebuilt:
        _PREBUILT.update(prebuilt)
    try:
        chunks = plan_chunks([job.network_key for job in jobs], max_workers)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(networks, obs.enabled()),
        ) as pool:
            futures = {
                pool.submit(execute_chunk, [jobs[i] for i in indices]): indices
                for indices in chunks
            }
            for future in concurrent.futures.as_completed(futures):
                indices = futures[future]
                try:
                    items, delta = future.result()
                    if delta is not None:
                        obs.merge(delta)
                except concurrent.futures.CancelledError:
                    continue
                except Exception as error:  # worker crash / pickling failure
                    items = [
                        BatchItem(
                            name=jobs[i].name,
                            query=jobs[i].query,
                            outcome="error",
                            seconds=0.0,
                            error=f"farm worker failed: {error}",
                        )
                        for i in indices
                    ]
                for index, item in zip(indices, items):
                    results[index] = item
                    if progress is not None:
                        progress(index, total, item)
                if cancelled is not None and cancelled():
                    for pending in futures:
                        pending.cancel()
    finally:
        for key in prebuilt or ():
            _PREBUILT.pop(key, None)
    return results


def _safe_execute(job: FarmJob) -> BatchItem:
    """In-process execution with the pool's never-raise contract."""
    try:
        return execute_job(job)
    except Exception as error:
        return BatchItem(
            name=job.name,
            query=job.query,
            outcome="error",
            seconds=0.0,
            error=f"farm worker failed: {error}",
        )
