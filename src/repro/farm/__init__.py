"""The verification farm: parallel what-if sweeps over one snapshot.

The paper's workload is thousands of *independent* queries against one
dataplane (§4.2); this package exploits that structure:

* :mod:`repro.farm.scenarios` — turn one network into a sweep of
  independent what-if jobs (failure combinations, per-link audits,
  query suites);
* :mod:`repro.farm.pool` — execute jobs on a process pool with
  per-worker engine reuse and crash containment;
* :mod:`repro.farm.cache` — the content-hash artifact cache that keeps
  N workers from redoing identical network builds and compilations;
* :mod:`repro.farm.jobs` — asynchronous runs with live progress and
  cancellation (the server's job API).

Entry points most callers want: ``BatchVerifier(engine, jobs=N)`` for
plain suites, or ``scenarios → scenarios_to_jobs → run_jobs`` /
``JobManager.submit`` for sweeps.
"""

from repro.farm.cache import ArtifactCache, CacheStats, hash_text, worker_cache
from repro.farm.jobs import FarmRun, JobManager
from repro.farm.pool import EngineConfig, FarmJob, execute_job, run_jobs
from repro.farm.scenarios import (
    Scenario,
    failure_scenarios,
    link_audit_scenarios,
    probabilistic_scenarios,
    scenarios_to_jobs,
    suite_scenarios,
    sweep_size,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "EngineConfig",
    "FarmJob",
    "FarmRun",
    "JobManager",
    "Scenario",
    "execute_job",
    "failure_scenarios",
    "hash_text",
    "link_audit_scenarios",
    "probabilistic_scenarios",
    "run_jobs",
    "scenarios_to_jobs",
    "suite_scenarios",
    "sweep_size",
    "worker_cache",
]
