"""Asynchronous job management for the verification farm.

Sweeps take minutes; HTTP requests should not. The
:class:`JobManager` runs each submitted sweep on a background thread
(which in turn fans out over the worker pool), tracks live progress,
and supports cancellation — the mechanics behind the server's
``POST /jobs`` / ``GET /jobs/<id>`` / ``DELETE /jobs/<id>`` endpoints,
and equally usable as a library (``manager.submit(...)`` →
``run.wait()``).

A :class:`FarmRun` is the unit of tracking: it accumulates
:class:`~repro.verification.batch.BatchItem`s and a running
:class:`~repro.verification.batch.BatchSummary` as jobs complete, so a
poll mid-run sees partial §4.2-style statistics, not just a counter.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.prob.mass import MassTracker
from repro.errors import FarmError
from repro.model.network import MplsNetwork
from repro.verification.batch import BatchItem, BatchSummary
from repro.farm.pool import FarmJob, run_jobs

#: Lifecycle: pending → running → done | failed | cancelled.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

_FINISHED = (DONE, FAILED, CANCELLED)


class FarmRun:
    """One tracked sweep: live progress, partial summary, cancellation.

    ``preflight`` maps job index → static lint findings of that job's
    network variant (see :func:`repro.farm.scenarios.preflight_index`);
    the findings are attached to the items as they complete and appear
    in :meth:`snapshot`.
    """

    def __init__(
        self,
        run_id: str,
        jobs: List[FarmJob],
        description: str = "",
        preflight: Optional[Dict[int, tuple]] = None,
        probabilities: Optional[List[float]] = None,
        prob_threshold: Optional[float] = None,
    ) -> None:
        self.id = run_id
        self.description = description
        self.jobs = jobs
        self.preflight = preflight
        self.total = len(jobs)
        self.state = PENDING
        self.error: Optional[str] = None
        self.created = time.time()
        self.finished_at: Optional[float] = None
        self.items: List[Optional[BatchItem]] = [None] * self.total
        self.summary = BatchSummary()
        self.completed = 0
        self.probabilities = probabilities
        self.prob_early_exit = False
        self.mass: Optional["MassTracker"] = None
        if probabilities is not None:
            if len(probabilities) != len(jobs):
                raise FarmError(
                    "scenario probabilities must align with the job list "
                    f"({len(probabilities)} != {len(jobs)})"
                )
            from repro.prob.mass import MassTracker

            self.mass = MassTracker(threshold=prob_threshold)
        self._lock = threading.Lock()
        self._cancel = threading.Event()
        self._done = threading.Event()

    # -- producer side (manager thread) --------------------------------
    def _record(self, index: int, item: BatchItem) -> None:
        with self._lock:
            if self.preflight:
                item.diagnostics = self.preflight.get(index, ())
            self.items[index] = item
            self.summary.add(item)
            self.completed += 1
            if self.mass is not None and self.probabilities is not None:
                self.mass.record(item.outcome, self.probabilities[index])
                # Early exit: once the threshold verdict cannot flip,
                # stop dispatching the remaining (less likely) scenarios.
                if self.mass.decided and self.completed < self.total:
                    if not self.prob_early_exit:
                        self.prob_early_exit = True
                        obs.add("prob.early_exits")
                    self._cancel.set()

    def _finish(self, state: str, error: Optional[str] = None) -> None:
        with self._lock:
            self.state = state
            self.error = error
            self.finished_at = time.time()
        self._done.set()

    # -- consumer side --------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.state in _FINISHED

    def cancel(self) -> None:
        """Request cancellation; running jobs finish, queued ones don't."""
        self._cancel.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the run finishes; True when it did."""
        return self._done.wait(timeout)

    def snapshot(self, include_items: bool = True) -> Dict[str, Any]:
        """JSON-ready view of the run's current state."""
        with self._lock:
            document: Dict[str, Any] = {
                "id": self.id,
                "description": self.description,
                "state": self.state,
                "total": self.total,
                "completed": self.completed,
                "summary": {
                    "total": self.summary.total,
                    "satisfied": self.summary.satisfied,
                    "unsatisfied": self.summary.unsatisfied,
                    "inconclusive": self.summary.inconclusive,
                    "timeouts": self.summary.timeouts,
                    "errors": self.summary.errors,
                    "triaged": self.summary.triaged,
                    "total_seconds": round(self.summary.total_seconds, 6),
                    "worst_query": self.summary.worst_query,
                },
            }
            if self.error is not None:
                document["error"] = self.error
            if self.mass is not None:
                document["prob"] = {
                    "threshold": self.mass.threshold,
                    "verdict": self.mass.verdict.value,
                    "lower": self.mass.lower,
                    "upper": self.mass.upper,
                    "covered": self.mass.covered,
                    "residual": self.mass.residual,
                    "early_exit": self.prob_early_exit,
                }
            if self.preflight is not None:
                document["preflight"] = {
                    "flagged": len(self.preflight),
                    "diagnostics": sum(len(d) for d in self.preflight.values()),
                }
            if include_items:
                document["items"] = [
                    {
                        "name": item.name,
                        "outcome": item.outcome,
                        "seconds": round(item.seconds, 6),
                        **({"error": item.error} if item.error else {}),
                        **({"triage": item.triage} if item.triage else {}),
                        **(
                            {
                                "diagnostics": [
                                    d.to_dict() for d in item.diagnostics
                                ]
                            }
                            if item.diagnostics
                            else {}
                        ),
                    }
                    for item in self.items
                    if item is not None
                ]
        return document


class JobManager:
    """Registry and executor of asynchronous farm runs."""

    def __init__(self, max_kept: int = 100) -> None:
        self.max_kept = max_kept
        self._runs: "Dict[str, FarmRun]" = {}
        self._threads: Dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count(1)

    def submit(
        self,
        jobs: List[FarmJob],
        networks: Dict[str, str],
        max_workers: int = 1,
        prebuilt: Optional[Dict[str, MplsNetwork]] = None,
        description: str = "",
        preflight: Optional[Dict[int, tuple]] = None,
        probabilities: Optional[List[float]] = None,
        prob_threshold: Optional[float] = None,
    ) -> FarmRun:
        """Register a sweep and start executing it in the background.

        ``probabilities`` (index-aligned with ``jobs``, see
        :func:`repro.farm.scenarios.probabilistic_scenarios`) turns the
        run into a probabilistic sweep: the snapshot carries running
        bounds on P(query holds), and with ``prob_threshold`` the run
        self-cancels once the verdict is decided.
        """
        if not jobs:
            raise FarmError("cannot submit an empty job list")
        run_id = f"job-{next(self._counter):04d}"
        run = FarmRun(
            run_id,
            jobs,
            description=description,
            preflight=preflight,
            probabilities=probabilities,
            prob_threshold=prob_threshold,
        )
        thread = threading.Thread(
            target=self._execute,
            args=(run, networks, max_workers, prebuilt),
            name=f"farm-{run_id}",
            daemon=True,
        )
        with self._lock:
            self._runs[run_id] = run
            self._threads[run_id] = thread
            self._evict_finished()
        run.state = RUNNING
        if obs.enabled():
            obs.add("farm.runs_submitted")
            obs.add("farm.jobs_submitted", len(jobs))
        thread.start()
        return run

    def _execute(
        self,
        run: FarmRun,
        networks: Dict[str, str],
        max_workers: int,
        prebuilt: Optional[Dict[str, MplsNetwork]],
    ) -> None:
        try:
            run_jobs(
                run.jobs,
                networks,
                max_workers=max_workers,
                progress=lambda index, _total, item: run._record(index, item),
                cancelled=run._cancel.is_set,
                prebuilt=prebuilt,
            )
        except Exception as error:  # defensive: run_jobs shouldn't raise
            run._finish(FAILED, error=str(error))
            return
        # A probabilistic early exit is a *successful* completion — the
        # verdict is decided — not a user cancellation.
        cancelled = run._cancel.is_set() and not run.prob_early_exit
        state = CANCELLED if cancelled else DONE
        run._finish(state)
        if obs.enabled():
            obs.add(f"farm.runs_{state}")

    def _evict_finished(self) -> None:
        # Called under self._lock: drop the oldest finished runs beyond
        # the retention bound so a long-lived server doesn't accumulate
        # every sweep it ever ran.
        if len(self._runs) <= self.max_kept:
            return
        for run_id in list(self._runs):
            run = self._runs[run_id]
            if run.finished:
                del self._runs[run_id]
                self._threads.pop(run_id, None)
                if len(self._runs) <= self.max_kept:
                    break

    # -- queries ---------------------------------------------------------
    def get(self, run_id: str) -> Optional[FarmRun]:
        """The run registered under ``run_id``, or None."""
        with self._lock:
            return self._runs.get(run_id)

    def list(self) -> List[FarmRun]:
        """Every retained run, oldest first."""
        with self._lock:
            return list(self._runs.values())

    def cancel(self, run_id: str) -> Optional[FarmRun]:
        """Cancel a run; returns it, or None when unknown."""
        run = self.get(run_id)
        if run is not None:
            run.cancel()
        return run

    def shutdown(self, timeout: float = 5.0) -> None:
        """Cancel everything and wait briefly for the threads to drain."""
        for run in self.list():
            run.cancel()
        with self._lock:
            threads = list(self._threads.values())
        deadline = time.time() + timeout
        for thread in threads:
            thread.join(max(0.0, deadline - time.time()))
