"""Asynchronous job management for the verification farm.

Sweeps take minutes; HTTP requests should not. The
:class:`JobManager` runs each submitted sweep on a background thread
(which in turn fans out over the worker pool), tracks live progress,
and supports cancellation — the mechanics behind the server's
``POST /jobs`` / ``GET /jobs/<id>`` / ``DELETE /jobs/<id>`` endpoints,
and equally usable as a library (``manager.submit(...)`` →
``run.wait()``).

A :class:`FarmRun` is the unit of tracking: it accumulates
:class:`~repro.verification.batch.BatchItem`s and a running
:class:`~repro.verification.batch.BatchSummary` as jobs complete, so a
poll mid-run sees partial §4.2-style statistics, not just a counter.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.prob.mass import MassTracker
from repro.errors import FarmError
from repro.model.network import MplsNetwork
from repro.verification.batch import BatchItem, BatchSummary
from repro.farm.pool import FarmJob, run_jobs

#: Lifecycle: pending → running → done | failed | cancelled.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

_FINISHED = (DONE, FAILED, CANCELLED)


class FarmRun:
    """One tracked sweep: live progress, partial summary, cancellation.

    ``preflight`` maps job index → static lint findings of that job's
    network variant (see :func:`repro.farm.scenarios.preflight_index`);
    the findings are attached to the items as they complete and appear
    in :meth:`snapshot`.
    """

    def __init__(
        self,
        run_id: str,
        jobs: List[FarmJob],
        description: str = "",
        preflight: Optional[Dict[int, tuple]] = None,
        probabilities: Optional[List[float]] = None,
        prob_threshold: Optional[float] = None,
        client: Optional[str] = None,
    ) -> None:
        self.id = run_id
        self.description = description
        self.jobs = jobs
        self.preflight = preflight
        self.client = client
        self.total = len(jobs)
        self.state = PENDING
        self.error: Optional[str] = None
        self.created = time.time()
        self.finished_at: Optional[float] = None
        #: When the owning manager last published this run to the shared
        #: store (monotonic-ish wall clock; publication throttling).
        self._last_publish = 0.0
        self.items: List[Optional[BatchItem]] = [None] * self.total
        self.summary = BatchSummary()
        self.completed = 0
        self.probabilities = probabilities
        self.prob_early_exit = False
        self.mass: Optional["MassTracker"] = None
        if probabilities is not None:
            if len(probabilities) != len(jobs):
                raise FarmError(
                    "scenario probabilities must align with the job list "
                    f"({len(probabilities)} != {len(jobs)})"
                )
            from repro.prob.mass import MassTracker

            self.mass = MassTracker(threshold=prob_threshold)
        self._lock = threading.Lock()
        self._cancel = threading.Event()
        self._done = threading.Event()

    # -- producer side (manager thread) --------------------------------
    def _record(self, index: int, item: BatchItem) -> None:
        with self._lock:
            if self.preflight:
                item.diagnostics = self.preflight.get(index, ())
            self.items[index] = item
            self.summary.add(item)
            self.completed += 1
            if self.mass is not None and self.probabilities is not None:
                self.mass.record(item.outcome, self.probabilities[index])
                # Early exit: once the threshold verdict cannot flip,
                # stop dispatching the remaining (less likely) scenarios.
                if self.mass.decided and self.completed < self.total:
                    if not self.prob_early_exit:
                        self.prob_early_exit = True
                        obs.add("prob.early_exits")
                    self._cancel.set()

    def _finish(
        self,
        state: str,
        error: Optional[str] = None,
        publish: Optional[Any] = None,
    ) -> None:
        with self._lock:
            self.state = state
            self.error = error
            self.finished_at = time.time()
        # Publish the final snapshot *before* releasing waiters: anyone
        # woken by wait() (or an SSE "done" event) may immediately ask a
        # sibling worker, which must not still see the run as running.
        if publish is not None:
            publish()
        self._done.set()

    # -- consumer side --------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.state in _FINISHED

    def cancel(self) -> None:
        """Request cancellation; running jobs finish, queued ones don't."""
        self._cancel.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the run finishes; True when it did."""
        return self._done.wait(timeout)

    def snapshot(self, include_items: bool = True) -> Dict[str, Any]:
        """JSON-ready view of the run's current state."""
        with self._lock:
            document: Dict[str, Any] = {
                "id": self.id,
                "description": self.description,
                "state": self.state,
                "total": self.total,
                "completed": self.completed,
                **({"client": self.client} if self.client else {}),
                "summary": {
                    "total": self.summary.total,
                    "satisfied": self.summary.satisfied,
                    "unsatisfied": self.summary.unsatisfied,
                    "inconclusive": self.summary.inconclusive,
                    "timeouts": self.summary.timeouts,
                    "errors": self.summary.errors,
                    "triaged": self.summary.triaged,
                    "total_seconds": round(self.summary.total_seconds, 6),
                    "worst_query": self.summary.worst_query,
                },
            }
            if self.error is not None:
                document["error"] = self.error
            if self.mass is not None:
                document["prob"] = {
                    "threshold": self.mass.threshold,
                    "verdict": self.mass.verdict.value,
                    "lower": self.mass.lower,
                    "upper": self.mass.upper,
                    "covered": self.mass.covered,
                    "residual": self.mass.residual,
                    "early_exit": self.prob_early_exit,
                }
            if self.preflight is not None:
                document["preflight"] = {
                    "flagged": len(self.preflight),
                    "diagnostics": sum(len(d) for d in self.preflight.values()),
                }
            if include_items:
                document["items"] = [
                    {
                        "name": item.name,
                        "outcome": item.outcome,
                        "seconds": round(item.seconds, 6),
                        **({"error": item.error} if item.error else {}),
                        **({"triage": item.triage} if item.triage else {}),
                        **(
                            {
                                "diagnostics": [
                                    d.to_dict() for d in item.diagnostics
                                ]
                            }
                            if item.diagnostics
                            else {}
                        ),
                    }
                    for item in self.items
                    if item is not None
                ]
        return document


class JobManager:
    """Registry and executor of asynchronous farm runs.

    With a :class:`~repro.farm.store.SharedArtifactStore` attached
    (``store=``), the manager additionally gives *sibling server
    workers* a view of its runs: run ids embed the owning pid (so N
    forked workers never collide), snapshots are published to
    ``<store>/jobs/<id>.json`` (throttled while running, always on
    finish), network payloads are published so any worker's farm pool
    can rebuild them, and a cancellation requested by a sibling (via a
    marker file) is honoured between jobs. :meth:`snapshot_of`,
    :meth:`all_snapshots`, :meth:`request_cancel` and
    :meth:`active_count` transparently cover both local and sibling
    runs — they are what the HTTP layer calls.
    """

    #: Minimum seconds between mid-run snapshot publications.
    publish_interval = 0.2

    def __init__(self, max_kept: int = 100, store: Optional[Any] = None) -> None:
        self.max_kept = max_kept
        self.store = store
        self._runs: "Dict[str, FarmRun]" = {}
        self._threads: Dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count(1)

    def submit(
        self,
        jobs: List[FarmJob],
        networks: Dict[str, str],
        max_workers: int = 1,
        prebuilt: Optional[Dict[str, MplsNetwork]] = None,
        description: str = "",
        preflight: Optional[Dict[int, tuple]] = None,
        probabilities: Optional[List[float]] = None,
        prob_threshold: Optional[float] = None,
        client: Optional[str] = None,
    ) -> FarmRun:
        """Register a sweep and start executing it in the background.

        ``probabilities`` (index-aligned with ``jobs``, see
        :func:`repro.farm.scenarios.probabilistic_scenarios`) turns the
        run into a probabilistic sweep: the snapshot carries running
        bounds on P(query holds), and with ``prob_threshold`` the run
        self-cancels once the verdict is decided. ``client`` attributes
        the run for per-client quotas.
        """
        if not jobs:
            raise FarmError("cannot submit an empty job list")
        if self.store is not None:
            # Pid-qualified ids: every forked server worker counts from
            # 1, so the bare counter would collide in the shared store.
            run_id = f"job-{os.getpid():x}-{next(self._counter):04d}"
        else:
            run_id = f"job-{next(self._counter):04d}"
        run = FarmRun(
            run_id,
            jobs,
            description=description,
            preflight=preflight,
            probabilities=probabilities,
            prob_threshold=prob_threshold,
            client=client,
        )
        thread = threading.Thread(
            target=self._execute,
            args=(run, networks, max_workers, prebuilt),
            name=f"farm-{run_id}",
            daemon=True,
        )
        with self._lock:
            self._runs[run_id] = run
            self._threads[run_id] = thread
            self._evict_finished()
        run.state = RUNNING
        if self.store is not None:
            # Sibling workers' farm pools resolve network payloads from
            # the store (see pool._network_for), and the snapshot makes
            # the run visible on their /jobs endpoints immediately.
            for key, payload in networks.items():
                if self.store.get_text("network", key) is None:
                    self.store.put_text("network", key, payload)
            self._publish(run, force=True)
        if obs.enabled():
            obs.add("farm.runs_submitted")
            obs.add("farm.jobs_submitted", len(jobs))
        thread.start()
        return run

    def _publish(self, run: FarmRun, force: bool = False) -> None:
        """Publish a run's snapshot to the shared store (throttled)."""
        if self.store is None:
            return
        now = time.time()
        if not force and now - run._last_publish < self.publish_interval:
            return
        run._last_publish = now
        try:
            self.store.publish_job(run.id, run.snapshot(include_items=True))
        except OSError:  # store directory vanished; progress goes on
            pass

    def _cancelled(self, run: FarmRun) -> bool:
        """The pool's cancellation probe: local cancel OR a sibling
        worker's marker file in the shared store."""
        if run._cancel.is_set():
            return True
        if self.store is not None and self.store.job_cancel_requested(run.id):
            run.cancel()
            return True
        return False

    def _execute(
        self,
        run: FarmRun,
        networks: Dict[str, str],
        max_workers: int,
        prebuilt: Optional[Dict[str, MplsNetwork]],
    ) -> None:
        def progress(index: int, _total: int, item: BatchItem) -> None:
            run._record(index, item)
            self._publish(run)

        try:
            run_jobs(
                run.jobs,
                networks,
                max_workers=max_workers,
                progress=progress,
                cancelled=lambda: self._cancelled(run),
                prebuilt=prebuilt,
            )
        except Exception as error:  # defensive: run_jobs shouldn't raise
            run._finish(
                FAILED,
                error=str(error),
                publish=lambda: self._publish(run, force=True),
            )
            return
        # A probabilistic early exit is a *successful* completion — the
        # verdict is decided — not a user cancellation.
        cancelled = run._cancel.is_set() and not run.prob_early_exit
        state = CANCELLED if cancelled else DONE
        run._finish(state, publish=lambda: self._publish(run, force=True))
        if obs.enabled():
            obs.add(f"farm.runs_{state}")

    def _evict_finished(self) -> None:
        # Called under self._lock: drop the oldest finished runs beyond
        # the retention bound so a long-lived server doesn't accumulate
        # every sweep it ever ran.
        if len(self._runs) <= self.max_kept:
            return
        for run_id in list(self._runs):
            run = self._runs[run_id]
            if run.finished:
                del self._runs[run_id]
                self._threads.pop(run_id, None)
                if self.store is not None:
                    self.store.delete_job(run_id)
                if len(self._runs) <= self.max_kept:
                    break

    # -- queries ---------------------------------------------------------
    def get(self, run_id: str) -> Optional[FarmRun]:
        """The run registered under ``run_id``, or None."""
        with self._lock:
            return self._runs.get(run_id)

    def list(self) -> List[FarmRun]:
        """Every retained run, oldest first."""
        with self._lock:
            return list(self._runs.values())

    def cancel(self, run_id: str) -> Optional[FarmRun]:
        """Cancel a run; returns it, or None when unknown."""
        run = self.get(run_id)
        if run is not None:
            run.cancel()
        return run

    # -- store-aware views (local runs + sibling workers' runs) ----------
    def snapshot_of(
        self, run_id: str, include_items: bool = True
    ) -> Optional[Dict[str, Any]]:
        """A run's snapshot — live for local runs, last published for a
        sibling worker's run, None when neither knows the id."""
        run = self.get(run_id)
        if run is not None:
            return run.snapshot(include_items=include_items)
        if self.store is None:
            return None
        snapshot = self.store.load_job(run_id)
        if snapshot is None:
            return None
        if not include_items:
            snapshot.pop("items", None)
        return snapshot

    def all_snapshots(self) -> List[Dict[str, Any]]:
        """Item-free snapshots of every visible run: this process's
        (live), plus sibling workers' published ones, oldest-id first."""
        documents: Dict[str, Dict[str, Any]] = {}
        if self.store is not None:
            for run_id, snapshot in self.store.list_jobs().items():
                snapshot.pop("items", None)
                documents[run_id] = snapshot
        for run in self.list():  # local live state wins over published
            documents[run.id] = run.snapshot(include_items=False)
        return [documents[run_id] for run_id in sorted(documents)]

    def request_cancel(self, run_id: str) -> Optional[Dict[str, Any]]:
        """Cancel a visible run, wherever it lives.

        Local runs cancel immediately; a sibling worker's run gets a
        marker file in the store which its owner honours between jobs.
        Returns ``{"id", "state"}`` (the state *before* the owner
        reacts), or None when the id is unknown everywhere.
        """
        run = self.get(run_id)
        if run is not None:
            run.cancel()
            return {"id": run.id, "state": run.state}
        if self.store is None:
            return None
        snapshot = self.store.load_job(run_id)
        if snapshot is None:
            return None
        if snapshot.get("state") not in _FINISHED:
            self.store.request_job_cancel(run_id)
        return {"id": run_id, "state": snapshot.get("state", RUNNING)}

    def active_count(self, client: str) -> int:
        """How many unfinished runs ``client`` owns across all workers
        (the per-client quota's denominator)."""
        local_ids = set()
        count = 0
        for run in self.list():
            local_ids.add(run.id)
            if run.client == client and not run.finished:
                count += 1
        if self.store is not None:
            for run_id, snapshot in self.store.list_jobs().items():
                if run_id in local_ids:
                    continue  # counted live above
                if (
                    snapshot.get("client") == client
                    and snapshot.get("state") not in _FINISHED
                ):
                    count += 1
        return count

    def shutdown(self, timeout: float = 5.0) -> None:
        """Cancel everything and wait briefly for the threads to drain."""
        for run in self.list():
            run.cancel()
        with self._lock:
            threads = list(self._threads.values())
        deadline = time.time() + timeout
        for thread in threads:
            thread.join(max(0.0, deadline - time.time()))
