"""Shared artifact cache for the verification farm.

A what-if sweep turns one network into hundreds of jobs, and many jobs
share setup work: the same degraded network variant appears once per
query of the suite, and every job on a variant needs an engine whose
:class:`~repro.verification.compiler.QueryCompiler` has computed the
same label sets. The farm keys that work by *content hash* — the
SHA-256 of the network's single-file JSON — so any process holding the
same bytes resolves to the same cache slot, and N workers do the
expensive build/compile once per distinct artifact instead of once per
job.

The cache is deliberately small and in-memory: networks and engines
are pure deterministic functions of their inputs, so eviction (LRU,
bounded) is always safe — a re-miss just rebuilds.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Tuple

from repro import obs
from repro.model.network import MplsNetwork


def hash_text(text: str) -> str:
    """Content key of a serialized artifact (SHA-256 hex digest)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, split by artifact kind."""

    network_hits: int = 0
    network_misses: int = 0
    engine_hits: int = 0
    engine_misses: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a JSON-ready mapping."""
        return {
            "network_hits": self.network_hits,
            "network_misses": self.network_misses,
            "engine_hits": self.engine_hits,
            "engine_misses": self.engine_misses,
            "evictions": self.evictions,
        }


class ArtifactCache:
    """Content-hash-keyed memoization of built networks and engines.

    ``network(key, build)`` memoizes the result of ``build()`` under
    ``key`` (a :func:`hash_text` digest); ``engine(key, config,
    network)`` memoizes one verification engine per (network, engine
    config) pair, which is what makes per-worker engine reuse work: the
    compiler's label-set analysis is paid once per distinct pair.

    Thread-safe; the builder callable runs outside the lock would be
    nicer for concurrency but builders are deterministic, so holding
    the lock keeps the "build once" guarantee simple and exact.
    """

    def __init__(self, max_networks: int = 64, max_engines: int = 256) -> None:
        self.max_networks = max_networks
        self.max_engines = max_engines
        self._networks: "OrderedDict[str, MplsNetwork]" = OrderedDict()
        self._engines: "OrderedDict[Tuple[str, Hashable], object]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def network(self, key: str, build: Callable[[], MplsNetwork]) -> MplsNetwork:
        """The network stored under ``key``, building it on first use."""
        with self._lock:
            cached = self._networks.get(key)
            if cached is not None:
                self._networks.move_to_end(key)
                self.stats.network_hits += 1
                obs.add("farm.cache.network_hits")
                return cached
            self.stats.network_misses += 1
            obs.add("farm.cache.network_misses")
            network = build()
            self._networks[key] = network
            while len(self._networks) > self.max_networks:
                self._networks.popitem(last=False)
                self.stats.evictions += 1
                obs.add("farm.cache.evictions")
            return network

    def engine(
        self,
        key: str,
        config: Hashable,
        build: Callable[[], object],
    ) -> object:
        """The engine for (network ``key``, ``config``), built on first use."""
        slot = (key, config)
        with self._lock:
            cached = self._engines.get(slot)
            if cached is not None:
                self._engines.move_to_end(slot)
                self.stats.engine_hits += 1
                obs.add("farm.cache.engine_hits")
                return cached
            self.stats.engine_misses += 1
            obs.add("farm.cache.engine_misses")
            engine = build()
            self._engines[slot] = engine
            while len(self._engines) > self.max_engines:
                self._engines.popitem(last=False)
                self.stats.evictions += 1
                obs.add("farm.cache.evictions")
            return engine

    def compile_memo_stats(self) -> Dict[str, int]:
        """Aggregate compile-memo counters over the cached engines.

        Cached engines keep a :class:`~repro.verification.compiler
        .QueryCompiler` whose per-(query, mode, weight) memo is where a
        sweep's repeated compilations actually get amortized; summing its
        hit/miss counters here makes that visible next to the engine-level
        hit rate. Duck-typed so non-engine artifacts (or engines without
        a compiler) simply contribute nothing.
        """
        with self._lock:
            engines = list(self._engines.values())
        hits = misses = 0
        for engine in engines:
            compiler = getattr(engine, "compiler", None)
            hits += getattr(compiler, "memo_hits", 0)
            misses += getattr(compiler, "memo_misses", 0)
        return {"compile_memo_hits": hits, "compile_memo_misses": misses}

    def clear(self) -> None:
        """Drop every cached artifact and reset the counters."""
        with self._lock:
            self._networks.clear()
            self._engines.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._networks) + len(self._engines)


#: The per-process cache shared by every farm worker function in this
#: process (each pool worker process gets its own copy).
_PROCESS_CACHE = ArtifactCache()


def worker_cache() -> ArtifactCache:
    """This process's shared :class:`ArtifactCache`."""
    return _PROCESS_CACHE
