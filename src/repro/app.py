"""WSGI entry point of the verification service.

The same :class:`~repro.service.core.ServiceCore` that backs the stdlib
``http.server`` transport (:mod:`repro.server`), exposed as a standard
WSGI callable so the service can run under any WSGI server — from the
stdlib's ``wsgiref`` (tests, single process) to a process-managing
server in production::

    # stdlib, single worker:
    python -m wsgiref.simple_server  # or programmatically:
    from wsgiref.simple_server import make_server
    from repro.app import create_app
    with make_server("127.0.0.1", 8080, create_app()) as httpd:
        httpd.serve_forever()

    # any WSGI server, module-level callable:
    #   <wsgi-server> repro.app:application

Configuration comes from the environment when the module-level
``application`` is used: ``AALWINES_STORE`` attaches the shared artifact
store (as everywhere else), and ``AALWINES_RATE_LIMIT=production``
enables the production rate-limit defaults. :func:`create_app` takes the
same knobs programmatically.

SSE streaming (``GET /jobs/<id>/stream``) maps naturally: the WSGI
iterable yields one Server-Sent-Events frame per chunk.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple
from urllib.parse import quote

from repro import obs
from repro.service.core import (
    ServiceCore,
    ServiceRequest,
    _BadRequest,
    error_response,
)
from repro.service.ratelimit import RateLimitConfig, RateLimiter

WsgiApp = Callable[[Dict[str, Any], Callable[..., Any]], Iterable[bytes]]


def create_app(
    core: Optional[ServiceCore] = None,
    store: Optional[str] = None,
    rate_limit: Optional[RateLimitConfig] = None,
    observe: bool = True,
) -> WsgiApp:
    """Build a WSGI application around a (possibly shared) service core.

    ``store`` attaches the shared artifact store (also exported to the
    environment for farm pool workers); ``rate_limit`` enables
    per-client budgets; both are ignored when an explicit ``core`` is
    passed, which carries its own.
    """
    if core is None:
        from repro.farm.jobs import JobManager
        from repro.farm.store import active_store, configure_store
        from repro.server import _NetworkCache

        store_obj = configure_store(store) if store is not None else active_store()
        limiter = RateLimiter(rate_limit) if rate_limit is not None else None
        core = ServiceCore(
            cache=_NetworkCache(),
            jobs=JobManager(store=store_obj),
            limiter=limiter,
        )
    if observe:
        obs.enable()

    def application(
        environ: Dict[str, Any], start_response: Callable[..., Any]
    ) -> Iterable[bytes]:
        try:
            body = _read_body(environ)
        except _BadRequest as error:
            response = error_response(str(error), 400)
        else:
            request = ServiceRequest(
                method=environ.get("REQUEST_METHOD", "GET"),
                target=_target(environ),
                headers=_headers(environ),
                body=body,
                peer=environ.get("REMOTE_ADDR", ""),
            )
            response = core.handle(request)
        headers: List[Tuple[str, str]] = [
            ("Content-Type", response.content_type)
        ]
        headers.extend(response.headers)
        if response.stream is None:
            headers.append(("Content-Length", str(len(response.body))))
            start_response(f"{response.status} {response.reason}", headers)
            return [response.body]
        start_response(f"{response.status} {response.reason}", headers)
        return response.stream

    return application


def _target(environ: Dict[str, Any]) -> str:
    """The raw request target, reconstructed from WSGI's decoded path.

    WSGI hands us ``PATH_INFO`` already percent-decoded while the core
    unquotes exactly once, so the path is re-quoted here to round-trip
    names containing reserved characters.
    """
    path = quote(environ.get("PATH_INFO", "/"), safe="/")
    query = environ.get("QUERY_STRING", "")
    return f"{path}?{query}" if query else path


def _headers(environ: Dict[str, Any]) -> Dict[str, str]:
    """The request headers in their conventional ``Kebab-Case`` names."""
    headers: Dict[str, str] = {}
    for key, value in environ.items():
        if key.startswith("HTTP_"):
            headers[key[5:].replace("_", "-").title()] = value
    if "CONTENT_TYPE" in environ:
        headers["Content-Type"] = environ["CONTENT_TYPE"]
    if "CONTENT_LENGTH" in environ:
        headers["Content-Length"] = environ["CONTENT_LENGTH"]
    return headers


def _read_body(environ: Dict[str, Any]) -> Optional[bytes]:
    """Read the request body; same contract (and same truncation /
    size-limit errors) as the ``http.server`` transport."""
    from repro.server import MAX_BODY_BYTES

    length_header = environ.get("CONTENT_LENGTH")
    if not length_header:
        return None
    try:
        length = int(length_header)
    except ValueError:
        raise _BadRequest(f"invalid Content-Length {length_header!r}")
    if length < 0:
        raise _BadRequest(f"invalid Content-Length {length_header!r}")
    if length > MAX_BODY_BYTES:
        raise _BadRequest(
            f"request body exceeds the {MAX_BODY_BYTES}-byte limit"
        )
    stream = environ.get("wsgi.input")
    if stream is None:
        raise _BadRequest("request body is missing")
    chunks: List[bytes] = []
    remaining = length
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            received = length - remaining
            raise _BadRequest(
                f"request body was truncated "
                f"({received} of {length} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


_DEFAULT_APP: Optional[WsgiApp] = None


def application(
    environ: Dict[str, Any], start_response: Callable[..., Any]
) -> Iterable[bytes]:
    """Module-level WSGI callable (``repro.app:application``), built
    lazily from the environment on the first request so importing this
    module has no side effects."""
    global _DEFAULT_APP
    if _DEFAULT_APP is None:
        rate_limit = None
        if os.environ.get("AALWINES_RATE_LIMIT") == "production":
            rate_limit = RateLimitConfig.production_defaults()
        _DEFAULT_APP = create_app(rate_limit=rate_limit)
    return _DEFAULT_APP(environ, start_response)
