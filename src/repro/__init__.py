"""AalWiNes reproduction: fast and quantitative what-if analysis for
MPLS networks via weighted pushdown automata.

Quickstart::

    from repro import NetworkBuilder, dual_engine

    builder = NetworkBuilder("tiny")
    builder.link("e0", "A", "B")
    builder.link("e1", "B", "C")
    builder.rule("e0", "ip1", "e1")
    network = builder.build()

    result = dual_engine(network).verify("<ip> [.#B] . <ip> 0")
    print(result.summary())

Layers (bottom-up): :mod:`repro.model` (MPLS networks, §2),
:mod:`repro.query` (query language + NFAs, §2.5), :mod:`repro.pda`
(weighted pushdown automata, §4.1), :mod:`repro.verification` (the
dual over/under-approximation engines, §4.2), :mod:`repro.io`
(Appendix A formats), :mod:`repro.datasets` (evaluation workloads,
§5), :mod:`repro.cli`.
"""

from repro.model import (
    Header,
    SharedRiskGroups,
    Label,
    MplsNetwork,
    NetworkBuilder,
    Quantity,
    Topology,
    Trace,
    ip,
    mpls,
    smpls,
)
from repro.query import (
    Query,
    WeightVector,
    parse_query,
    parse_weight_vector,
)
from repro.verification import (
    BatchVerifier,
    ExplicitEngine,
    SrlgEngine,
    Status,
    VerificationEngine,
    VerificationResult,
    dual_engine,
    moped_engine,
    weighted_engine,
)

__version__ = "1.0.0"

__all__ = [
    "BatchVerifier",
    "ExplicitEngine",
    "SharedRiskGroups",
    "SrlgEngine",
    "Header",
    "Label",
    "MplsNetwork",
    "NetworkBuilder",
    "Quantity",
    "Query",
    "Status",
    "Topology",
    "Trace",
    "VerificationEngine",
    "VerificationResult",
    "WeightVector",
    "__version__",
    "dual_engine",
    "ip",
    "moped_engine",
    "mpls",
    "parse_query",
    "parse_weight_vector",
    "smpls",
    "weighted_engine",
]
