"""A single-file JSON network format.

Besides the two-file XML format of Appendix A, the AalWiNes ecosystem
uses a JSON representation of a whole network (topology, coordinates
and routing together); this module provides the equivalent for this
library. The format is self-describing::

    {
      "name": "...",
      "routers": [{"name": "v0", "lat": 46.5, "lng": 7.3}, ...],
      "links": [{"name": "e1", "from": "v0", "to": "v2",
                 "from_interface": "e1", "to_interface": "e1",
                 "weight": 1}, ...],
      "routing": [{"in_link": "e1", "label": "s20", "priority": 1,
                   "out_link": "e4", "ops": ["swap(s21)"]}, ...]
    }

Routing entries with the same (in_link, label, priority) form one
traffic-engineering group, exactly like the table of Figure 1b.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import FormatError
from repro.model.builder import NetworkBuilder
from repro.model.network import MplsNetwork
from repro.model.trace import Trace


def network_to_json(network: MplsNetwork) -> str:
    """Serialize a network to the JSON format."""
    topology = network.topology
    routers: List[Dict[str, Any]] = []
    for router in topology.routers:
        entry: Dict[str, Any] = {"name": router.name}
        if router.coordinates is not None:
            entry["lat"] = router.coordinates.latitude
            entry["lng"] = router.coordinates.longitude
        routers.append(entry)
    links = []
    for link in topology.links:
        link_entry: Dict[str, Any] = {
            "name": link.name,
            "from": link.source.name,
            "to": link.target.name,
            "from_interface": link.source_interface,
            "to_interface": link.target_interface,
            "weight": link.weight,
        }
        # Emitted only when set, so networks without probabilities
        # serialize byte-identically to previous releases.
        if link.failure_probability is not None:
            link_entry["failure_probability"] = link.failure_probability
        links.append(link_entry)
    routing = []
    for in_link, label, groups in network.routing.items():
        for priority, group in enumerate(groups, start=1):
            for entry in group:
                ops = [str(op) for op in entry.operations]
                routing.append(
                    {
                        "in_link": in_link.name,
                        "label": str(label),
                        "priority": priority,
                        "out_link": entry.out_link.name,
                        "ops": ops,
                    }
                )
    payload = {
        "name": network.name,
        "routers": routers,
        "links": links,
        # The full label universe L (Definition 2): labels a network
        # *knows* exceed the ones its rules mention, and queries may
        # reference any of them.
        "labels": [str(label) for label in network.labels],
        "routing": routing,
    }
    return json.dumps(payload, indent=2) + "\n"


def network_from_json(text: str) -> MplsNetwork:
    """Parse the JSON format into a network."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise FormatError(f"malformed network JSON: {error}") from error
    for section in ("name", "routers", "links", "routing"):
        if section not in payload:
            raise FormatError(f"network JSON lacks the {section!r} section")
    builder = NetworkBuilder(payload["name"])
    for router in payload["routers"]:
        if "name" not in router:
            raise FormatError("router entry without a name")
        builder.router(router["name"], router.get("lat"), router.get("lng"))
    for link in payload["links"]:
        raw_probability = link.get("failure_probability")
        if raw_probability is not None:
            if isinstance(raw_probability, bool) or not isinstance(
                raw_probability, (int, float)
            ):
                raise FormatError(
                    f"link {link.get('name')!r}: failure_probability must be "
                    f"a number, got {raw_probability!r}"
                )
            raw_probability = float(raw_probability)
        try:
            builder.link(
                link["name"],
                link["from"],
                link["to"],
                source_interface=link.get("from_interface"),
                target_interface=link.get("to_interface"),
                weight=int(link.get("weight", 1)),
                failure_probability=raw_probability,
            )
        except KeyError as error:
            raise FormatError(f"link entry lacks {error}") from None
    for label_text in payload.get("labels", ()):
        builder.label(label_text)
    for rule in payload["routing"]:
        try:
            priority = int(rule.get("priority", 1))
        except (TypeError, ValueError):
            raise FormatError(
                f"routing entry τ({rule.get('in_link')}, "
                f"{rule.get('label')}): priority "
                f"{rule.get('priority')!r} is not an integer"
            ) from None
        try:
            builder.rule(
                rule["in_link"],
                rule["label"],
                rule["out_link"],
                " ∘ ".join(rule.get("ops", [])),
                priority=priority,
            )
        except KeyError as error:
            raise FormatError(f"routing entry lacks {error}") from None
    return builder.build()


def write_network_json(network: MplsNetwork, path: str) -> None:
    """Write a network to a single JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(network_to_json(network))


def read_network_json(path: str) -> MplsNetwork:
    """Read a network from a single JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return network_from_json(handle.read())


def trace_to_json(trace: Trace) -> str:
    """Serialize a witness trace (the GUI's visualization payload)."""
    steps = [
        {
            "link": step.link.name,
            "from": step.link.source.name,
            "to": step.link.target.name,
            "header": [str(label) for label in step.header],
        }
        for step in trace
    ]
    return json.dumps({"trace": steps}, indent=2) + "\n"
