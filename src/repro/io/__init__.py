"""Input/output formats (Appendix A): vendor-agnostic XML, JSON,
IS-IS extracts and router location data."""

from repro.io.coords import (
    coordinates_from_json,
    coordinates_to_json,
    read_coordinates,
    write_coordinates,
)
from repro.io.isis import (
    MappingEntry,
    RouterExtract,
    network_from_isis,
    network_to_isis,
    parse_mapping_file,
)
from repro.io.json_format import (
    network_from_json,
    network_to_json,
    read_network_json,
    trace_to_json,
    write_network_json,
)
from repro.io.xml_format import (
    network_from_xml,
    read_network,
    routing_to_xml,
    topology_to_xml,
    write_network,
)

__all__ = [
    "MappingEntry",
    "RouterExtract",
    "coordinates_from_json",
    "coordinates_to_json",
    "network_from_isis",
    "network_from_json",
    "network_from_xml",
    "network_to_isis",
    "network_to_json",
    "parse_mapping_file",
    "read_coordinates",
    "read_network",
    "read_network_json",
    "routing_to_xml",
    "topology_to_xml",
    "trace_to_json",
    "write_coordinates",
    "write_network",
    "write_network_json",
]
