"""The vendor-agnostic XML input format (Appendix A of the paper).

The tool's native exchange format splits a network into a *topology*
file and a *routing* file::

    <network>
      <routers>
        <router name="R0">
          <interfaces> <interface name="ae1.11"/> … </interfaces>
        </router> …
      </routers>
      <links>
        <sides>
          <shared_interface interface="et-3/0/0.2" router="R0"/>
          <shared_interface interface="et-1/3/0.2" router="R3"/>
        </sides> …
      </links>
    </network>

    <routes>
      <routings>
        <routing for="R0">
          <destinations>
            <destination from="ae1.11" label="$300292">
              <te-groups>
                <te-group priority="1">
                  <route to="ae5.0">
                    <actions> <action type="swap" label="$300293"/> </actions>
                  </route> …

The appendix only shows the outer structure of ``route.xml``; the
``te-groups`` completion above is this library's (documented) dialect,
chosen to carry exactly the model of Definition 2: prioritized
traffic-engineering groups of (out-interface, operation-sequence)
pairs.

A ``<sides>`` element with two ``shared_interface`` children describes
one physical link and becomes a duplex pair of directed links; a
``directed="true"`` attribute (dialect extension) keeps a single
direction, which the asymmetric-failure model sometimes needs.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Tuple

from repro.errors import FormatError, RuleValidationError, TopologyError
from repro.model.builder import NetworkBuilder
from repro.model.labels import parse_label
from repro.model.network import MplsNetwork
from repro.model.operations import Pop, Push, Swap
from repro.model.topology import Coordinates, Topology


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------


def _links_as_sides(topology: Topology) -> List[Tuple]:
    """Pair up opposite links into physical sides; leftovers stay directed."""
    paired = set()
    sides = []
    for link in topology.links:
        if link.name in paired:
            continue
        reverse = topology.reverse_link(link)
        if (
            reverse is not None
            and reverse.name not in paired
            and reverse.source_interface == link.target_interface
            and reverse.target_interface == link.source_interface
            # A <sides> element carries one failure probability for the
            # whole physical link, so asymmetric directions stay directed.
            and reverse.failure_probability == link.failure_probability
        ):
            paired.add(link.name)
            paired.add(reverse.name)
            sides.append((link, False))
        else:
            paired.add(link.name)
            sides.append((link, True))
    return sides


def topology_to_xml(topology: Topology) -> str:
    """Serialize a topology to the ``topo.xml`` format."""
    root = ET.Element("network")
    routers_el = ET.SubElement(root, "routers")
    for router in topology.routers:
        router_el = ET.SubElement(routers_el, "router", name=router.name)
        interfaces_el = ET.SubElement(router_el, "interfaces")
        for interface in topology.interfaces(router.name):
            ET.SubElement(interfaces_el, "interface", name=interface)
    links_el = ET.SubElement(root, "links")
    for link, directed in _links_as_sides(topology):
        attributes = {"weight": str(link.weight)}
        if directed:
            attributes["directed"] = "true"
        if link.failure_probability is not None:
            attributes["failure_probability"] = repr(link.failure_probability)
        sides_el = ET.SubElement(links_el, "sides", **attributes)
        ET.SubElement(
            sides_el,
            "shared_interface",
            interface=link.source_interface,
            router=link.source.name,
        )
        ET.SubElement(
            sides_el,
            "shared_interface",
            interface=link.target_interface,
            router=link.target.name,
        )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"


def routing_to_xml(network: MplsNetwork) -> str:
    """Serialize the routing table to the ``route.xml`` format."""
    root = ET.Element("routes")
    routings_el = ET.SubElement(root, "routings")
    by_router: Dict[str, List] = {}
    for in_link, label, groups in network.routing.items():
        by_router.setdefault(in_link.target.name, []).append((in_link, label, groups))
    for router_name in sorted(by_router):
        routing_el = ET.SubElement(routings_el, "routing", attrib={"for": router_name})
        destinations_el = ET.SubElement(routing_el, "destinations")
        for in_link, label, groups in by_router[router_name]:
            destination_el = ET.SubElement(
                destinations_el,
                "destination",
                attrib={"from": in_link.target_interface, "label": str(label)},
            )
            te_groups_el = ET.SubElement(destination_el, "te-groups")
            for priority, group in enumerate(groups, start=1):
                group_el = ET.SubElement(
                    te_groups_el, "te-group", priority=str(priority)
                )
                for entry in group:
                    route_el = ET.SubElement(
                        group_el,
                        "route",
                        to=entry.out_link.source_interface,
                    )
                    actions_el = ET.SubElement(route_el, "actions")
                    for op in entry.operations:
                        if isinstance(op, Swap):
                            ET.SubElement(
                                actions_el, "action", type="swap", label=str(op.label)
                            )
                        elif isinstance(op, Push):
                            ET.SubElement(
                                actions_el, "action", type="push", label=str(op.label)
                            )
                        else:
                            ET.SubElement(actions_el, "action", type="pop")
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"


def write_network(network: MplsNetwork, topology_path: str, routing_path: str) -> None:
    """Write a network to ``topo.xml`` / ``route.xml`` files."""
    with open(topology_path, "w", encoding="utf-8") as handle:
        handle.write(topology_to_xml(network.topology))
    with open(routing_path, "w", encoding="utf-8") as handle:
        handle.write(routing_to_xml(network))


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------


def _parse_xml(text: str, expected_root: str) -> ET.Element:
    try:
        root = ET.fromstring(text)
    except ET.ParseError as error:
        raise FormatError(f"malformed XML: {error}") from error
    if root.tag != expected_root:
        raise FormatError(f"expected <{expected_root}> root, found <{root.tag}>")
    return root


def network_from_xml(
    topology_xml: str,
    routing_xml: str,
    name: str = "network",
    coordinates: Optional[Dict[str, Coordinates]] = None,
) -> MplsNetwork:
    """Parse a ``topo.xml`` / ``route.xml`` pair into a network.

    ``coordinates`` optionally supplies router positions (the location
    file of Appendix A.2, parsed by :mod:`repro.io.coords`).
    """
    topology_root = _parse_xml(topology_xml, "network")
    routing_root = _parse_xml(routing_xml, "routes")
    builder = NetworkBuilder(name)

    routers_el = topology_root.find("routers")
    if routers_el is None:
        raise FormatError("topo.xml lacks a <routers> section")
    for router_el in routers_el.iter("router"):
        router_name = router_el.get("name")
        if not router_name:
            raise FormatError("<router> without a name attribute")
        position = (coordinates or {}).get(router_name)
        builder.router(
            router_name,
            position.latitude if position else None,
            position.longitude if position else None,
        )

    links_el = topology_root.find("links")
    if links_el is None:
        raise FormatError("topo.xml lacks a <links> section")
    link_counter = 0
    for sides_el in links_el.iter("sides"):
        shared = sides_el.findall("shared_interface")
        if len(shared) != 2:
            raise FormatError("<sides> must contain exactly two shared_interface")
        (first, second) = shared
        first_router = first.get("router")
        second_router = second.get("router")
        first_if = first.get("interface")
        second_if = second.get("interface")
        if not all((first_router, second_router, first_if, second_if)):
            raise FormatError("<shared_interface> needs router and interface")
        weight = int(sides_el.get("weight", "1"))
        directed = sides_el.get("directed", "false").lower() == "true"
        raw_probability = sides_el.get("failure_probability")
        failure_probability: Optional[float] = None
        if raw_probability is not None:
            try:
                failure_probability = float(raw_probability)
            except ValueError:
                raise FormatError(
                    f"<sides> between {first_router} and {second_router}: "
                    f"failure_probability {raw_probability!r} is not a number"
                ) from None
        builder.link(
            f"link{link_counter}_fw",
            first_router,
            second_router,
            source_interface=first_if,
            target_interface=second_if,
            weight=weight,
            failure_probability=failure_probability,
        )
        if not directed:
            builder.link(
                f"link{link_counter}_bw",
                second_router,
                first_router,
                source_interface=second_if,
                target_interface=first_if,
                weight=weight,
                failure_probability=failure_probability,
            )
        link_counter += 1

    topology = builder.topology
    routings_el = routing_root.find("routings")
    if routings_el is None:
        raise FormatError("route.xml lacks a <routings> section")
    for routing_el in routings_el.iter("routing"):
        router_name = routing_el.get("for")
        if not router_name or not topology.has_router(router_name):
            raise FormatError(f"routing for unknown router {router_name!r}")
        destinations_el = routing_el.find("destinations")
        if destinations_el is None:
            continue
        for destination_el in destinations_el.iter("destination"):
            in_interface = destination_el.get("from")
            label_text = destination_el.get("label")
            if not in_interface or not label_text:
                raise FormatError("<destination> needs from and label attributes")
            try:
                in_link = topology.link_by_in_interface(router_name, in_interface)
            except TopologyError:
                raise RuleValidationError(
                    f"routing at {router_name}: destination "
                    f"({in_interface}, {label_text}) references an unknown "
                    f"incoming interface {in_interface!r}",
                    router=router_name,
                    in_link=in_interface,
                    label=label_text,
                ) from None
            te_groups_el = destination_el.find("te-groups")
            if te_groups_el is None:
                continue
            groups = sorted(
                te_groups_el.findall("te-group"),
                key=lambda el: _parse_priority(el, router_name, label_text),
            )
            for group_el in groups:
                priority = _parse_priority(group_el, router_name, label_text)
                for route_el in group_el.findall("route"):
                    out_interface = route_el.get("to")
                    if not out_interface:
                        raise FormatError("<route> needs a to attribute")
                    try:
                        out_link = topology.link_by_out_interface(
                            router_name, out_interface
                        )
                    except TopologyError:
                        raise RuleValidationError(
                            f"routing at {router_name}: rule "
                            f"τ({in_interface}, {label_text}) references an "
                            f"unknown outgoing interface {out_interface!r}",
                            router=router_name,
                            in_link=in_interface,
                            label=label_text,
                        ) from None
                    operations = []
                    actions_el = route_el.find("actions")
                    if actions_el is not None:
                        for action_el in actions_el.findall("action"):
                            operations.append(_parse_action(action_el))
                    builder.rule(
                        in_link.name,
                        parse_label(label_text),
                        out_link.name,
                        tuple(operations),
                        priority=priority,
                    )
    return builder.build()


def _parse_priority(group_el: ET.Element, router: str, label: str) -> int:
    """A ``<te-group>``'s priority attribute as an int, or a clear error."""
    raw = group_el.get("priority", "1")
    try:
        return int(raw)
    except ValueError:
        raise FormatError(
            f"routing at {router}, label {label}: te-group priority "
            f"{raw!r} is not an integer"
        ) from None


def _parse_action(action_el: ET.Element):
    action_type = action_el.get("type")
    if action_type == "pop":
        return Pop()
    label_text = action_el.get("label")
    if not label_text:
        raise FormatError(f"<action type={action_type!r}> needs a label")
    label = parse_label(label_text)
    if action_type == "swap":
        return Swap(label)
    if action_type == "push":
        return Push(label)
    raise FormatError(f"unknown action type {action_type!r}")


def read_network(
    topology_path: str,
    routing_path: str,
    name: Optional[str] = None,
    coordinates: Optional[Dict[str, Coordinates]] = None,
) -> MplsNetwork:
    """Read a network from ``topo.xml`` / ``route.xml`` files."""
    with open(topology_path, "r", encoding="utf-8") as handle:
        topology_xml = handle.read()
    with open(routing_path, "r", encoding="utf-8") as handle:
        routing_xml = handle.read()
    return network_from_xml(
        topology_xml,
        routing_xml,
        name=name if name is not None else topology_path,
        coordinates=coordinates,
    )
