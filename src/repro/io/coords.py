"""Router location data (Appendix A.2).

The GUI and the *Distance* atomic quantity use a JSON mapping from
router names to latitude/longitude::

    { "R0": { "lat": 46.5, "lng": 7.3 }, ... }
"""

from __future__ import annotations

import json
from typing import Dict

from repro.errors import FormatError
from repro.model.topology import Coordinates, Topology


def coordinates_to_json(topology: Topology) -> str:
    """Serialize the router coordinates of a topology (routers without
    coordinates are omitted)."""
    payload = {
        router.name: {
            "lat": router.coordinates.latitude,
            "lng": router.coordinates.longitude,
        }
        for router in topology.routers
        if router.coordinates is not None
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def coordinates_from_json(text: str) -> Dict[str, Coordinates]:
    """Parse a location file into a name → coordinates mapping."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise FormatError(f"malformed location JSON: {error}") from error
    if not isinstance(payload, dict):
        raise FormatError("location file must be a JSON object")
    result: Dict[str, Coordinates] = {}
    for name, entry in payload.items():
        if not isinstance(entry, dict) or "lat" not in entry or "lng" not in entry:
            raise FormatError(f"location entry for {name!r} needs lat and lng")
        try:
            result[name] = Coordinates(float(entry["lat"]), float(entry["lng"]))
        except (TypeError, ValueError) as error:
            raise FormatError(f"bad coordinates for {name!r}: {error}") from error
    return result


def write_coordinates(topology: Topology, path: str) -> None:
    """Write a topology's router locations to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(coordinates_to_json(topology))


def read_coordinates(path: str) -> Dict[str, Coordinates]:
    """Read a location file into a name → coordinates mapping."""
    with open(path, "r", encoding="utf-8") as handle:
        return coordinates_from_json(handle.read())
