"""IS-IS dataplane-extract ingestion (Appendix A.1).

The paper collects each router's state with three Juniper commands::

    show isis adjacency detail | display xml
    show route forwarding-table family mpls extensive | display xml
    show pfe next-hop | display xml

plus a *mapping file* whose lines have the form
``<aliases>:<adj.xml>:<route-ft.xml>:<pfe.xml>`` (edge routers omit the
file parts and act as sink nodes).

The operator's raw extracts are confidential, so this module defines a
faithful simplified schema for the three per-router documents, an
*exporter* that renders any model network into that schema (used to
generate test fixtures — and giving a complete round-trip), and the
*importer* that reconstructs an :class:`MplsNetwork` from a set of
extracts plus a mapping file, mirroring the tool's ``--write-topology``
/ ``--write-routing`` conversion path.

Schema (one document set per router ``R``):

``adj.xml``   — adjacencies: local interface, neighbour system id and
                neighbour interface::

    <isis-adjacency-information>
      <isis-adjacency>
        <interface-name>e1</interface-name>
        <system-name>192.0.0.3</system-name>
        <neighbor-interface>e1</neighbor-interface>
      </isis-adjacency> …

``route.xml`` — the MPLS forwarding table: incoming interface + label,
                next hops with operation stacks and weights (Juniper
                encodes backup next hops with higher weight values)::

    <forwarding-table-information>
      <route-table>
        <rt-entry>
          <incoming-interface>e1</incoming-interface>
          <label>s20</label>
          <nh weight="1"><via>e4</via><ops>swap(s21)</ops></nh>
          <nh weight="2"><via>e5</via><ops>swap(s21) ∘ push(30)</ops></nh>
        </rt-entry> …

``pfe.xml``   — next-hop to interface binding (identity in this
                simplified schema; kept for fidelity of the flow).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import FormatError
from repro.model.builder import NetworkBuilder
from repro.model.labels import parse_label
from repro.model.network import MplsNetwork
from repro.model.operations import format_operations


@dataclass
class RouterExtract:
    """The three documents collected from one router."""

    adjacency_xml: str
    route_xml: str
    pfe_xml: str


@dataclass
class MappingEntry:
    """One line of the mapping file."""

    aliases: Tuple[str, ...]
    #: None for edge routers (sink nodes with no extracts).
    extract: Optional[RouterExtract] = None

    @property
    def name(self) -> str:
        """The last alias is the human-readable router name."""
        return self.aliases[-1]


def parse_mapping_file(
    text: str, documents: Dict[str, str]
) -> List[MappingEntry]:
    """Parse a mapping file; ``documents`` maps file names to contents.

    Each line is ``alias[,alias…]:adj.xml:route.xml:pfe.xml`` or just the
    aliases for an edge router.
    """
    entries = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(":")
        aliases = tuple(alias.strip() for alias in parts[0].split(",") if alias.strip())
        if not aliases:
            raise FormatError(f"mapping line {line_number}: no aliases")
        if len(parts) == 1:
            entries.append(MappingEntry(aliases))
            continue
        if len(parts) != 4:
            raise FormatError(
                f"mapping line {line_number}: expected aliases:adj:route:pfe"
            )
        files = []
        for file_name in parts[1:]:
            file_name = file_name.strip()
            if file_name not in documents:
                raise FormatError(
                    f"mapping line {line_number}: missing document {file_name!r}"
                )
            files.append(documents[file_name])
        entries.append(MappingEntry(aliases, RouterExtract(*files)))
    if not entries:
        raise FormatError("mapping file defines no routers")
    return entries


# ----------------------------------------------------------------------
# import: extracts -> network
# ----------------------------------------------------------------------


def network_from_isis(
    mapping_text: str, documents: Dict[str, str], name: str = "isis-import"
) -> MplsNetwork:
    """Reconstruct a network from IS-IS extracts plus the mapping file."""
    entries = parse_mapping_file(mapping_text, documents)
    alias_to_name: Dict[str, str] = {}
    for entry in entries:
        for alias in entry.aliases:
            alias_to_name[alias] = entry.name

    builder = NetworkBuilder(name)
    for entry in entries:
        builder.router(entry.name)

    # Pass 1: adjacencies -> directed links (one per adjacency record).
    link_names: Dict[Tuple[str, str], str] = {}
    for entry in entries:
        if entry.extract is None:
            continue
        for local_if, neighbor, neighbor_if in _parse_adjacencies(
            entry.extract.adjacency_xml
        ):
            neighbor_name = alias_to_name.get(neighbor)
            if neighbor_name is None:
                raise FormatError(
                    f"router {entry.name}: adjacency to unknown system {neighbor!r}"
                )
            link_name = f"{entry.name}.{local_if}->{neighbor_name}.{neighbor_if}"
            builder.link(
                link_name,
                entry.name,
                neighbor_name,
                source_interface=local_if,
                target_interface=neighbor_if,
            )
            link_names[(entry.name, local_if)] = link_name

    # Pass 2: forwarding tables -> rules.
    topology = builder.topology
    for entry in entries:
        if entry.extract is None:
            continue  # edge routers have empty routing tables (sinks)
        _check_pfe(entry.extract.pfe_xml, entry.name)
        for in_interface, label_text, next_hops in _parse_routes(
            entry.extract.route_xml, entry.name
        ):
            in_link = topology.link_by_in_interface(entry.name, in_interface)
            for via_interface, ops_text, weight in next_hops:
                out_name = link_names.get((entry.name, via_interface))
                if out_name is None:
                    raise FormatError(
                        f"router {entry.name}: next hop via unknown interface "
                        f"{via_interface!r}"
                    )
                builder.rule(
                    in_link.name,
                    parse_label(label_text),
                    out_name,
                    ops_text,
                    priority=weight,
                )
    return builder.build()


def _parse_adjacencies(xml_text: str) -> List[Tuple[str, str, str]]:
    root = _parse(xml_text, "isis-adjacency-information")
    adjacencies = []
    for adjacency in root.iter("isis-adjacency"):
        local_if = _text(adjacency, "interface-name")
        neighbor = _text(adjacency, "system-name")
        neighbor_if = _text(adjacency, "neighbor-interface")
        adjacencies.append((local_if, neighbor, neighbor_if))
    return adjacencies


def _parse_routes(
    xml_text: str, router: str
) -> List[Tuple[str, str, List[Tuple[str, str, int]]]]:
    root = _parse(xml_text, "forwarding-table-information")
    routes = []
    for rt_entry in root.iter("rt-entry"):
        in_interface = _text(rt_entry, "incoming-interface")
        label_text = _text(rt_entry, "label")
        next_hops = []
        for nh in rt_entry.findall("nh"):
            via = _text(nh, "via")
            ops_el = nh.find("ops")
            ops_text = ops_el.text.strip() if ops_el is not None and ops_el.text else ""
            weight = int(nh.get("weight", "1"))
            next_hops.append((via, ops_text, weight))
        if not next_hops:
            raise FormatError(f"router {router}: rt-entry without next hops")
        routes.append((in_interface, label_text, next_hops))
    return routes


def _check_pfe(xml_text: str, router: str) -> None:
    _parse(xml_text, "pfe-next-hop-information")


def _parse(xml_text: str, expected_root: str) -> ET.Element:
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as error:
        raise FormatError(f"malformed IS-IS extract: {error}") from error
    if root.tag != expected_root:
        raise FormatError(
            f"expected <{expected_root}> root, found <{root.tag}>"
        )
    return root


def _text(element: ET.Element, tag: str) -> str:
    child = element.find(tag)
    if child is None or not (child.text or "").strip():
        raise FormatError(f"missing <{tag}> element")
    return child.text.strip()


# ----------------------------------------------------------------------
# export: network -> extracts (fixture generation / round-trip)
# ----------------------------------------------------------------------


def network_to_isis(
    network: MplsNetwork,
) -> Tuple[str, Dict[str, str]]:
    """Render a network as IS-IS extracts plus a mapping file.

    Routers without outgoing links become edge (sink) entries. System
    ids are synthesized as ``192.0.0.<n>`` aliases, mirroring the
    appendix's example mapping file.
    """
    topology = network.topology
    documents: Dict[str, str] = {}
    mapping_lines = []
    system_ids = {
        router.name: f"192.0.0.{index + 1}"
        for index, router in enumerate(topology.routers)
    }
    for router in topology.routers:
        out_links = topology.out_links(router.name)
        rules = [
            (in_link, label, groups)
            for in_link, label, groups in network.routing.items()
            if in_link.target.name == router.name
        ]
        if not out_links and not rules:
            mapping_lines.append(f"{system_ids[router.name]},{router.name}")
            continue
        adjacency = ET.Element("isis-adjacency-information")
        for link in out_links:
            adjacency_el = ET.SubElement(adjacency, "isis-adjacency")
            ET.SubElement(adjacency_el, "interface-name").text = link.source_interface
            ET.SubElement(adjacency_el, "system-name").text = system_ids[
                link.target.name
            ]
            ET.SubElement(adjacency_el, "neighbor-interface").text = (
                link.target_interface
            )
        forwarding = ET.Element("forwarding-table-information")
        table_el = ET.SubElement(forwarding, "route-table")
        for in_link, label, groups in rules:
            rt_el = ET.SubElement(table_el, "rt-entry")
            ET.SubElement(rt_el, "incoming-interface").text = in_link.target_interface
            ET.SubElement(rt_el, "label").text = str(label)
            for priority, group in enumerate(groups, start=1):
                for entry in group:
                    nh_el = ET.SubElement(rt_el, "nh", weight=str(priority))
                    ET.SubElement(nh_el, "via").text = entry.out_link.source_interface
                    ET.SubElement(nh_el, "ops").text = format_operations(
                        entry.operations
                    )
        pfe = ET.Element("pfe-next-hop-information")
        for element in (adjacency, forwarding, pfe):
            ET.indent(element)
        documents[f"{router.name}-adj.xml"] = ET.tostring(adjacency, encoding="unicode")
        documents[f"{router.name}-route.xml"] = ET.tostring(
            forwarding, encoding="unicode"
        )
        documents[f"{router.name}-pfe.xml"] = ET.tostring(pfe, encoding="unicode")
        mapping_lines.append(
            f"{system_ids[router.name]},{router.name}:"
            f"{router.name}-adj.xml:{router.name}-route.xml:{router.name}-pfe.xml"
        )
    return "\n".join(mapping_lines) + "\n", documents
