"""MPLS synthesis: from a plain topology to a fully configured network.

Reproduces the workload-construction recipe of the paper's evaluation
(§5): given a Topology-Zoo-style graph, "create … label switching paths
between any two edge routers and … local fast failover protection by
introducing tunnels based on shortest paths".

Concretely, the pipeline:

1. turns every undirected edge into a duplex pair of directed links;
2. designates the lowest-degree routers as *edge routers* and attaches
   an external stub to each (traffic enters/leaves on stub links, as in
   the running example's ``e0``/``e7``);
3. builds one label-switched path (LSP) per ordered edge-router pair
   along the shortest path: the ingress pushes a bottom-of-stack LSP
   label onto the IP packet, transit routers swap per-hop labels, and —
   as in production MPLS deployments — the *penultimate* router pops
   (PHP), so the egress receives plain IP;
4. optionally adds *service tunnels* — externally visible ``smpls``
   labels swapped at the ingress and egress (the ``s40 … s44`` pattern
   of Figure 1) and carried across the core inside a pushed *transport*
   tunnel, giving the two-deep label stacks characteristic of the
   NORDUnet snapshot;
5. adds RSVP-TE-style *facility backup*: for every directed link used
   by any rule, a bypass tunnel along the shortest path avoiding the
   protected link (both directions); every rule crossing the link gains
   a priority-2 variant that additionally pushes the bypass label, the
   penultimate bypass router pops it, and the merge router learns
   continuation rules — exactly the ``push(30)/pop`` pattern protecting
   ``e4`` in Figure 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ModelError
from repro.model.builder import NetworkBuilder
from repro.model.labels import Label, ip, mpls, smpls
from repro.model.network import MplsNetwork
from repro.model.operations import Operation, Pop, Push, Swap
from repro.datasets.graphs import GraphSpec, shortest_path


@dataclass
class SynthesisOptions:
    """Tuning knobs for the synthesis pipeline.

    ``edge_fraction`` selects the share of lowest-degree routers acting
    as edge routers; ``max_lsp_pairs`` caps the LSP mesh (pairs are
    sampled deterministically from ``seed``); ``service_tunnels`` adds
    that many externally visible label-switched service paths;
    ``protect`` toggles the fast-failover synthesis.
    """

    edge_fraction: float = 0.35
    min_edge_routers: int = 2
    max_lsp_pairs: Optional[int] = None
    service_tunnels: int = 0
    protect: bool = True
    seed: int = 1


@dataclass(frozen=True)
class _RuleDraft:
    """A forwarding rule before it is committed to the builder.

    ``below_kind`` hints at the label kind directly below the matched
    label ("ip" / "smpls" / "mpls"); the failover synthesis needs it to
    pick a validity-preserving bypass-label kind for pop rules.
    """

    in_link: str
    label: Label
    out_link: str
    operations: Tuple[Operation, ...]
    priority: int = 1
    below_kind: Optional[str] = None


@dataclass
class SynthesisReport:
    """What the synthesis produced (used by benchmarks and docs)."""

    edge_routers: Tuple[str, ...]
    lsp_count: int
    service_tunnel_count: int
    protected_links: int
    rule_count: int


def entry_link_name(router: str) -> str:
    """Name of the external entry link of an edge router's stub."""
    return f"ext_{router}_in"


def exit_link_name(router: str) -> str:
    """Name of the external exit link of an edge router's stub."""
    return f"ext_{router}_out"


def destination_ip(router: str) -> Label:
    """The IP label addressing an edge router."""
    return ip(f"ip_{router}")


class MplsSynthesizer:
    """Runs the synthesis pipeline for one graph."""

    def __init__(self, graph: GraphSpec, options: Optional[SynthesisOptions] = None):
        self.graph = graph
        self.options = options if options is not None else SynthesisOptions()
        self.rng = random.Random(self.options.seed)
        self.builder = NetworkBuilder(graph.name)
        self.drafts: List[_RuleDraft] = []
        self.edge_routers: List[str] = []
        self._lsp_counter = 0
        self._service_counter = 0
        self._bypass_counter = 0

    # ------------------------------------------------------------------
    def synthesize(self) -> Tuple[MplsNetwork, SynthesisReport]:
        """Run all pipeline stages and return the network plus a report."""
        self._build_topology()
        self._select_edge_routers()
        self._attach_stubs()
        lsp_count = self._build_lsp_mesh()
        service_count = self._build_service_tunnels()
        protected = self._protect_links() if self.options.protect else 0
        network = self._commit()
        report = SynthesisReport(
            edge_routers=tuple(self.edge_routers),
            lsp_count=lsp_count,
            service_tunnel_count=service_count,
            protected_links=protected,
            rule_count=network.rule_count(),
        )
        return network, report

    # ------------------------------------------------------------------
    def _build_topology(self) -> None:
        if not self.graph.is_connected():
            raise ModelError(f"graph {self.graph.name!r} is not connected")
        for node in self.graph.nodes:
            self.builder.router(node.name, node.latitude, node.longitude)
        for edge in self.graph.edges:
            self.builder.duplex_link(edge.source, edge.target, weight=edge.weight)

    def _select_edge_routers(self) -> None:
        degrees = self.graph.degrees()
        ordered = sorted(degrees, key=lambda name: (degrees[name], name))
        count = max(
            self.options.min_edge_routers,
            int(round(len(ordered) * self.options.edge_fraction)),
        )
        self.edge_routers = ordered[: min(count, len(ordered))]

    def _attach_stubs(self) -> None:
        for router in self.edge_routers:
            stub = f"ext_{router}"
            self.builder.router(stub)
            self.builder.link(entry_link_name(router), stub, router)
            self.builder.link(exit_link_name(router), router, stub)

    # ------------------------------------------------------------------
    def _lsp_pairs(self) -> List[Tuple[str, str]]:
        pairs = [
            (a, b)
            for a in self.edge_routers
            for b in self.edge_routers
            if a != b
        ]
        limit = self.options.max_lsp_pairs
        if limit is not None and len(pairs) > limit:
            pairs = self.rng.sample(pairs, limit)
            pairs.sort()
        return pairs

    def _build_lsp_mesh(self) -> int:
        """One LSP per ordered edge-router pair: push / swap-chain, with
        penultimate-hop popping (the egress receives plain IP)."""
        topology = self.builder.topology
        count = 0
        for ingress, egress in self._lsp_pairs():
            path = shortest_path(topology, ingress, egress)
            if not path:
                continue
            lsp_id = self._lsp_counter
            self._lsp_counter += 1
            destination = destination_ip(egress)
            hops = len(path)
            if hops == 1:
                # Direct neighbour: plain IP forwarding, no label needed.
                self.drafts.append(
                    _RuleDraft(
                        entry_link_name(ingress), destination, path[0].name, ()
                    )
                )
            else:
                # Labels carried on links 0 .. hops-2; PHP pops before the
                # last link.
                labels = [smpls(f"l{lsp_id}h{hop}") for hop in range(hops - 1)]
                self.drafts.append(
                    _RuleDraft(
                        entry_link_name(ingress),
                        destination,
                        path[0].name,
                        (Push(labels[0]),),
                    )
                )
                for hop in range(1, hops - 1):
                    self.drafts.append(
                        _RuleDraft(
                            path[hop - 1].name,
                            labels[hop - 1],
                            path[hop].name,
                            (Swap(labels[hop]),),
                        )
                    )
                self.drafts.append(
                    _RuleDraft(
                        path[-2].name,
                        labels[-1],
                        path[-1].name,
                        (Pop(),),
                        below_kind="ip",
                    )
                )
            # Egress delivery of plain IP to the external neighbour.
            self.drafts.append(
                _RuleDraft(path[-1].name, destination, exit_link_name(egress), ())
            )
            count += 1
        return count

    def _build_service_tunnels(self) -> int:
        """Service labels (the s40…s44 pattern of Figure 1) carried across
        the core inside a pushed transport tunnel.

        The ingress swaps the external service label and pushes the first
        transport label on top; transit routers swap the transport label;
        the penultimate router pops it (PHP); the egress swaps the service
        label once more and hands the packet to the neighbour operator —
        so the service label never leaks internals, while two-deep label
        stacks occur on every core link.
        """
        topology = self.builder.topology
        wanted = self.options.service_tunnels
        if wanted <= 0 or len(self.edge_routers) < 2:
            return 0
        pairs = self._lsp_pairs()
        if not pairs:
            return 0
        count = 0
        for index in range(wanted):
            ingress, egress = pairs[index % len(pairs)]
            path = shortest_path(topology, ingress, egress)
            if not path:
                continue
            service_id = self._service_counter
            self._service_counter += 1
            entry_label = smpls(f"svc{service_id}")
            inner = smpls(f"svc{service_id}i")
            out_label = smpls(f"svc{service_id}o")
            hops = len(path)
            if hops == 1:
                self.drafts.append(
                    _RuleDraft(
                        entry_link_name(ingress),
                        entry_label,
                        path[0].name,
                        (Swap(inner),),
                    )
                )
            else:
                transport = [mpls(f"t{service_id}h{hop}") for hop in range(hops - 1)]
                self.drafts.append(
                    _RuleDraft(
                        entry_link_name(ingress),
                        entry_label,
                        path[0].name,
                        (Swap(inner), Push(transport[0])),
                    )
                )
                for hop in range(1, hops - 1):
                    self.drafts.append(
                        _RuleDraft(
                            path[hop - 1].name,
                            transport[hop - 1],
                            path[hop].name,
                            (Swap(transport[hop]),),
                        )
                    )
                self.drafts.append(
                    _RuleDraft(
                        path[-2].name,
                        transport[-1],
                        path[-1].name,
                        (Pop(),),
                        below_kind="smpls",
                    )
                )
            # Egress hand-over: the service label stays on the packet.
            self.drafts.append(
                _RuleDraft(
                    path[-1].name,
                    inner,
                    exit_link_name(egress),
                    (Swap(out_label),),
                )
            )
            count += 1
        return count

    # ------------------------------------------------------------------
    @staticmethod
    def _after_ops_kind(draft: _RuleDraft) -> Optional[str]:
        """Kind of the top-of-stack label after the draft's operations.

        Returns "ip" / "smpls" / "mpls", or None when a pop uncovers
        content the draft carries no hint for.
        """
        kind_map = {"ip": "ip", "smpls": "smpls", "mpls": "mpls"}
        if draft.label.is_ip:
            kind: Optional[str] = "ip"
        elif draft.label.is_bottom_mpls:
            kind = "smpls"
        else:
            kind = "mpls"
        for op in draft.operations:
            if isinstance(op, Swap) or isinstance(op, Push):
                if op.label.is_ip:
                    kind = "ip"
                elif op.label.is_bottom_mpls:
                    kind = "smpls"
                else:
                    kind = "mpls"
            else:  # Pop
                kind = kind_map.get(draft.below_kind or "", None)
        return kind

    def _protect_links(self) -> int:
        """Facility-backup fast failover for every link crossed by a rule.

        The bypass label pushed on top must keep the header valid, so its
        kind depends on what the protected step leaves on top: plain MPLS
        over MPLS content, a bottom-of-stack label over bare IP. Each
        protected link therefore allocates (lazily) one bypass label
        chain per needed kind.
        """
        topology = self.builder.topology
        crossing: Dict[str, List[_RuleDraft]] = {}
        for draft in self.drafts:
            link = topology.link(draft.out_link)
            if link.target.name.startswith("ext_") or link.source.name.startswith(
                "ext_"
            ):
                continue  # stub links are not protected
            crossing.setdefault(draft.out_link, []).append(draft)

        merge_clones: List[_RuleDraft] = []
        backups: List[_RuleDraft] = []
        protected = 0
        for link_name, drafts in sorted(crossing.items()):
            protected_link = topology.link(link_name)
            reverse = topology.reverse_link(protected_link)
            forbidden = {link_name}
            if reverse is not None:
                forbidden.add(reverse.name)
            bypass = shortest_path(
                topology,
                protected_link.source.name,
                protected_link.target.name,
                frozenset(forbidden),
            )
            if not bypass:
                continue
            protected += 1
            bypass_id = self._bypass_counter
            self._bypass_counter += 1
            tunnel_hops = len(bypass) - 1  # labelled hops (0 for parallel link)

            def bypass_labels(variant: str) -> List[Label]:
                if variant == "mpls":
                    return [mpls(f"b{bypass_id}h{hop}") for hop in range(tunnel_hops)]
                return [smpls(f"bb{bypass_id}h{hop}") for hop in range(tunnel_hops)]

            used_variants: Set[str] = set()
            for draft in drafts:
                after = self._after_ops_kind(draft)
                if after is None:
                    continue  # cannot determine a valid bypass label kind
                variant = "smpls" if after == "ip" else "mpls"
                operations = draft.operations
                if tunnel_hops > 0:
                    operations = operations + (Push(bypass_labels(variant)[0]),)
                    used_variants.add(variant)
                backups.append(
                    _RuleDraft(
                        draft.in_link,
                        draft.label,
                        bypass[0].name,
                        operations,
                        priority=draft.priority + 1,
                    )
                )
            # Bypass transit chains: swap per hop, pop at the penultimate
            # router (the merge link carries the uncovered original label).
            for variant in sorted(used_variants):
                labels = bypass_labels(variant)
                below = "ip" if variant == "smpls" else None
                for hop in range(1, len(bypass)):
                    if hop < len(bypass) - 1:
                        operations: Tuple[Operation, ...] = (Swap(labels[hop]),)
                        hint = None
                    else:
                        operations = (Pop(),)
                        hint = below
                    backups.append(
                        _RuleDraft(
                            bypass[hop - 1].name,
                            labels[hop - 1],
                            bypass[hop].name,
                            operations,
                            below_kind=hint,
                        )
                    )
            # Merge-point continuation: rules keyed on the protected link
            # must also accept arrivals via the bypass's final link.
            merge_link = bypass[-1].name
            if merge_link != link_name:
                for draft in self.drafts:
                    if draft.in_link == link_name:
                        merge_clones.append(
                            _RuleDraft(
                                merge_link,
                                draft.label,
                                draft.out_link,
                                draft.operations,
                                draft.priority,
                                draft.below_kind,
                            )
                        )
        self.drafts.extend(backups)
        self.drafts.extend(merge_clones)
        return protected

    # ------------------------------------------------------------------
    def _commit(self) -> MplsNetwork:
        seen: Set[Tuple] = set()
        for draft in self.drafts:
            key = (
                draft.in_link,
                str(draft.label),
                draft.out_link,
                tuple(str(op) for op in draft.operations),
                draft.priority,
            )
            if key in seen:
                continue
            seen.add(key)
            self.builder.rule(
                draft.in_link,
                draft.label,
                draft.out_link,
                draft.operations,
                draft.priority,
            )
        return self.builder.build()


def synthesize_network(
    graph: GraphSpec, options: Optional[SynthesisOptions] = None
) -> Tuple[MplsNetwork, SynthesisReport]:
    """Convenience wrapper: run the full synthesis pipeline on a graph."""
    return MplsSynthesizer(graph, options).synthesize()
