"""Lightweight topology specifications and graph algorithms.

A :class:`GraphSpec` is the neutral interchange form between the
topology sources (embedded real-world graphs, synthetic generators) and
the MPLS synthesis pipeline: named nodes with coordinates plus weighted
undirected edges (each becoming a duplex link pair).

The module also provides the Dijkstra shortest-path routine the
synthesis pipeline uses (kept dependency-free; the rest of the library
never needs a graph package).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import ModelError
from repro.model.topology import Link, Topology


@dataclass(frozen=True)
class NodeSpec:
    """One router-to-be: name plus optional coordinates."""

    name: str
    latitude: Optional[float] = None
    longitude: Optional[float] = None


@dataclass(frozen=True)
class EdgeSpec:
    """One undirected edge (becomes two directed links)."""

    source: str
    target: str
    weight: int = 1


@dataclass
class GraphSpec:
    """A named undirected graph with node coordinates."""

    name: str
    nodes: Tuple[NodeSpec, ...]
    edges: Tuple[EdgeSpec, ...]

    def __post_init__(self) -> None:
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate node names in graph {self.name!r}")
        known = set(names)
        for edge in self.edges:
            if edge.source not in known or edge.target not in known:
                raise ModelError(
                    f"edge {edge.source}-{edge.target} references unknown node"
                )
            if edge.source == edge.target:
                raise ModelError(f"self-loop on {edge.source} not supported")

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def degrees(self) -> Dict[str, int]:
        """Node-degree map of the undirected graph."""
        degree = {node.name: 0 for node in self.nodes}
        for edge in self.edges:
            degree[edge.source] += 1
            degree[edge.target] += 1
        return degree

    def neighbors(self) -> Dict[str, List[Tuple[str, int]]]:
        """Adjacency map: node -> [(neighbor, weight)]."""
        adjacency: Dict[str, List[Tuple[str, int]]] = {
            node.name: [] for node in self.nodes
        }
        for edge in self.edges:
            adjacency[edge.source].append((edge.target, edge.weight))
            adjacency[edge.target].append((edge.source, edge.weight))
        return adjacency

    def is_connected(self) -> bool:
        """True when every node is reachable from every other."""
        if not self.nodes:
            return True
        adjacency = self.neighbors()
        seen = {self.nodes[0].name}
        frontier = [self.nodes[0].name]
        while frontier:
            node = frontier.pop()
            for neighbor, _weight in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.nodes)


def shortest_path(
    topology: Topology,
    source: str,
    target: str,
    forbidden: FrozenSet[str] = frozenset(),
) -> Optional[List[Link]]:
    """Dijkstra over directed links; returns the link sequence or None.

    ``forbidden`` is a set of link *names* that must not be used (the
    failover synthesis excludes both directions of a protected link).
    """
    if source == target:
        return []
    best: Dict[str, int] = {source: 0}
    back: Dict[str, Link] = {}
    heap: List[Tuple[int, int, str]] = [(0, 0, source)]
    counter = 0
    done: Set[str] = set()
    while heap:
        cost, _, router = heapq.heappop(heap)
        if router in done:
            continue
        done.add(router)
        if router == target:
            path: List[Link] = []
            current = target
            while current != source:
                link = back[current]
                path.append(link)
                current = link.source.name
            path.reverse()
            return path
        for link in topology.out_links(router):
            if link.name in forbidden or link.is_self_loop:
                continue
            neighbor = link.target.name
            candidate = cost + max(1, link.weight)
            if neighbor not in best or candidate < best[neighbor]:
                best[neighbor] = candidate
                back[neighbor] = link
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return None
