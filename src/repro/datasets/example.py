"""The running example of the paper (Figure 1).

Five routers ``v0 … v4``, links ``e0 … e7``, and the routing table of
Figure 1b, including the priority-2 fast-failover rule protecting link
``e4`` at router ``v2``.

The module also reconstructs the example traces σ0–σ3 of Figure 1c and
the query texts φ0–φ4 of Figure 1d, which the integration tests verify
end to end.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.model.builder import NetworkBuilder
from repro.model.header import Header
from repro.model.network import MplsNetwork
from repro.model.trace import Trace, TraceStep


def build_example_network() -> MplsNetwork:
    """The network of Figure 1 (topology 1a + routing table 1b)."""
    builder = NetworkBuilder("running-example")
    for name in ("vIn", "v0", "v1", "v2", "v3", "v4", "vOut"):
        builder.router(name)
    # Figure 1a: e0 enters v0 from outside; e7 leaves v3 to the outside.
    builder.link("e0", "vIn", "v0")
    builder.link("e1", "v0", "v2")
    builder.link("e2", "v0", "v1")
    builder.link("e3", "v1", "v3")
    builder.link("e4", "v2", "v3")
    builder.link("e5", "v2", "v4")
    builder.link("e6", "v4", "v3")
    builder.link("e7", "v3", "vOut")

    # Figure 1b, row by row.
    builder.rule("e0", "ip1", "e1", "push(s20)")
    builder.rule("e0", "ip1", "e2", "push(s10)")
    builder.rule("e0", "s40", "e1", "swap(s41)")
    builder.rule("e2", "s10", "e3", "swap(s11)")
    builder.rule("e1", "s20", "e4", "swap(s21)")
    builder.rule("e1", "s41", "e5", "swap(s42)")
    builder.rule("e1", "s20", "e5", "swap(s21) ∘ push(30)", priority=2)
    builder.rule("e3", "s11", "e7", "pop")
    builder.rule("e4", "s21", "e7", "pop")
    builder.rule("e6", "s43", "e7", "swap(s44)")
    builder.rule("e6", "s21", "e7", "pop")
    builder.rule("e5", "30", "e6", "pop")
    builder.rule("e5", "s42", "e6", "swap(s43)")
    return builder.build()


def example_traces(network: MplsNetwork) -> Dict[str, Trace]:
    """The four traces σ0–σ3 of Figure 1c."""
    topo = network.topology
    labels = network.labels

    def header(*texts: str) -> Header:
        return Header(labels.require(text) for text in texts)

    def step(link_name: str, *header_texts: str) -> TraceStep:
        return TraceStep(topo.link(link_name), header(*header_texts))

    sigma0 = Trace(
        [
            step("e0", "ip1"),
            step("e1", "s20", "ip1"),
            step("e4", "s21", "ip1"),
            step("e7", "ip1"),
        ]
    )
    sigma1 = Trace(
        [
            step("e0", "ip1"),
            step("e2", "s10", "ip1"),
            step("e3", "s11", "ip1"),
            step("e7", "ip1"),
        ]
    )
    sigma2 = Trace(
        [
            step("e0", "ip1"),
            step("e1", "s20", "ip1"),
            step("e5", "30", "s21", "ip1"),
            step("e6", "s21", "ip1"),
            step("e7", "ip1"),
        ]
    )
    sigma3 = Trace(
        [
            step("e0", "s40", "ip1"),
            step("e1", "s41", "ip1"),
            step("e5", "s42", "ip1"),
            step("e6", "s43", "ip1"),
            step("e7", "s44", "ip1"),
        ]
    )
    return {"sigma0": sigma0, "sigma1": sigma1, "sigma2": sigma2, "sigma3": sigma3}


#: The query texts φ0–φ4 of Figure 1d, in this library's concrete syntax.
EXAMPLE_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("phi0", "<ip> [.#v0] .* [v3#.] <ip> 0"),
    ("phi1", "<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2"),
    ("phi2", "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0"),
    ("phi3", "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1"),
    # φ4 requires three or more hops *between* the incoming and outgoing
    # links, hence the three inner wildcard links before the Kleene star.
    ("phi4", "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1"),
)
