"""Seeded-defect fixture networks, one per linter rule.

Each builder returns a minimal network exhibiting exactly one
diagnostic code of :mod:`repro.analysis` — the linter tests assert that
``analyze`` flags *precisely* the expected code on each fixture, and
the README's "Linting your dataplane" section uses them as worked
examples. A companion :func:`build_clean_network` yields a small
network with no findings at all (the CLI exit-code-0 case).

Naming convention: every fixture has an external source router ``X``
feeding link ``e0`` into the first dataplane router, so queries and
rules always have a well-defined incoming link.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ReproError
from repro.model.builder import NetworkBuilder
from repro.model.network import MplsNetwork

#: The diagnostic codes with a seeded fixture, in code order.
DEFECT_CODES: Tuple[str, ...] = (
    "DP001",
    "DP002",
    "DP003",
    "DP004",
    "DP005",
    "DP006",
)


def build_clean_network() -> MplsNetwork:
    """A defect-free swap chain: X → A → B → C, C an egress."""
    builder = NetworkBuilder("clean-chain")
    builder.link("e0", "X", "A")
    builder.link("e1", "A", "B")
    builder.link("e2", "B", "C")
    builder.rule("e0", "s10", "e1", "swap(s11)")
    builder.rule("e1", "s11", "e2", "swap(s12)")
    return builder.build()


def build_dp001_black_hole() -> MplsNetwork:
    """B forwards other labels but has no rule for the arriving s11.

    A rewrites s10 → s11 toward B; B is a working MPLS router (it
    forwards s99) yet τ(e1, s11) is undefined and B is no egress —
    packets die at B.
    """
    builder = NetworkBuilder("defect-dp001")
    builder.link("e0", "X", "A")
    builder.link("e1", "A", "B")
    builder.link("e2", "B", "C")
    builder.rule("e0", "s10", "e1", "swap(s11)")
    # B participates in the dataplane (so it is not an edge stub) but
    # only for an unrelated label.
    builder.rule("e1", "s99", "e2", "swap(s98)")
    return builder.build()


def build_dp002_forwarding_loop() -> MplsNetwork:
    """A swap ring A → B → C → A that never progresses to an egress."""
    builder = NetworkBuilder("defect-dp002")
    builder.link("e0", "X", "A")
    builder.link("e1", "A", "B")
    builder.link("e2", "B", "C")
    builder.link("e3", "C", "A")
    builder.rule("e0", "s10", "e1", "swap(s11)")
    builder.rule("e1", "s11", "e2", "swap(s12)")
    builder.rule("e2", "s12", "e3", "swap(s13)")
    builder.rule("e3", "s13", "e1", "swap(s11)")
    return builder.build()


def build_dp003_stack_underflow() -> MplsNetwork:
    """A double pop on a bottom-of-stack label: the second pop always
    hits the IP label, so the chain is undefined on every header."""
    builder = NetworkBuilder("defect-dp003")
    builder.link("e0", "X", "A")
    builder.link("e1", "A", "B")
    builder.rule("e0", "s10", "e1", "pop ∘ pop")
    return builder.build()


def build_dp004_shadowed_entry() -> MplsNetwork:
    """A failover group protecting a link with itself.

    The priority-2 group's only link e1 must already have failed for
    the group to activate (required_failures = the priority-1 links),
    so the "protection" can never forward anything.
    """
    builder = NetworkBuilder("defect-dp004")
    builder.link("e0", "X", "A")
    builder.link("e1", "A", "B")
    builder.rule("e0", "s10", "e1", "swap(s11)")
    builder.rule("e0", "s10", "e1", "swap(s12)", priority=2)
    return builder.build()


def build_dp005_unreferenced_label() -> MplsNetwork:
    """A tunnel entry pushing a label no rule in the network matches."""
    builder = NetworkBuilder("defect-dp005")
    builder.link("e0", "X", "A")
    builder.link("e1", "A", "B")
    builder.rule("e0", "ip1", "e1", "push(s99)")
    return builder.build()


def build_dp006_nondeterminism() -> MplsNetwork:
    """One group with two simultaneously-active entries (accidental ECMP)."""
    builder = NetworkBuilder("defect-dp006")
    builder.link("e0", "X", "A")
    builder.link("e1", "A", "B")
    builder.link("e2", "A", "C")
    builder.rule("e0", "s10", "e1", "swap(s11)")
    builder.rule("e0", "s10", "e2", "swap(s12)")
    return builder.build()


_BUILDERS: Dict[str, Callable[[], MplsNetwork]] = {
    "DP001": build_dp001_black_hole,
    "DP002": build_dp002_forwarding_loop,
    "DP003": build_dp003_stack_underflow,
    "DP004": build_dp004_shadowed_entry,
    "DP005": build_dp005_unreferenced_label,
    "DP006": build_dp006_nondeterminism,
}


def build_defect_network(code: str) -> MplsNetwork:
    """The seeded-defect fixture for one diagnostic code (``"DP001"`` …)."""
    builder = _BUILDERS.get(code.upper())
    if builder is None:
        raise ReproError(
            f"no defect fixture for code {code!r} (have: {', '.join(DEFECT_CODES)})"
        )
    return builder()


def defect_networks() -> Dict[str, MplsNetwork]:
    """All fixtures, keyed by the code each one seeds."""
    return {code: build_defect_network(code) for code in DEFECT_CODES}
