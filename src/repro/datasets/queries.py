"""Query-suite generation for the benchmark sweeps.

Generates the kinds of queries the paper evaluates (Table 1 and the
Figure 4 sweep): reachability of IP traffic, ``smpls``-header
reachability, service-label waypointing, transparency (label-leak)
checks and the unconstrained-path query, each at several failure
bounds. Sampling is deterministic in the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.model.network import MplsNetwork


@dataclass(frozen=True)
class GeneratedQuery:
    """One benchmark query plus its provenance."""

    name: str
    text: str
    kind: str
    max_failures: int


def _core_routers(network: MplsNetwork) -> List[str]:
    return [
        router.name
        for router in network.topology.routers
        if not router.name.startswith("ext_")
    ]


def _edge_routers(network: MplsNetwork) -> List[str]:
    """Routers with an external stub attached by the synthesis pipeline."""
    return [
        router.name[len("ext_") :]
        for router in network.topology.routers
        if router.name.startswith("ext_")
    ]


def _service_labels(network: MplsNetwork) -> List[str]:
    """Externally used service labels (entry-link smpls labels)."""
    labels = []
    for label in network.labels.bottom_mpls_labels:
        name = label.name
        if name.startswith("svc") and "h" not in name:
            labels.append(str(label))
    return sorted(labels)


def service_tunnel_route(network: MplsNetwork, service_label: str):
    """Follow a service tunnel through the network, returning its links.

    Starts at the external entry link carrying ``service_label`` and
    greedily follows the primary (no-failure) forwarding alternatives
    until the packet leaves on a stub link. Returns the link sequence,
    or None when the label has no entry rule.
    """
    from repro.model.header import Header

    label = network.labels.get(service_label)
    if label is None:
        return None
    ip_labels = sorted(network.labels.ip_labels, key=str)
    if not ip_labels:
        return None
    entry = None
    for link, matched, _groups in network.routing.items():
        if matched == label and link.source.name.startswith("ext_"):
            entry = link
            break
    if entry is None:
        return None
    header = Header([label, ip_labels[0]])
    route = [entry]
    current = entry
    for _hop in range(4 * len(network.topology.links)):
        alternatives = network.forwarding_alternatives(current, header, frozenset())
        if not alternatives:
            return route
        entry_rule, header = alternatives[0]
        current = entry_rule.out_link
        route.append(current)
        if current.target.name.startswith("ext_"):
            return route
    return route


def lsp_pairs(network: MplsNetwork) -> List[Tuple[str, str]]:
    """The (ingress, egress) pairs for which the synthesis built an LSP.

    Recovered from the dataplane itself: an entry-link rule matching the
    destination IP label ``ip_<egress>`` marks an LSP from that stub's
    router.
    """
    pairs = []
    for link, label, _groups in network.routing.items():
        if not link.source.name.startswith("ext_"):
            continue
        if label.is_ip and label.name.startswith("ip_"):
            pairs.append((link.target.name, label.name[len("ip_") :]))
    pairs.sort()
    return pairs


def lsp_route(network: MplsNetwork, ingress: str, egress: str):
    """Follow the primary LSP from ingress to egress; the link sequence.

    Returns None when no such LSP exists. The first link is the external
    entry link, the last the external exit link.
    """
    from repro.model.header import Header

    destination = network.labels.get(f"ip_{egress}")
    if destination is None:
        return None
    entry_name = f"ext_{ingress}_in"
    if not network.topology.has_link(entry_name):
        return None
    entry = network.topology.link(entry_name)
    if not network.routing.has_rule(entry, destination):
        return None
    header = Header([destination])
    route = [entry]
    current = entry
    for _hop in range(4 * len(network.topology.links)):
        alternatives = network.forwarding_alternatives(current, header, frozenset())
        if not alternatives:
            return route
        entry_rule, header = alternatives[0]
        current = entry_rule.out_link
        route.append(current)
        if current.target.name.startswith("ext_"):
            return route
    return route


def generate_query_suite(
    network: MplsNetwork,
    count: int = 20,
    seed: int = 0,
    failure_bounds: Sequence[int] = (0, 1, 2),
    include_unconstrained: bool = True,
) -> List[GeneratedQuery]:
    """A deterministic mixed suite of ``count`` queries for one network.

    The mix cycles through the paper's query shapes. Like the operator's
    queries, most shapes are aimed along routes the dataplane actually
    provides (sampled from the synthesized LSP mesh), so the suite mixes
    satisfiable instances, genuinely unsatisfiable ones (transparency)
    and near-miss pairs.
    """
    rng = random.Random(seed)
    routers = _core_routers(network)
    edges = _edge_routers(network) or routers
    services = _service_labels(network)
    pairs = lsp_pairs(network)
    queries: List[GeneratedQuery] = []

    def pick_lsp_pair() -> Tuple[str, str]:
        if pairs:
            return rng.choice(pairs)
        first = rng.choice(edges)
        second = rng.choice([router for router in edges if router != first] or edges)
        return first, second

    def labelled_segment() -> Tuple[str, str]:
        """Two routers between which some LSP still carries its label.

        The label is pushed after the ingress and popped at the
        penultimate hop, so it is visible on arrivals at the routers of
        links 1 .. m-1 of an (m+2)-link route.
        """
        for _attempt in range(8):
            source, target = pick_lsp_pair()
            route = lsp_route(network, source, target)
            if route is None or len(route) < 4:
                continue
            labelled = route[1:-2]  # links whose arrival still carries it
            if not labelled:
                continue
            first = labelled[0].target.name
            last = labelled[-1].target.name
            return first, last
        return pick_lsp_pair()

    shapes = ["ip", "smpls", "group", "waypoint", "transparency"]
    index = 0
    while len(queries) < count:
        shape = shapes[index % len(shapes)]
        k = failure_bounds[index % len(failure_bounds)]
        index += 1
        if shape == "ip":
            source, target = pick_lsp_pair()
            text = f"<ip> [.#{source}] .* [.#{target}] <ip> {k}"
        elif shape == "smpls":
            source, target = labelled_segment()
            text = f"<smpls ip> [.#{source}] .* [.#{target}] <smpls ip> {k}"
        elif shape == "group":
            source, target = labelled_segment()
            text = (
                f"<smpls ip> [.#{source}] .* [.#{target}] "
                f"<(mpls* smpls)? ip> {k}"
            )
        elif shape == "waypoint":
            header = "<ip>"
            source = middle = target = None
            if services:
                # Aim along an actual service-tunnel route, like the
                # operator's Table 1 waypoint queries.
                service = rng.choice(services)
                route = service_tunnel_route(network, service)
                if route is not None and len(route) >= 3:
                    core = [
                        link.target.name
                        for link in route
                        if not link.target.name.startswith("ext_")
                    ]
                    if len(core) >= 3:
                        header = f"<[{service}] ip>"
                        source = core[0]
                        middle = core[len(core) // 2]
                        target = core[-1]
            if source is None:
                source, target = pick_lsp_pair()
                route = lsp_route(network, source, target)
                if route is not None and len(route) >= 3:
                    middle = route[len(route) // 2].target.name
                else:
                    middle = rng.choice(
                        [
                            router
                            for router in routers
                            if router not in (source, target)
                        ]
                        or routers
                    )
            text = (
                f"{header} [.#{source}] .* [.#{middle}] .* [.#{target}] <smpls? ip> {k}"
            )
        else:  # transparency: does an internal label leak at the egress?
            source, target = pick_lsp_pair()
            text = (
                f"<smpls? ip> [.#{source}] .* [{target}#.] <mpls+ smpls ip> {k}"
            )
        queries.append(
            GeneratedQuery(
                name=f"q{len(queries):03d}_{shape}_k{k}",
                text=text,
                kind=shape,
                max_failures=k,
            )
        )
    if include_unconstrained and queries:
        # The paper's hardest query: completely unconstrained path.
        k = failure_bounds[0]
        queries[-1] = GeneratedQuery(
            name=f"q{len(queries) - 1:03d}_unconstrained_k{k}",
            text=f"<smpls? ip> .* <. smpls ip> {k}",
            kind="unconstrained",
            max_failures=k,
        )
    return queries


def table1_queries(network: MplsNetwork, seed: int = 3) -> List[GeneratedQuery]:
    """The six Table-1-style operator queries for the NORDUnet substitute.

    Mirrors the paper's table row-for-row: two smpls reachability
    queries at k=1, one plain IP reachability at k=0, a service-label
    waypoint query at k=0 and k=1, and the unconstrained-path query.
    """
    rng = random.Random(seed)
    edges = _edge_routers(network) or _core_routers(network)
    routers = _core_routers(network)
    services = _service_labels(network)

    r6, r4 = rng.sample(edges, 2)
    r2, r18 = rng.sample(edges, 2)
    r0, r1 = rng.sample(edges, 2)
    r5 = rng.choice([router for router in routers if router not in (r0, r1)])
    service = services[0] if services else None
    service_header = f"<[{service}] ip>" if service else "<ip>"
    if service is not None:
        # Aim the waypoint query along the actual service-tunnel route,
        # like the operator's Table 1 queries do.
        route = service_tunnel_route(network, service)
        if route is not None and len(route) >= 3:
            core = [
                link.target.name
                for link in route
                if not link.target.name.startswith("ext_")
            ]
            if len(core) >= 3:
                r0, r5, r1 = core[0], core[len(core) // 2], core[-1]

    queries = [
        GeneratedQuery(
            "t1_smpls_reach",
            f"<smpls ip> [.#{r6}] .* [.#{r4}] <smpls ip> 1",
            "smpls",
            1,
        ),
        GeneratedQuery(
            "t2_group_reach",
            f"<smpls ip> [.#{r2}] .* [.#{r18}] <(mpls* smpls)? ip> 1",
            "group",
            1,
        ),
        GeneratedQuery(
            "t3_ip_reach",
            f"<ip> [.#{r0}] .* [.#{r4}] <ip> 0",
            "ip",
            0,
        ),
        GeneratedQuery(
            "t4_service_waypoint_k0",
            f"{service_header} [.#{r0}] .* [.#{r5}] .* [.#{r1}] <smpls? ip> 0",
            "waypoint",
            0,
        ),
        GeneratedQuery(
            "t5_service_waypoint_k1",
            f"{service_header} [.#{r0}] .* [.#{r5}] .* [.#{r1}] <smpls? ip> 1",
            "waypoint",
            1,
        ),
        GeneratedQuery(
            "t6_unconstrained",
            "<smpls? ip> .* <. smpls ip> 0",
            "unconstrained",
            0,
        ),
    ]
    return queries
