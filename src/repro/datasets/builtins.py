"""The built-in networks offered by the CLI and the HTTP service.

One source of truth for the loadable built-ins (the GUI's
predefined-network drop-down of §4): the running example of Figure 1,
the NORDUnet substitute of §5, and the Topology-Zoo substitutes.
Both :mod:`repro.cli` and :mod:`repro.server` import from here.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.model.network import MplsNetwork

#: Names accepted by :func:`load_builtin`, in presentation order.
BUILTIN_NETWORKS = ("example", "nordunet", "abilene", "nsfnet", "geant")


def load_builtin(name: str) -> MplsNetwork:
    """Build one of the :data:`BUILTIN_NETWORKS` by name.

    Imports lazily so that ``aalwines --builtin example`` does not pay
    for the synthesis pipeline, and raises :class:`ReproError` on an
    unknown name (the CLI and server map that to a usage error).
    """
    if name == "example":
        from repro.datasets.example import build_example_network

        return build_example_network()
    if name == "nordunet":
        from repro.datasets.nordunet import build_nordunet

        return build_nordunet()[0]
    if name in ("abilene", "nsfnet", "geant"):
        from repro.datasets import zoo
        from repro.datasets.synthesis import synthesize_network

        graph = getattr(zoo, name)()
        return synthesize_network(graph)[0]
    raise ReproError(f"unknown built-in network {name!r}")
