"""Internet-Topology-Zoo substitute: embedded and synthetic topologies.

The paper's Figure 4 sweep runs over "several variants of networks from
Internet Topology Zoo … (having on average 84 routers and 240 routers
at the largest instance)". The Zoo files themselves are only used as
*graphs*; the MPLS layer is synthesized (see
:mod:`repro.datasets.synthesis`). This module therefore provides:

* a handful of embedded real-world research-network topologies
  (Abilene, NSFNET, and a GEANT-like European backbone) with real
  coordinates, and
* a seeded synthetic generator producing connected Waxman-style graphs
  at arbitrary sizes, used to reach the Zoo's larger instance sizes.

``zoo_collection`` assembles the benchmark suite used by the Figure 4
harness.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.datasets.graphs import EdgeSpec, GraphSpec, NodeSpec

# ----------------------------------------------------------------------
# embedded real-world topologies
# ----------------------------------------------------------------------

_ABILENE_NODES = [
    ("Seattle", 47.61, -122.33),
    ("Sunnyvale", 37.37, -122.04),
    ("LosAngeles", 34.05, -118.24),
    ("Denver", 39.74, -104.99),
    ("KansasCity", 39.10, -94.58),
    ("Houston", 29.76, -95.37),
    ("Atlanta", 33.75, -84.39),
    ("Indianapolis", 39.77, -86.16),
    ("Chicago", 41.88, -87.63),
    ("Washington", 38.91, -77.04),
    ("NewYork", 40.71, -74.01),
]

_ABILENE_EDGES = [
    ("Seattle", "Sunnyvale"),
    ("Seattle", "Denver"),
    ("Sunnyvale", "LosAngeles"),
    ("Sunnyvale", "Denver"),
    ("LosAngeles", "Houston"),
    ("Denver", "KansasCity"),
    ("KansasCity", "Houston"),
    ("KansasCity", "Indianapolis"),
    ("Houston", "Atlanta"),
    ("Atlanta", "Indianapolis"),
    ("Atlanta", "Washington"),
    ("Indianapolis", "Chicago"),
    ("Chicago", "NewYork"),
    ("Washington", "NewYork"),
]

_NSFNET_NODES = [
    ("WA", 47.6, -122.3),
    ("CA1", 37.4, -122.0),
    ("CA2", 34.1, -118.2),
    ("UT", 40.8, -111.9),
    ("CO", 39.7, -105.0),
    ("TX", 29.8, -95.4),
    ("NE", 41.3, -96.0),
    ("IL", 41.9, -87.6),
    ("PA", 40.4, -80.0),
    ("GA", 33.7, -84.4),
    ("MI", 42.3, -83.0),
    ("NY", 40.7, -74.0),
    ("NJ", 40.7, -74.2),
    ("DC", 38.9, -77.0),
]

_NSFNET_EDGES = [
    ("WA", "CA1"),
    ("WA", "CA2"),
    ("WA", "IL"),
    ("CA1", "CA2"),
    ("CA1", "UT"),
    ("CA2", "TX"),
    ("UT", "CO"),
    ("UT", "MI"),
    ("CO", "NE"),
    ("CO", "TX"),
    ("TX", "GA"),
    ("TX", "DC"),
    ("NE", "IL"),
    ("IL", "PA"),
    ("PA", "GA"),
    ("PA", "NY"),
    ("GA", "NY"),
    ("MI", "NJ"),
    ("NY", "NJ"),
    ("NJ", "DC"),
    ("MI", "NY"),
]

_GEANT_NODES = [
    ("London", 51.51, -0.13),
    ("Paris", 48.86, 2.35),
    ("Brussels", 50.85, 4.35),
    ("Amsterdam", 52.37, 4.90),
    ("Frankfurt", 50.11, 8.68),
    ("Geneva", 46.20, 6.14),
    ("Milan", 45.46, 9.19),
    ("Vienna", 48.21, 16.37),
    ("Prague", 50.08, 14.44),
    ("Berlin", 52.52, 13.40),
    ("Copenhagen", 55.68, 12.57),
    ("Stockholm", 59.33, 18.06),
    ("Warsaw", 52.23, 21.01),
    ("Budapest", 47.50, 19.04),
    ("Zagreb", 45.81, 15.98),
    ("Madrid", 40.42, -3.70),
    ("Lisbon", 38.72, -9.14),
    ("Rome", 41.90, 12.50),
    ("Athens", 37.98, 23.73),
    ("Dublin", 53.35, -6.26),
    ("Bratislava", 48.15, 17.11),
    ("Ljubljana", 46.06, 14.51),
]

_GEANT_EDGES = [
    ("London", "Paris"),
    ("London", "Amsterdam"),
    ("London", "Dublin"),
    ("London", "Madrid"),
    ("Paris", "Geneva"),
    ("Paris", "Madrid"),
    ("Paris", "Brussels"),
    ("Brussels", "Amsterdam"),
    ("Amsterdam", "Frankfurt"),
    ("Amsterdam", "Copenhagen"),
    ("Frankfurt", "Geneva"),
    ("Frankfurt", "Berlin"),
    ("Frankfurt", "Prague"),
    ("Frankfurt", "Vienna"),
    ("Geneva", "Milan"),
    ("Milan", "Rome"),
    ("Milan", "Vienna"),
    ("Vienna", "Prague"),
    ("Vienna", "Budapest"),
    ("Vienna", "Bratislava"),
    ("Vienna", "Ljubljana"),
    ("Prague", "Berlin"),
    ("Berlin", "Copenhagen"),
    ("Berlin", "Warsaw"),
    ("Copenhagen", "Stockholm"),
    ("Stockholm", "Warsaw"),
    ("Warsaw", "Budapest"),
    ("Budapest", "Zagreb"),
    ("Zagreb", "Ljubljana"),
    ("Zagreb", "Rome"),
    ("Rome", "Athens"),
    ("Madrid", "Lisbon"),
    ("Lisbon", "London"),
    ("Athens", "Milan"),
    ("Dublin", "Amsterdam"),
]


def _embedded(name: str, nodes, edges) -> GraphSpec:
    return GraphSpec(
        name,
        tuple(NodeSpec(n, lat, lng) for n, lat, lng in nodes),
        tuple(EdgeSpec(a, b) for a, b in edges),
    )


def abilene() -> GraphSpec:
    """The Abilene research backbone (11 nodes)."""
    return _embedded("Abilene", _ABILENE_NODES, _ABILENE_EDGES)


def nsfnet() -> GraphSpec:
    """The NSFNET T1 backbone (14 nodes)."""
    return _embedded("Nsfnet", _NSFNET_NODES, _NSFNET_EDGES)


def geant() -> GraphSpec:
    """A GEANT-like European research backbone (22 nodes)."""
    return _embedded("Geant", _GEANT_NODES, _GEANT_EDGES)


# ----------------------------------------------------------------------
# synthetic Waxman-style generator
# ----------------------------------------------------------------------


def synthetic_graph(
    size: int,
    seed: int = 0,
    name: Optional[str] = None,
    alpha: float = 0.55,
    beta: float = 0.18,
) -> GraphSpec:
    """A connected Waxman-style random graph with geographic positions.

    Nodes are placed uniformly in a Europe-sized lat/lng box; edges are
    sampled with the Waxman probability ``α·exp(−d / (β·D))`` and a
    random spanning tree guarantees connectivity, mimicking the sparse
    mesh structure of Topology Zoo networks.
    """
    if size < 2:
        raise ValueError("synthetic graphs need at least 2 nodes")
    rng = random.Random(seed)
    nodes = [
        NodeSpec(f"R{i}", 36.0 + rng.random() * 24.0, -10.0 + rng.random() * 40.0)
        for i in range(size)
    ]

    def distance(a: NodeSpec, b: NodeSpec) -> float:
        return math.hypot(a.latitude - b.latitude, a.longitude - b.longitude)

    diameter = max(
        distance(a, b) for a in nodes for b in nodes if a is not b
    )
    edges: set = set()
    # Random spanning tree for connectivity.
    order = list(range(size))
    rng.shuffle(order)
    for position in range(1, size):
        previous = order[rng.randrange(position)]
        current = order[position]
        edges.add((min(previous, current), max(previous, current)))
    # Waxman extra edges.
    for i in range(size):
        for j in range(i + 1, size):
            if (i, j) in edges:
                continue
            probability = alpha * math.exp(
                -distance(nodes[i], nodes[j]) / (beta * diameter)
            )
            if rng.random() < probability:
                edges.add((i, j))
    return GraphSpec(
        name if name is not None else f"Synthetic{size}s{seed}",
        tuple(nodes),
        tuple(EdgeSpec(nodes[i].name, nodes[j].name) for i, j in sorted(edges)),
    )


def zoo_collection(
    sizes: Sequence[int] = (16, 24, 36, 48),
    seeds: Sequence[int] = (1, 2),
    include_embedded: bool = True,
) -> List[GraphSpec]:
    """The benchmark topology suite (embedded graphs + synthetic sizes).

    Defaults are sized for a laptop-scale Python run; pass larger
    ``sizes`` (the paper's Zoo slice averages 84 and tops out at 240
    routers) to reproduce the full-scale sweep.
    """
    graphs: List[GraphSpec] = []
    if include_embedded:
        graphs.extend([abilene(), nsfnet(), geant()])
    for size in sizes:
        for seed in seeds:
            graphs.append(synthetic_graph(size, seed))
    return graphs
