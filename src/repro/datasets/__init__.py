"""Dataset generators: the running example, Topology-Zoo substitute,
NORDUnet substitute, MPLS synthesis pipeline and query suites."""

from repro.datasets.builtins import BUILTIN_NETWORKS, load_builtin
from repro.datasets.example import (
    EXAMPLE_QUERIES,
    build_example_network,
    example_traces,
)
from repro.datasets.graphs import EdgeSpec, GraphSpec, NodeSpec, shortest_path
from repro.datasets.nordunet import build_nordunet, nordunet_graph
from repro.datasets.queries import (
    GeneratedQuery,
    generate_query_suite,
    table1_queries,
)
from repro.datasets.synthesis import (
    MplsSynthesizer,
    SynthesisOptions,
    SynthesisReport,
    destination_ip,
    entry_link_name,
    exit_link_name,
    synthesize_network,
)
from repro.datasets.zoo import (
    abilene,
    geant,
    nsfnet,
    synthetic_graph,
    zoo_collection,
)

__all__ = [
    "BUILTIN_NETWORKS",
    "EXAMPLE_QUERIES",
    "EdgeSpec",
    "GeneratedQuery",
    "GraphSpec",
    "MplsSynthesizer",
    "NodeSpec",
    "SynthesisOptions",
    "SynthesisReport",
    "abilene",
    "build_example_network",
    "build_nordunet",
    "destination_ip",
    "entry_link_name",
    "example_traces",
    "exit_link_name",
    "geant",
    "generate_query_suite",
    "load_builtin",
    "nordunet_graph",
    "nsfnet",
    "shortest_path",
    "synthesize_network",
    "synthetic_graph",
    "table1_queries",
    "zoo_collection",
]
