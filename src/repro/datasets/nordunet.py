"""NORDUnet substitute: a synthetic 31-router Nordic operator network.

The paper's Table 1 runs on a dataplane snapshot of NORDUnet
(http://www.nordu.net/): 31 routers, more than 250,000 forwarding rules
and "advanced MPLS routing … including numerous service labels by which
it communicates with neighboring networks". The snapshot is
confidential, so this module builds the closest public-knowledge
equivalent:

* 31 routers at the real NORDUnet POP locations (Nordic capitals,
  regional Nordic cities and the international exchange points the
  operator peers at), connected in the operator's characteristic
  double-ring-with-spurs shape;
* the standard synthesis pipeline adds a full LSP mesh between the edge
  routers, many service-label tunnels, and per-link fast-failover
  bypass tunnels.

The ``density`` knob multiplies the number of service tunnels to scale
the rule count toward the paper's snapshot size (Python-scale defaults
are intentionally modest; see DESIGN.md's substitution table).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.datasets.graphs import EdgeSpec, GraphSpec, NodeSpec
from repro.datasets.synthesis import (
    MplsNetwork,
    SynthesisOptions,
    SynthesisReport,
    synthesize_network,
)

# (name, lat, lng) — Nordic POPs plus international exchange points.
_NORDUNET_NODES = [
    # Denmark
    ("cph1", 55.68, 12.57),
    ("cph2", 55.63, 12.65),
    ("ore1", 55.41, 11.55),
    # Sweden
    ("sto1", 59.33, 18.06),
    ("sto2", 59.36, 17.95),
    ("got1", 57.71, 11.97),
    ("mal1", 55.60, 13.00),
    ("lul1", 65.58, 22.15),
    # Norway
    ("osl1", 59.91, 10.75),
    ("osl2", 59.95, 10.65),
    ("trd1", 63.43, 10.40),
    ("ber1", 60.39, 5.32),
    # Finland
    ("hel1", 60.17, 24.94),
    ("hel2", 60.22, 24.81),
    ("oul1", 65.01, 25.47),
    # Iceland
    ("rey1", 64.15, -21.94),
    # International
    ("ham1", 53.55, 9.99),
    ("ams1", 52.37, 4.90),
    ("lon1", 51.51, -0.13),
    ("lon2", 51.50, -0.02),
    ("ffm1", 50.11, 8.68),
    ("gen1", 46.20, 6.14),
    ("nyc1", 40.71, -74.01),
    ("chi1", 41.88, -87.63),
    # Regional spurs
    ("aar1", 56.16, 10.20),
    ("odn1", 55.40, 10.39),
    ("upp1", 59.86, 17.64),
    ("tmp1", 61.50, 23.76),
    ("tro1", 69.65, 18.96),
    ("stv1", 58.97, 5.73),
    ("esb1", 55.47, 8.45),
]

_NORDUNET_EDGES = [
    # Danish core ring
    ("cph1", "cph2"),
    ("cph1", "ore1"),
    ("cph2", "mal1"),
    ("ore1", "esb1"),
    ("esb1", "aar1"),
    ("aar1", "odn1"),
    ("odn1", "cph1"),
    # Swedish ring
    ("mal1", "got1"),
    ("got1", "osl1"),
    ("got1", "sto1"),
    ("sto1", "sto2"),
    ("sto2", "upp1"),
    ("upp1", "lul1"),
    ("sto1", "hel1"),
    ("mal1", "sto2"),
    # Norwegian ring
    ("osl1", "osl2"),
    ("osl2", "ber1"),
    ("ber1", "stv1"),
    ("stv1", "osl1"),
    ("osl2", "trd1"),
    ("trd1", "lul1"),
    ("trd1", "tro1"),
    # Finnish ring
    ("hel1", "hel2"),
    ("hel2", "tmp1"),
    ("tmp1", "oul1"),
    ("oul1", "lul1"),
    # Iceland + transatlantic
    ("rey1", "lon1"),
    ("rey1", "nyc1"),
    ("cph1", "ham1"),
    ("cph2", "ham1"),
    ("ham1", "ams1"),
    ("ham1", "ffm1"),
    ("ams1", "lon1"),
    ("lon1", "lon2"),
    ("lon2", "nyc1"),
    ("ffm1", "gen1"),
    ("nyc1", "chi1"),
    ("osl1", "lon2"),
    ("hel1", "ffm1"),
]


def nordunet_graph() -> GraphSpec:
    """The 31-router NORDUnet-like topology."""
    return GraphSpec(
        "Nordunet",
        tuple(NodeSpec(n, lat, lng) for n, lat, lng in _NORDUNET_NODES),
        tuple(EdgeSpec(a, b) for a, b in _NORDUNET_EDGES),
    )


def build_nordunet(
    density: int = 1,
    max_lsp_pairs: Optional[int] = 120,
    seed: int = 7,
) -> Tuple[MplsNetwork, SynthesisReport]:
    """The NORDUnet substitute with MPLS configuration.

    ``density`` scales the number of service-label tunnels (the paper's
    snapshot is dominated by service labels); ``max_lsp_pairs`` caps the
    LSP mesh to keep Python runtimes interactive. ``density=1`` with the
    default cap yields a few thousand rules; raising both pushes toward
    the snapshot's >250k rules at proportional cost.
    """
    options = SynthesisOptions(
        edge_fraction=0.45,
        min_edge_routers=6,
        max_lsp_pairs=max_lsp_pairs,
        service_tunnels=24 * max(1, density),
        protect=True,
        seed=seed,
    )
    return synthesize_network(nordunet_graph(), options)
