"""DP007 — statically unsatisfiable query.

A query whose initial or final header constraint intersects the valid
header language ``H`` to nothing — or whose path expression admits no
non-empty link sequence — can never be satisfied on this network, no
matter what the routing tables do. Verification would grind through the
full pipeline only to answer UNSATISFIED; worse, a sweep repeats that
for every variant. The check reuses the triage tier's over-approximate
emptiness analysis (:func:`repro.analysis.triage.overapprox.unsatisfiable_reason`),
so it also catches constraints that resolve to an empty label set
(e.g. a label class the network simply does not use).

Queries naming labels or routers unknown to the network are flagged
too: the engine raises a :class:`~repro.errors.QuerySemanticsError` for
those, so surfacing them pre-flight saves a guaranteed error later.

The rule only fires when the lint run is handed queries
(``aalwines lint --query …`` or a preflighted farm sweep); a plain
network lint is unaffected.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.registry import rule
from repro.analysis.triage.overapprox import unsatisfiable_reason
from repro.errors import QueryError
from repro.query.parser import parse_query


@rule("DP007", "statically unsatisfiable query", Severity.WARNING)
def check_unsatisfiable_queries(
    context: AnalysisContext,
) -> Iterable[Diagnostic]:
    """Queries that can never be satisfied against this network."""
    return _check(context)


def _check(context: AnalysisContext) -> Iterator[Diagnostic]:
    for name, text in context.queries:
        try:
            query = parse_query(text)
            reason = unsatisfiable_reason(context.network, query)
        except QueryError as error:
            yield Diagnostic(
                code="DP007",
                severity=Severity.WARNING,
                location=Location(),
                message=(
                    f"query {name!r} cannot be verified against "
                    f"{context.network.name!r}: {error}"
                ),
                hint="fix the query text before running the engine",
            )
            continue
        if reason is None:
            continue
        yield Diagnostic(
            code="DP007",
            severity=Severity.WARNING,
            location=Location(),
            message=f"query {name!r} is statically unsatisfiable: {reason}",
            hint=(
                "the engine will always answer UNSATISFIED; drop the "
                "query from the sweep or fix its constraints"
            ),
        )
