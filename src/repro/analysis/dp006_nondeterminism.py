"""DP006 — nondeterministic overlap: several simultaneously-active entries.

A traffic-engineering group with two or more entries forwards
nondeterministically whenever more than one of its outgoing links is up
(§2.4: *any* active link of the highest-priority active group may be
used). That is sometimes intentional — ECMP-style splitting is modelled
exactly this way — but it also widens every reachability answer to "on
some nondeterministic choice", so the linter surfaces it as a warning
the operator can suppress once acknowledged.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.registry import rule


@rule("DP006", "nondeterministic overlap", Severity.WARNING)
def check_nondeterminism(context: AnalysisContext) -> Iterable[Diagnostic]:
    """Groups with more than one simultaneously-active entry."""
    return _check(context)


def _check(context: AnalysisContext) -> Iterator[Diagnostic]:
    for in_link, label, groups in context.group_sequences():
        for index, group in enumerate(groups):
            entries = (
                group.active_entries(context.failed)
                if context.failed
                else group.entries
            )
            if len(entries) < 2:
                continue
            links = sorted({entry.out_link.name for entry in entries})
            if len(links) == 1:
                detail = (
                    f"{len(entries)} entries over the single link {links[0]} "
                    "with different operation chains"
                )
            else:
                detail = (
                    f"{len(entries)} entries over links {', '.join(links)}"
                )
            yield Diagnostic(
                code="DP006",
                severity=Severity.WARNING,
                location=Location(
                    router=in_link.target.name,
                    in_link=in_link.name,
                    label=str(label),
                    priority=index + 1,
                ),
                message=(
                    f"nondeterministic forwarding: priority-{index + 1} group "
                    f"has {detail}; when several links are up the choice is "
                    "arbitrary"
                ),
                hint=(
                    "split the entries into distinct priorities if a "
                    "preference exists (or suppress DP006 for intended ECMP)"
                ),
            )
