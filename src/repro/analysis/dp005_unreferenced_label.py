"""DP005 — unreferenced label: pushed but matched by no routing rule.

A label that appears as a ``push`` target somewhere in the table but is
matched by no rule anywhere is a hygiene smell: the moment it surfaces
as top-of-stack at the next router, no table can forward it. Whether
that actually drops traffic depends on where it surfaces (DP001 flags
the provable per-entry cases); this network-wide check is therefore
*info* severity — it typically points at a tunnel whose far end was
decommissioned or renamed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.registry import rule
from repro.model.labels import Label
from repro.model.operations import Push
from repro.model.topology import Link


@rule("DP005", "unreferenced label", Severity.INFO)
def check_unreferenced_labels(context: AnalysisContext) -> Iterable[Diagnostic]:
    """Push targets no routing rule matches."""
    return _check(context)


def _check(context: AnalysisContext) -> Iterator[Diagnostic]:
    matched = {
        str(label) for _link, label, _groups in context.group_sequences()
    }
    # First rule pushing each unmatched label, for a stable location.
    pushed_at: Dict[str, Tuple[Link, Label, int]] = {}
    for in_link, label, priority, entry in context.rules():
        for op in entry.operations:
            if isinstance(op, Push) and str(op.label) not in matched:
                pushed_at.setdefault(str(op.label), (in_link, label, priority))
    for pushed_text in sorted(pushed_at):
        in_link, label, priority = pushed_at[pushed_text]
        yield Diagnostic(
            code="DP005",
            severity=Severity.INFO,
            location=Location(
                router=in_link.target.name,
                in_link=in_link.name,
                label=str(label),
                priority=priority + 1,
            ),
            message=(
                f"label {pushed_text} is pushed here but no routing rule in "
                f"the network matches it"
            ),
            hint=(
                f"add rules matching {pushed_text} along the tunnel, or drop "
                "the push"
            ),
        )
