"""DP004 — shadowed failover entry: protection that can never activate.

Group ``O_j`` of a routing cell is only consulted once every link of
the higher-priority groups ``O_1 … O_{j-1}`` has failed
(:meth:`~repro.model.routing.GroupSequence.required_failures`). An
entry of ``O_j`` whose own outgoing link appears in that required
failure set is unusable: by the time its group is reached, its link is
already down. If *every* entry of a group is shadowed this way, the
whole group is dead weight — the operator believes the cell has one
more layer of protection than it actually does.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.registry import rule


@rule("DP004", "shadowed failover entry", Severity.WARNING)
def check_shadowed_entries(context: AnalysisContext) -> Iterable[Diagnostic]:
    """Failover entries whose required failures kill their own link."""
    return _check(context)


def _check(context: AnalysisContext) -> Iterator[Diagnostic]:
    for in_link, label, groups in context.group_sequences():
        for index, group in enumerate(groups):
            if index == 0:
                continue  # the primary group has no activation precondition
            required = groups.required_failures(index)
            shadowed = [
                entry for entry in group if entry.out_link in required
            ]
            if not shadowed:
                continue
            whole_group = len(shadowed) == len(group)
            links = ", ".join(sorted(e.out_link.name for e in shadowed))
            if whole_group:
                message = (
                    f"unreachable failover group: every outgoing link of "
                    f"priority-{index + 1} ({links}) must already have failed "
                    f"for the group to activate — it can never forward"
                )
            else:
                message = (
                    f"shadowed failover entr{'ies' if len(shadowed) > 1 else 'y'}: "
                    f"outgoing link{'s' if len(shadowed) > 1 else ''} {links} of "
                    f"priority-{index + 1} must already have failed for the "
                    f"group to activate"
                )
            yield Diagnostic(
                code="DP004",
                severity=Severity.WARNING,
                location=Location(
                    router=in_link.target.name,
                    in_link=in_link.name,
                    label=str(label),
                    priority=index + 1,
                ),
                message=message,
                hint=(
                    "protect the cell with a link disjoint from the "
                    "higher-priority groups"
                ),
            )
