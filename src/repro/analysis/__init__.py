"""Dataplane linter: static analysis of MPLS routing tables.

Many dataplane defects — black holes, forwarding loops, dead failover
entries, operation chains that underflow the label stack — are visible
in the routing tables alone, before any pushdown system is built. This
package detects them with a rule-based static analysis over
:mod:`repro.model` (and **only** over the model layer: nothing here
imports :mod:`repro.pda` or :mod:`repro.verification`, so linting is
instant even on networks where verification takes seconds).

Quickstart::

    from repro.analysis import analyze

    report = analyze(network)
    for diagnostic in report.diagnostics:
        print(diagnostic.format())
    print(report.exit_code)  # 0 clean, 1 warnings, 2 errors

Rules (one module each, registered via :func:`repro.analysis.registry.rule`):

========  ========  ===============================================
code      severity  meaning
========  ========  ===============================================
DP001     error     black hole — traffic provably dropped
DP002     warning   forwarding loop on the label-transition graph
DP003     error     stack underflow / chain provably undefined
DP004     warning   shadowed or unreachable failover entry
DP005     info      label pushed but matched by no rule
DP006     warning   nondeterministic overlap inside one group
DP007     warning   statically unsatisfiable query
========  ========  ===============================================

DP007 is query-aware: it only fires when the lint run is handed queries
(``analyze(network, queries=[...])``, ``aalwines lint --query``, or a
preflighted farm sweep).

Lint findings are conservative: an *error* is provable from the tables,
while warnings over-approximate — the engine's verdicts remain the
ground truth (see DESIGN.md).
"""

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
    sort_diagnostics,
)
from repro.analysis.registry import (
    LintConfig,
    RuleInfo,
    all_rules,
    analyze,
    rule,
    rule_codes,
)
from repro.analysis.stacks import StackOutcome, interpret

# Importing the rule modules registers them; keep the list in code order.
from repro.analysis import dp001_black_hole  # noqa: E402
from repro.analysis import dp002_forwarding_loop  # noqa: E402
from repro.analysis import dp003_stack_underflow  # noqa: E402
from repro.analysis import dp004_shadowed_entry  # noqa: E402
from repro.analysis import dp005_unreferenced_label  # noqa: E402
from repro.analysis import dp006_nondeterminism  # noqa: E402
from repro.analysis import dp007_unsat_query  # noqa: E402

__all__ = [
    "AnalysisContext",
    "Diagnostic",
    "LintConfig",
    "LintReport",
    "Location",
    "RuleInfo",
    "Severity",
    "StackOutcome",
    "all_rules",
    "analyze",
    "interpret",
    "rule",
    "rule_codes",
    "sort_diagnostics",
    "dp001_black_hole",
    "dp002_forwarding_loop",
    "dp003_stack_underflow",
    "dp004_shadowed_entry",
    "dp005_unreferenced_label",
    "dp006_nondeterminism",
    "dp007_unsat_query",
]
