"""Abstract interpretation of operation chains over label stacks.

The linter never builds headers or pushdown systems; it reasons about a
rule's operation chain ``ω`` against the *shape* every valid header with
the matched top label must have (Definition 2.2 of the paper):

* top label IP → the whole header is exactly ``[ip]``;
* top label ``L_M^bot`` (bottom-of-stack MPLS) → exactly ``[smpls, ip]``;
* top label plain ``L_M`` → ``[mpls] · mpls* · [smpls, ip]`` with an
  *unknown* run of plain MPLS labels in the middle.

The abstraction tracks the exactly-known prefix of the stack (concrete
labels from the match and from pushes, kind-only markers for the cells
the header shape guarantees) above the unknown ``mpls*`` run. Because
operations only touch the top of the stack, the interpretation is exact
until a ``pop`` consumes into the unknown run; from then on the result
is :data:`UNKNOWN` and the rules report nothing (soundness: a lint
*error* is only emitted for behaviour provable for **every** valid
header matching the rule — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.model.labels import Label, LabelKind
from repro.model.operations import Operation, Pop, Push, Swap

#: A stack cell: a concrete label, or a kind-only marker for a cell whose
#: existence (but not identity) the header shape guarantees.
Cell = Union[Label, LabelKind]

#: Interpretation outcomes.
OK = "ok"
UNDEFINED = "undefined"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class StackOutcome:
    """Result of abstractly applying an operation chain.

    ``status`` is :data:`OK` (chain defined on every matching header,
    final top known), :data:`UNDEFINED` (chain provably undefined on
    every matching header — ``reason`` names the failing operation), or
    :data:`UNKNOWN` (the chain consumed into the unknown ``mpls*`` run;
    nothing can be concluded).
    """

    status: str
    #: The concrete top-of-stack label after the chain (OK status only,
    #: and only when the final top is an exactly-known label).
    top: Optional[Label] = None
    #: True when the final top is known to be an IP label (concrete or
    #: guaranteed by the header shape) — the packet leaves MPLS.
    top_is_ip: bool = False
    #: For UNDEFINED: which operation failed and why.
    reason: Optional[str] = None

    @property
    def is_ok(self) -> bool:
        return self.status == OK

    @property
    def is_undefined(self) -> bool:
        return self.status == UNDEFINED


def _kind_of(cell: Cell) -> LabelKind:
    return cell.kind if isinstance(cell, Label) else cell


def _initial_cells(top: Label) -> tuple:
    """(cells, has_unknown_run) for the shape of headers topped by ``top``."""
    if top.is_ip:
        return [top], False
    if top.is_bottom_mpls:
        return [top, LabelKind.IP], False
    # Plain MPLS: an unknown mpls* run (then smpls, ip) sits below.
    return [top], True


def _depth_below_is_at_least_two(cells: List[Cell], unknown_run: bool) -> bool:
    """Is the stack below the top guaranteed to hold ≥ 2 more labels?

    Decides what kind a swapped-in label must have: a top above ≥ 2 more
    labels must be plain MPLS; above exactly one (the IP) it must be
    bottom-of-stack MPLS; above nothing it must be IP.
    """
    if unknown_run:
        # Below the explicit cells: mpls* · smpls · ip, i.e. ≥ 2 labels
        # below the top whenever any explicit cell remains on top.
        return True
    return len(cells) >= 3


def interpret(top: Label, operations: Sequence[Operation]) -> StackOutcome:
    """Abstractly apply ``operations`` to every header topped by ``top``.

    Exact as long as the chain stays within the known prefix of the
    stack; returns :data:`UNKNOWN` the moment a pop consumes into the
    header shape's ``mpls*`` run.
    """
    cells, unknown_run = _initial_cells(top)
    for index, op in enumerate(operations):
        if not cells:
            if unknown_run:
                # The chain dug into the unknown mpls* run: one pop there
                # is always defined (≥ smpls · ip remains), but from now
                # on nothing is exactly known.
                return StackOutcome(UNKNOWN)
            # Unreachable for valid headers: the IP cell is never removed
            # without the chain being flagged undefined first.
            return StackOutcome(UNKNOWN)
        current = _kind_of(cells[0])
        if isinstance(op, Swap):
            outcome = _check_swap(op, current, cells, unknown_run, index)
            if outcome is not None:
                return outcome
            cells[0] = op.label
        elif isinstance(op, Push):
            outcome = _check_push(op, current, index)
            if outcome is not None:
                return outcome
            cells.insert(0, op.label)
        elif isinstance(op, Pop):
            if current is LabelKind.IP:
                return StackOutcome(
                    UNDEFINED,
                    reason=f"operation {index + 1} (pop) hits the IP label at "
                    "the bottom of every matching header — the stack is empty "
                    "of MPLS labels at that point",
                )
            cells.pop(0)
        else:  # pragma: no cover - the Operation union is closed
            return StackOutcome(UNKNOWN)

    if cells:
        head = cells[0]
        if isinstance(head, Label):
            return StackOutcome(OK, top=head, top_is_ip=head.is_ip)
        return StackOutcome(OK, top=None, top_is_ip=head is LabelKind.IP)
    if unknown_run:
        # Chain ended exactly at the unknown run: defined, top unknown.
        return StackOutcome(UNKNOWN)
    return StackOutcome(UNKNOWN)


def _check_swap(
    op: Swap, current: LabelKind, cells: List[Cell], unknown_run: bool, index: int
) -> Optional[StackOutcome]:
    """None when the swap is valid; an UNDEFINED outcome otherwise."""
    below_deep = _depth_below_is_at_least_two(cells, unknown_run)
    if current is LabelKind.IP:
        if not op.label.is_ip:
            return StackOutcome(
                UNDEFINED,
                reason=f"operation {index + 1} (swap({op.label})) replaces the "
                "IP label with a non-IP label",
            )
        return None
    if below_deep:
        if not op.label.is_mpls:
            return StackOutcome(
                UNDEFINED,
                reason=f"operation {index + 1} (swap({op.label})) puts a "
                "non-plain-MPLS label above deeper stack entries",
            )
        return None
    # Exactly one label (the IP) below: the top must stay bottom-of-stack.
    if not op.label.is_bottom_mpls:
        return StackOutcome(
            UNDEFINED,
            reason=f"operation {index + 1} (swap({op.label})) replaces the "
            "bottom-of-stack label directly above the IP label with a label "
            "of the wrong class",
        )
    return None


def _check_push(op: Push, current: LabelKind, index: int) -> Optional[StackOutcome]:
    """None when the push is valid; an UNDEFINED outcome otherwise."""
    if current is LabelKind.IP:
        if not op.label.is_bottom_mpls:
            return StackOutcome(
                UNDEFINED,
                reason=f"operation {index + 1} (push({op.label})) pushes a "
                "label without the bottom-of-stack bit directly onto the IP "
                "label",
            )
        return None
    if not op.label.is_mpls:
        return StackOutcome(
            UNDEFINED,
            reason=f"operation {index + 1} (push({op.label})) pushes a "
            "non-plain-MPLS label onto an MPLS stack",
        )
    return None
