"""The lint-rule registry and the :func:`analyze` entry point.

Rules register themselves with the :func:`rule` decorator (one module
per rule, imported by :mod:`repro.analysis`); :func:`analyze` runs the
configured subset over an :class:`~repro.analysis.context.AnalysisContext`
and folds the findings into a :class:`~repro.analysis.diagnostics.LintReport`.

A :class:`LintConfig` selects rules by code: ``enabled`` restricts the
run to an explicit subset, ``suppressed`` removes codes from whatever
is enabled, and ``min_severity`` drops findings below a severity floor
after the rules ran.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.errors import AnalysisError
from repro.model.network import MplsNetwork
from repro.model.topology import Link
from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    sort_diagnostics,
)

#: A rule is a pure function from shared context to findings.
RuleFunc = Callable[[AnalysisContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class RuleInfo:
    """Registry record of one lint rule."""

    code: str
    title: str
    default_severity: Severity
    func: RuleFunc
    description: str


_REGISTRY: Dict[str, RuleInfo] = {}


def rule(
    code: str, title: str, severity: Severity
) -> Callable[[RuleFunc], RuleFunc]:
    """Class decorator registering one rule function under a stable code."""

    def register(func: RuleFunc) -> RuleFunc:
        if code in _REGISTRY:
            raise AnalysisError(f"duplicate lint rule code {code!r}")
        _REGISTRY[code] = RuleInfo(
            code=code,
            title=title,
            default_severity=severity,
            func=func,
            description=(func.__doc__ or "").strip().splitlines()[0]
            if func.__doc__
            else title,
        )
        return func

    return register


def all_rules() -> Tuple[RuleInfo, ...]:
    """Every registered rule, ordered by code."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def rule_codes() -> Tuple[str, ...]:
    """The registered rule codes, sorted."""
    return tuple(sorted(_REGISTRY))


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule selection.

    ``enabled`` of None means "all registered rules"; ``suppressed``
    always wins over ``enabled``. Codes are validated against the
    registry so a typo fails loudly instead of silently linting less.
    """

    enabled: Optional[FrozenSet[str]] = None
    suppressed: FrozenSet[str] = frozenset()
    min_severity: Optional[Severity] = None

    @classmethod
    def of(
        cls,
        enabled: Optional[Iterable[str]] = None,
        suppressed: Iterable[str] = (),
        min_severity: Optional[Union[str, Severity]] = None,
    ) -> "LintConfig":
        """Build a config from loose inputs (CLI/server-friendly)."""
        floor: Optional[Severity] = None
        if min_severity is not None:
            floor = (
                min_severity
                if isinstance(min_severity, Severity)
                else Severity(min_severity)
            )
        return cls(
            enabled=frozenset(enabled) if enabled is not None else None,
            suppressed=frozenset(suppressed),
            min_severity=floor,
        )

    def selected(self) -> Tuple[RuleInfo, ...]:
        """The rules this config runs, in code order."""
        known = set(_REGISTRY)
        requested = self.enabled if self.enabled is not None else known
        unknown = (set(requested) | set(self.suppressed)) - known
        if unknown:
            raise AnalysisError(
                "unknown lint rule code(s): "
                + ", ".join(sorted(unknown))
                + f" (known: {', '.join(sorted(known))})"
            )
        active = set(requested) - set(self.suppressed)
        return tuple(_REGISTRY[code] for code in sorted(active))


#: Links may be given as Link objects or names.
LinksArg = Iterable[Union[str, Link]]

#: Queries may be given as bare texts or (name, text) pairs.
QueryArg = Iterable[Union[str, Tuple[str, str]]]


def _link_names(failed_links: LinksArg) -> FrozenSet[str]:
    return frozenset(
        link if isinstance(link, str) else link.name for link in failed_links
    )


def _named_queries(queries: QueryArg) -> Tuple[Tuple[str, str], ...]:
    named: List[Tuple[str, str]] = []
    for entry in queries:
        if isinstance(entry, str):
            named.append((f"q{len(named):04d}", entry))
        else:
            named.append((entry[0], entry[1]))
    return tuple(named)


def analyze(
    network: MplsNetwork,
    failed_links: LinksArg = frozenset(),
    config: Optional[LintConfig] = None,
    queries: QueryArg = (),
) -> LintReport:
    """Statically lint a network's routing tables.

    Runs every enabled rule over a shared :class:`AnalysisContext` —
    no pushdown system is ever constructed — and returns a
    :class:`LintReport` with deterministic finding order. With
    ``failed_links`` the analysis assumes those links are down: only the
    then-active traffic-engineering groups are considered, and cells
    whose protection is exhausted surface as black holes (DP001).
    ``queries`` (bare texts or (name, text) pairs) feeds the
    query-aware rules: DP007 flags queries that can never be satisfied
    against this network's label alphabet and topology.
    """
    if config is None:
        config = LintConfig()
    selected = config.selected()
    start = time.perf_counter()
    context = AnalysisContext(
        network, _link_names(failed_links), queries=_named_queries(queries)
    )
    findings: List[Diagnostic] = []
    for info in selected:
        findings.extend(info.func(context))
    if config.min_severity is not None:
        floor = config.min_severity.rank
        findings = [d for d in findings if d.severity.rank >= floor]
    return LintReport(
        network_name=network.name,
        diagnostics=sort_diagnostics(findings),
        failed_links=tuple(sorted(context.failed_links)),
        elapsed_seconds=time.perf_counter() - start,
        rules_run=tuple(info.code for info in selected),
    )
