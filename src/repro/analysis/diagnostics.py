"""Diagnostic types of the dataplane linter.

A :class:`Diagnostic` is one finding of one rule: a stable code
(``DP001`` …), a :class:`Severity`, a :class:`Location` pinning the
finding to a routing-table cell, a human-readable message, and an
optional fix hint. A :class:`LintReport` aggregates the findings of one
:func:`repro.analysis.analyze` run and carries the CLI's exit-code
contract (0 clean / 1 warnings / 2 errors).

Everything in this module is plain data — picklable (diagnostics ride
farm :class:`~repro.verification.batch.BatchItem`\\ s across process
boundaries) and JSON-ready via :meth:`Diagnostic.to_dict`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings describe dataplane defects that drop or misroute
    traffic; ``WARNING`` findings are conservative (the abstraction may
    over-approximate — the engine's verdicts remain the ground truth);
    ``INFO`` findings are hygiene notes.
    """

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric ordering: info < warning < error."""
        return _SEVERITY_RANKS[self.value]


_SEVERITY_RANKS: Dict[str, int] = {"info": 0, "warning": 1, "error": 2}


@dataclass(frozen=True, order=True)
class Location:
    """Where a finding lives in the routing table.

    The four coordinates mirror the table's structure: the router whose
    table holds the rule, the incoming link and matched label addressing
    the cell, and the 1-based traffic-engineering priority of the entry.
    Rules that flag network-wide conditions (e.g. an unreferenced label)
    may leave coordinates unset.
    """

    router: Optional[str] = None
    in_link: Optional[str] = None
    label: Optional[str] = None
    priority: Optional[int] = None

    def __str__(self) -> str:
        parts = []
        if self.router is not None:
            parts.append(self.router)
        if self.in_link is not None and self.label is not None:
            parts.append(f"τ({self.in_link}, {self.label})")
        elif self.in_link is not None:
            parts.append(self.in_link)
        elif self.label is not None:
            parts.append(str(self.label))
        if self.priority is not None:
            parts.append(f"priority {self.priority}")
        return ", ".join(parts) if parts else "network"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering, omitting unset coordinates."""
        document: Dict[str, Any] = {}
        if self.router is not None:
            document["router"] = self.router
        if self.in_link is not None:
            document["in_link"] = self.in_link
        if self.label is not None:
            document["label"] = self.label
        if self.priority is not None:
            document["priority"] = self.priority
        return document


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule."""

    code: str
    severity: Severity
    location: Location
    message: str
    hint: Optional[str] = None

    def format(self) -> str:
        """One-line rendering: ``DP001 error [v2, τ(e1, s20)]: message``."""
        line = f"{self.code} {self.severity.value} [{self.location}]: {self.message}"
        if self.hint:
            line += f"  (hint: {self.hint})"
        return line

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (the server's and CLI's wire format)."""
        document: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "location": self.location.to_dict(),
            "message": self.message,
        }
        if self.hint:
            document["hint"] = self.hint
        return document

    def sort_key(self) -> Tuple[str, Tuple[str, str, str, int], str]:
        """Deterministic ordering key: code, then location, then message."""
        loc = self.location
        return (
            self.code,
            (loc.router or "", loc.in_link or "", loc.label or "", loc.priority or 0),
            self.message,
        )


@dataclass
class LintReport:
    """The outcome of one :func:`repro.analysis.analyze` run."""

    network_name: str
    diagnostics: Tuple[Diagnostic, ...] = ()
    #: Links the analysis assumed failed (names, sorted).
    failed_links: Tuple[str, ...] = ()
    elapsed_seconds: float = 0.0
    #: Rule codes that actually ran (after enable/suppress config).
    rules_run: Tuple[str, ...] = field(default_factory=tuple)

    def count(self, severity: Severity) -> int:
        """Number of findings of one severity."""
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def infos(self) -> int:
        return self.count(Severity.INFO)

    @property
    def clean(self) -> bool:
        """True when there are no findings at all."""
        return not self.diagnostics

    @property
    def worst_severity(self) -> Optional[Severity]:
        """The highest severity among the findings, or None when clean."""
        worst: Optional[Severity] = None
        for diagnostic in self.diagnostics:
            if worst is None or diagnostic.severity.rank > worst.rank:
                worst = diagnostic.severity
        return worst

    @property
    def exit_code(self) -> int:
        """The CLI contract: 0 clean/info-only, 1 warnings, 2 errors."""
        worst = self.worst_severity
        if worst is Severity.ERROR:
            return 2
        if worst is Severity.WARNING:
            return 1
        return 0

    def by_code(self, code: str) -> Tuple[Diagnostic, ...]:
        """The findings of one rule."""
        return tuple(d for d in self.diagnostics if d.code == code)

    def codes(self) -> Tuple[str, ...]:
        """The distinct codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def format_text(self) -> str:
        """The CLI's human-readable multi-line rendering."""
        lines = [diagnostic.format() for diagnostic in self.diagnostics]
        lines.append(
            f"{self.network_name}: {self.errors} error(s), "
            f"{self.warnings} warning(s), {self.infos} info(s) "
            f"in {self.elapsed_seconds * 1000:.1f}ms"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering of the whole report."""
        return {
            "network": self.network_name,
            "clean": self.clean,
            "exit_code": self.exit_code,
            "counts": {
                "errors": self.errors,
                "warnings": self.warnings,
                "infos": self.infos,
            },
            "failed_links": list(self.failed_links),
            "rules_run": list(self.rules_run),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> Tuple[Diagnostic, ...]:
    """Deterministic report order: by code, then location, then message."""
    return tuple(sorted(diagnostics, key=Diagnostic.sort_key))
