"""DP002 — forwarding loop: a cycle in the static label-transition graph.

The graph's nodes are defined routing-table cells ``(link, label)``;
edges follow each entry to the cell its statically-known rewritten top
label selects at the next router (stack-top abstraction, see
:meth:`~repro.analysis.context.AnalysisContext.transition_graph`).
A cycle means a packet whose top label enters the cycle is forwarded
around it forever — classic swap-chain loops are caught exactly.

The check is conservative in the warning direction: a reported cycle is
a real cycle of the abstraction, but whether a concrete packet reaches
it (and whether failover priorities ever steer traffic into it) is for
the engine to decide, hence severity *warning* rather than error.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from repro.analysis.context import AnalysisContext, GraphNode
from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.registry import rule


@rule("DP002", "forwarding loop", Severity.WARNING)
def check_forwarding_loops(context: AnalysisContext) -> Iterable[Diagnostic]:
    """Cycles on the static label-transition graph."""
    return _check(context)


def _strongly_connected_components(
    graph: Dict[GraphNode, List[GraphNode]]
) -> List[List[GraphNode]]:
    """Tarjan's SCC algorithm, iteratively (tables can be deep)."""
    index_of: Dict[GraphNode, int] = {}
    low: Dict[GraphNode, int] = {}
    on_stack: Dict[GraphNode, bool] = {}
    stack: List[GraphNode] = []
    components: List[List[GraphNode]] = []
    counter = [0]

    for root in graph:
        if root in index_of:
            continue
        work = [(root, iter(graph.get(root, ())))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in graph:
                    continue
                if successor not in index_of:
                    index_of[successor] = low[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append((successor, iter(graph.get(successor, ()))))
                    advanced = True
                    break
                if on_stack.get(successor):
                    low[node] = min(low[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: List[GraphNode] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _check(context: AnalysisContext) -> Iterator[Diagnostic]:
    graph = context.transition_graph()
    topology = context.network.topology
    for component in _strongly_connected_components(graph):
        if len(component) == 1:
            node = component[0]
            if node not in graph.get(node, ()):
                continue  # trivial SCC, no self-loop
        ordered = sorted(component)
        cycle = " → ".join(
            f"{topology.link(link_name).target.name}[{link_name}, {label_text}]"
            for link_name, label_text in ordered
        )
        first_link, first_label = ordered[0]
        in_link = topology.link(first_link)
        yield Diagnostic(
            code="DP002",
            severity=Severity.WARNING,
            location=Location(
                router=in_link.target.name,
                in_link=first_link,
                label=first_label,
            ),
            message=(
                f"forwarding loop: the label-transition graph has a cycle "
                f"{cycle} → … — packets entering it are forwarded forever"
            ),
            hint=(
                "break the cycle by rewriting one hop to a label that "
                "progresses toward an egress"
            ),
        )
