"""Process-wide triage counters, for ``GET /metrics`` and benchmarks.

The obs registry (:mod:`repro.obs`) is off by default and per-process;
the server and benchmark tooling additionally want a cheap, always-on
account of what triage did — how many queries each verdict settled and
how much solver work that skipped. A tiny lock-guarded accumulator
(mirroring the compile-memo counters on
:class:`repro.verification.compiler.QueryCompiler`) provides that
without coupling triage to the obs switch.
"""

from __future__ import annotations

import threading
from typing import Dict, Union

from repro.analysis.triage.result import TriageResult, TriageVerdict


class TriageStats:
    """Thread-safe verdict counters for one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.runs = 0
        self.proven_yes = 0
        self.proven_no = 0
        self.inconclusive = 0
        #: Full pipeline runs (compile + saturate) skipped by a settled
        #: verdict — the unit the benchmark reports as the hit count.
        self.saved_pipelines = 0
        self.elapsed_seconds = 0.0

    def record(self, result: TriageResult) -> None:
        """Fold one triage outcome into the counters."""
        with self._lock:
            self.runs += 1
            self.elapsed_seconds += result.elapsed_seconds
            if result.verdict is TriageVerdict.PROVEN_YES:
                self.proven_yes += 1
                self.saved_pipelines += 1
            elif result.verdict is TriageVerdict.PROVEN_NO:
                self.proven_no += 1
                self.saved_pipelines += 1
            else:
                self.inconclusive += 1

    def reset(self) -> None:
        """Zero every counter (tests and benchmark runs start fresh)."""
        with self._lock:
            self.runs = 0
            self.proven_yes = 0
            self.proven_no = 0
            self.inconclusive = 0
            self.saved_pipelines = 0
            self.elapsed_seconds = 0.0

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """JSON-ready snapshot of the counters."""
        with self._lock:
            return {
                "runs": self.runs,
                "proven_yes": self.proven_yes,
                "proven_no": self.proven_no,
                "inconclusive": self.inconclusive,
                "saved_pipelines": self.saved_pipelines,
                "elapsed_seconds": self.elapsed_seconds,
            }

    @property
    def hit_rate(self) -> float:
        """Fraction of triage runs that settled their query."""
        with self._lock:
            if self.runs == 0:
                return 0.0
            return (self.proven_yes + self.proven_no) / self.runs


_GLOBAL = TriageStats()


def triage_stats() -> TriageStats:
    """The process-wide accumulator every triage run reports into."""
    return _GLOBAL
