"""The triage pipeline: concrete witness search first, then the fixpoint.

Order matters for throughput: the bounded concrete search is one to two
orders of magnitude cheaper than the label-flow fixpoint (it touches
only the configurations a real packet reaches, and fails fast when the
initial-header language or the forwarding relation gives it nothing to
explore), and in operator sweeps most scenarios are satisfied. So
triage tries to prove YES cheaply and pays for the fixpoint only when
no witness turned up. Both passes are sound, so the order cannot change
which verdicts are *possible* — only which one is found first, and a
query where both passes could answer does not exist (a witness is a
satisfying trace; the fixpoint covers all of them).

Query-resolution errors (unknown labels or routers in literal atoms)
propagate — triage must answer the *same* question the engine would,
and the engine raises on those.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro import obs
from repro.analysis.triage.overapprox import analyze_flow
from repro.analysis.triage.result import TriageResult, TriageVerdict
from repro.analysis.triage.stats import triage_stats
from repro.analysis.triage.underapprox import SearchLimits, find_witness
from repro.model.network import MplsNetwork
from repro.query.ast import Query
from repro.query.nfa import label_nfa, link_nfa
from repro.query.parser import parse_query


def run_triage(
    network: MplsNetwork,
    query: Union[Query, str],
    limits: Optional[SearchLimits] = None,
) -> TriageResult:
    """Statically triage one query against one network.

    Returns ``PROVEN_NO`` when the over-approximate label-flow analysis
    covers no satisfying configuration, ``PROVEN_YES`` (with a concrete
    witness trace) when the bounded failure-free simulation reaches one,
    and ``INCONCLUSIVE`` otherwise. Never builds a pushdown system.
    """
    start = time.perf_counter()
    if isinstance(query, str):
        query = parse_query(query)
    a_nfa = label_nfa(query.initial_header, network)
    b_nfa = link_nfa(query.path, network)
    c_nfa = label_nfa(query.final_header, network)

    with obs.span("triage.witness"):
        trace = find_witness(network, query, a_nfa, b_nfa, c_nfa, limits)
    if trace is not None:
        result = TriageResult(
            TriageVerdict.PROVEN_YES,
            trace=trace,
            elapsed_seconds=time.perf_counter() - start,
        )
        return _record(result)

    with obs.span("triage.flow"):
        flow = analyze_flow(network, query, a_nfa, b_nfa, c_nfa)
    if flow.proven_unreachable:
        result = TriageResult(
            TriageVerdict.PROVEN_NO,
            reason=flow.reason,
            elapsed_seconds=time.perf_counter() - start,
        )
        return _record(result)

    result = TriageResult(
        TriageVerdict.INCONCLUSIVE,
        elapsed_seconds=time.perf_counter() - start,
    )
    return _record(result)


def _record(result: TriageResult) -> TriageResult:
    triage_stats().record(result)
    if obs.enabled():
        obs.add("triage.runs")
        obs.add(f"triage.{result.verdict.value}")
        if result.settled:
            obs.add("triage.saved_pipelines")
    return result
