"""Over-approximate label-flow analysis: a sound UNREACHABLE prover.

The analysis runs a fixpoint over abstract states ``(link, q_b)`` — a
network link crossed with a state of the query's path automaton — whose
abstract value is an :class:`AbstractHeader`: the set of labels that may
be on top of the stack when a packet arrives on that link with the path
automaton in that state, plus an interval bounding the header's length
(number of labels, IP included).

Soundness argument (the only property that matters here): every concrete
trace ``(e1, h1) … (en, hn)`` satisfying the query induces a run of this
abstraction —

* ``(e1, q)`` is seeded for every ``q ∈ δ_b(initial, e1)`` with an
  abstraction of ``Lang(a) ∩ H`` (h1 must lie in it),
* each forwarding step uses a routing entry whose traffic-engineering
  group needs ``required_failures ⊆ F`` with ``|F| ≤ k`` and whose
  out-link carried traffic (so is not itself required-failed); the
  abstract transfer keeps every entry satisfying those *necessary*
  conditions, and the new top-label set / length interval contain the
  concrete rewrite because :func:`repro.analysis.stacks.interpret` is
  exact-or-wider and :func:`repro.model.operations.stack_growth` is the
  exact length delta,
* the final configuration ``(en, q ∈ accepting)`` has ``hn ∈ Lang(c) ∩ H``,
  so the acceptance check — "does some word of ``Lang(c) ∩ H`` start with
  a label in ``tops`` and have a length inside the interval?" — passes.

Contrapositive: if no reached accepting state passes the acceptance
check, no satisfying trace exists — ``PROVEN_NO``. Widening only ever
*enlarges* abstract values (length upper bound jumps to unbounded past a
fixed cap), so it cannot break the covering argument, and makes the
chaotic iteration a finite-height monotone fixpoint (the hypothesis
tests pin down monotonicity under rule removal).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.stacks import OK, UNDEFINED, StackOutcome, interpret
from repro.model.labels import Label
from repro.model.network import MplsNetwork
from repro.model.operations import Operation, stack_growth
from repro.model.topology import Link
from repro.query.ast import Query
from repro.query.nfa import Nfa, label_nfa, link_nfa, valid_header_nfa

#: An abstract state: (link name, path-automaton state).
FlowState = Tuple[str, int]


@dataclass(frozen=True)
class AbstractHeader:
    """Top-of-stack label set × header-length interval.

    ``max_len is None`` means unbounded. Lengths count labels including
    the terminating IP, so every valid header has length ≥ 1.
    """

    tops: FrozenSet[Label]
    min_len: int
    max_len: Optional[int]

    def join(self, other: "AbstractHeader") -> "AbstractHeader":
        """Least upper bound of the two abstractions."""
        if self.max_len is None or other.max_len is None:
            max_len = None
        else:
            max_len = max(self.max_len, other.max_len)
        # Identity fast path: transfer results share canonical label sets
        # (the full alphabet, the IP set), making joins against them free.
        if self.tops is other.tops:
            tops = self.tops
        else:
            tops = self.tops | other.tops
        return AbstractHeader(
            tops=tops,
            min_len=min(self.min_len, other.min_len),
            max_len=max_len,
        )

    def subsumes(self, other: "AbstractHeader") -> bool:
        """True when ``other ⊑ self`` (every header other admits, self does)."""
        if self.tops is not other.tops and not other.tops <= self.tops:
            return False
        if self.min_len > other.min_len:
            return False
        if self.max_len is None:
            return True
        return other.max_len is not None and other.max_len <= self.max_len


@dataclass(frozen=True)
class FlowAnalysis:
    """Result of the label-flow fixpoint.

    ``values`` maps every *reached* abstract state to its final abstract
    value; ``accepting_states`` lists the reached states where the
    acceptance check passed. An empty ``accepting_states`` is the proof:
    ``reason`` then explains which constraint could never be met.
    """

    values: Dict[FlowState, AbstractHeader]
    accepting_states: Tuple[FlowState, ...]
    reason: Optional[str]

    @property
    def proven_unreachable(self) -> bool:
        return not self.accepting_states


# ----------------------------------------------------------------------
# NFA word-length helpers
# ----------------------------------------------------------------------


def _min_word_length(nfa: Nfa) -> Optional[int]:
    """Length of a shortest accepted word, or None when the language is
    empty."""
    if nfa.initial & nfa.accepting:
        return 0
    distance: Dict[int, int] = {state: 0 for state in nfa.initial}
    frontier: Deque[int] = deque(nfa.initial)
    while frontier:
        state = frontier.popleft()
        step = distance[state] + 1
        for edge in nfa.edges_from(state):
            if not edge.symbols or edge.target in distance:
                continue
            if edge.target in nfa.accepting:
                return step
            distance[edge.target] = step
            frontier.append(edge.target)
    return None


def _cycle_states(nfa: Nfa, alive: Iterable[int]) -> FrozenSet[int]:
    """States lying on a (nonempty-symbol) cycle, via iterative DFS."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {state: WHITE for state in alive}
    on_cycle: Set[int] = set()
    for root in color:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = GRAY
        path: List[int] = [root]
        while stack:
            state, edge_index = stack[-1]
            edges = nfa.edges_from(state)
            if edge_index < len(edges):
                stack[-1] = (state, edge_index + 1)
                target = edges[edge_index].target
                if target not in color or not edges[edge_index].symbols:
                    continue
                if color[target] == WHITE:
                    color[target] = GRAY
                    stack.append((target, 0))
                    path.append(target)
                elif color[target] == GRAY:
                    # Every state on the stack from `target` onward loops.
                    start = path.index(target)
                    on_cycle.update(path[start:])
            else:
                color[state] = BLACK
                stack.pop()
                path.pop()
    return frozenset(on_cycle)


class _SuffixLengths:
    """Per-state accepted-suffix length bounds of a *trimmed* NFA.

    For a trimmed automaton every state reaches acceptance, so
    ``min_to_accept`` is total; ``max_to_accept`` is None for states
    from which arbitrarily long suffixes are accepted (a cycle is
    reachable).
    """

    def __init__(self, nfa: Nfa) -> None:
        self._nfa = nfa
        alive = self._alive_states()
        self.min_to_accept = self._min_distances(alive)
        cycles = _cycle_states(nfa, alive)
        self.unbounded = self._can_reach(cycles, alive)
        self.max_to_accept = self._max_distances(alive)

    def _alive_states(self) -> FrozenSet[int]:
        states: Set[int] = set(self._nfa.initial) | set(self._nfa.accepting)
        for state in range(self._nfa.state_count):
            states.add(state)
        return frozenset(states)

    def _predecessors(self, alive: FrozenSet[int]) -> Dict[int, List[int]]:
        backward: Dict[int, List[int]] = {}
        for state in alive:
            for edge in self._nfa.edges_from(state):
                if edge.symbols:
                    backward.setdefault(edge.target, []).append(state)
        return backward

    def _min_distances(self, alive: FrozenSet[int]) -> Dict[int, int]:
        backward = self._predecessors(alive)
        distance: Dict[int, int] = {state: 0 for state in self._nfa.accepting}
        frontier: Deque[int] = deque(self._nfa.accepting)
        while frontier:
            state = frontier.popleft()
            for source in backward.get(state, ()):
                if source not in distance:
                    distance[source] = distance[state] + 1
                    frontier.append(source)
        return distance

    def _can_reach(
        self, targets: FrozenSet[int], alive: FrozenSet[int]
    ) -> FrozenSet[int]:
        backward = self._predecessors(alive)
        reached: Set[int] = set(targets)
        frontier: Deque[int] = deque(targets)
        while frontier:
            state = frontier.popleft()
            for source in backward.get(state, ()):
                if source not in reached:
                    reached.add(source)
                    frontier.append(source)
        return frozenset(reached)

    def _max_distances(self, alive: FrozenSet[int]) -> Dict[int, int]:
        # Longest path to acceptance over the cycle-free states (a DAG).
        memo: Dict[int, int] = {}

        def longest(state: int) -> int:
            cached = memo.get(state)
            if cached is not None:
                return cached
            best = 0 if state in self._nfa.accepting else -1
            for edge in self._nfa.edges_from(state):
                if not edge.symbols or edge.target in self.unbounded:
                    continue
                if edge.target not in self.min_to_accept:
                    continue  # dead state (possible in untrimmed automata)
                below = longest(edge.target)
                if below >= 0:
                    best = max(best, below + 1)
            memo[state] = best
            return best

        for state in alive:
            if state not in self.unbounded and state in self.min_to_accept:
                longest(state)
        return memo

    def range_from(
        self, states: Iterable[int]
    ) -> Optional[Tuple[int, Optional[int]]]:
        """(min, max-or-None) accepted-suffix lengths from a state set,
        or None when no member reaches acceptance."""
        lo: Optional[int] = None
        hi: Optional[int] = 0
        seen = False
        for state in states:
            min_here = self.min_to_accept.get(state)
            if min_here is None:
                continue
            seen = True
            lo = min_here if lo is None else min(lo, min_here)
            if state in self.unbounded:
                hi = None
            elif hi is not None:
                hi = max(hi, self.max_to_accept.get(state, 0))
        if not seen or lo is None:
            return None
        return lo, hi


def _accepts_some_nonempty(nfa: Nfa) -> bool:
    """Does the automaton accept any word of length ≥ 1?"""
    seen: Set[int] = set()
    frontier: Deque[int] = deque()
    for state in nfa.initial:
        for edge in nfa.edges_from(state):
            if edge.symbols and edge.target not in seen:
                seen.add(edge.target)
                frontier.append(edge.target)
    while frontier:
        state = frontier.popleft()
        if state in nfa.accepting:
            return True
        for edge in nfa.edges_from(state):
            if edge.symbols and edge.target not in seen:
                seen.add(edge.target)
                frontier.append(edge.target)
    return False


# ----------------------------------------------------------------------
# the fixpoint
# ----------------------------------------------------------------------


def _initial_abstraction(aH: Nfa) -> AbstractHeader:
    """Abstraction of ``Lang(a) ∩ H``: its first-symbol set and the
    interval of its word lengths. ``aH`` must be non-empty."""
    tops: Set[Label] = set()
    for state in aH.initial:
        for edge in aH.edges_from(state):
            for symbol in edge.symbols:
                if isinstance(symbol, Label):
                    tops.add(symbol)
    lengths = _SuffixLengths(aH)
    rng = lengths.range_from(aH.initial)
    if rng is None:  # pragma: no cover - caller checked emptiness
        return AbstractHeader(frozenset(), 1, 0)
    return AbstractHeader(frozenset(tops), max(1, rng[0]), rng[1])


def _tops_after(
    outcome: StackOutcome, ip_labels: FrozenSet[Label], all_labels: FrozenSet[Label]
) -> FrozenSet[Label]:
    """Over-approximate top-of-stack set after an operation chain."""
    if outcome.status == OK:
        if outcome.top is not None:
            return frozenset((outcome.top,))
        if outcome.top_is_ip:
            return ip_labels
    # UNKNOWN (or an OK kind-marker the stacks module never emits):
    # anything the network knows could be on top.
    return all_labels


def unsatisfiable_reason(network: MplsNetwork, query: Query) -> Optional[str]:
    """The over-approximation's closed-form emptiness checks alone.

    Returns a reason when the query is *statically* unsatisfiable — its
    initial or final header constraint intersects the valid-header
    language to nothing, or its path expression admits no non-empty link
    sequence — and None otherwise. This is the cheap prefix of
    :func:`analyze_flow` (no fixpoint), shared with the DP007 lint rule;
    raises :class:`repro.errors.QuerySemanticsError` for queries naming
    unknown labels or routers, like the engine does.
    """
    a_nfa = label_nfa(query.initial_header, network)
    b_nfa = link_nfa(query.path, network)
    c_nfa = label_nfa(query.final_header, network)
    valid = valid_header_nfa(network)
    if _min_word_length(a_nfa.intersect(valid)) is None:
        return "initial-header constraint matches no valid header"
    if _min_word_length(c_nfa.intersect(valid)) is None:
        return "final-header constraint matches no valid header"
    if not _accepts_some_nonempty(b_nfa.trim()):
        return "path expression matches no non-empty link sequence"
    return None


def analyze_flow(
    network: MplsNetwork,
    query: Query,
    a_nfa: Optional[Nfa] = None,
    b_nfa: Optional[Nfa] = None,
    c_nfa: Optional[Nfa] = None,
) -> FlowAnalysis:
    """Run the label-flow fixpoint; see the module docstring for the
    soundness argument. The NFAs may be passed in to share work with the
    under-approximate search."""
    if a_nfa is None:
        a_nfa = label_nfa(query.initial_header, network)
    if b_nfa is None:
        b_nfa = link_nfa(query.path, network)
    if c_nfa is None:
        c_nfa = label_nfa(query.final_header, network)
    valid = valid_header_nfa(network)
    aH = a_nfa.intersect(valid)
    cH = c_nfa.intersect(valid)
    b = b_nfa.trim()

    if _min_word_length(aH) is None:
        return FlowAnalysis(
            {}, (), "initial-header constraint matches no valid header"
        )
    if _min_word_length(cH) is None:
        return FlowAnalysis(
            {}, (), "final-header constraint matches no valid header"
        )
    if not _accepts_some_nonempty(b):
        return FlowAnalysis(
            {}, (), "path expression matches no non-empty link sequence"
        )

    k = query.max_failures
    ip_labels = frozenset(network.labels.ip_labels)
    all_labels = frozenset(network.labels.all_labels())
    initial = _initial_abstraction(aH)
    # Value-based widening cap: once a length upper bound climbs past
    # every bound the acceptance check can distinguish, jump to
    # unbounded. Being a function of the value alone (not of iteration
    # order), the widened transfer stays monotone.
    widen_cap = (initial.max_len or 0) + cH.state_count + 8

    def widen(value: AbstractHeader) -> AbstractHeader:
        if value.max_len is not None and value.max_len > widen_cap:
            return AbstractHeader(value.tops, value.min_len, None)
        return value

    values: Dict[FlowState, AbstractHeader] = {}
    queue: Deque[FlowState] = deque()
    queued: Set[FlowState] = set()
    links_by_name = {link.name: link for link in network.topology.links}

    def join_into(state: FlowState, value: AbstractHeader) -> None:
        current = values.get(state)
        if current is not None and current.subsumes(value):
            return
        value = widen(value)
        joined = value if current is None else widen(current.join(value))
        if current is not None and current.subsumes(joined):
            return
        values[state] = joined
        if state not in queued:
            queued.add(state)
            queue.append(state)

    # Memoized path-automaton steps: the fixpoint re-reads the same
    # (state, link) transitions once per abstract update.
    b_steps: Dict[Tuple[int, str], Tuple[int, ...]] = {}

    def b_step(q: int, link: Link) -> Tuple[int, ...]:
        key = (q, link.name)
        cached = b_steps.get(key)
        if cached is None:
            cached = tuple(sorted(b.step_set((q,), link)))
            b_steps[key] = cached
        return cached

    for link_name in sorted(links_by_name):
        link = links_by_name[link_name]
        targets = b.step_set(b.initial, link)
        for q in sorted(targets):
            join_into((link_name, q), initial)

    suffix = _SuffixLengths(cH)
    # Per-top acceptance bounds over cH: word length = 1 + suffix length.
    accept_range: Dict[Label, Optional[Tuple[int, Optional[int]]]] = {}

    def acceptance_possible(value: AbstractHeader) -> bool:
        for top in value.tops:
            if top not in accept_range:
                after = cH.step_set(cH.initial, top)
                accept_range[top] = suffix.range_from(after) if after else None
            rng = accept_range[top]
            if rng is None:
                continue
            word_lo = 1 + rng[0]
            word_hi = None if rng[1] is None else 1 + rng[1]
            lo = max(value.min_len, word_lo)
            if word_hi is None and value.max_len is None:
                return True
            hi = (
                word_hi
                if value.max_len is None
                else value.max_len
                if word_hi is None
                else min(value.max_len, word_hi)
            )
            if hi is not None and lo <= hi:
                return True
        return False

    interp_memo: Dict[Tuple[Label, Tuple[Operation, ...]], StackOutcome] = {}

    def interp(label: Label, operations: Tuple[Operation, ...]) -> StackOutcome:
        key = (label, operations)
        outcome = interp_memo.get(key)
        if outcome is None:
            outcome = interpret(label, operations)
            interp_memo[key] = outcome
        return outcome

    while queue:
        link_name, q = queue.popleft()
        queued.discard((link_name, q))
        value = values[(link_name, q)]
        link = links_by_name[link_name]
        for label in network.routing.labels_for_link(link):
            if label not in value.tops:
                continue
            groups = network.routing.lookup(link, label)
            for priority, entry in groups.all_entries():
                required = groups.required_failures(priority)
                if len(required) > k or entry.out_link in required:
                    continue
                outcome = interp(label, entry.operations)
                if outcome.status == UNDEFINED:
                    continue  # chain undefined on every matching header
                growth = stack_growth(entry.operations)
                new_min = max(1, value.min_len + growth)
                new_max = (
                    None if value.max_len is None else value.max_len + growth
                )
                if new_max is not None and new_max < 1:
                    continue  # would underflow every admissible header
                targets = b_step(q, entry.out_link)
                if not targets:
                    continue
                new_value = AbstractHeader(
                    _tops_after(outcome, ip_labels, all_labels),
                    new_min,
                    new_max,
                )
                for q2 in targets:
                    join_into((entry.out_link.name, q2), new_value)

    accepting = tuple(
        state
        for state in sorted(values)
        if state[1] in b.accepting and acceptance_possible(values[state])
    )
    reason = None
    if not accepting:
        reason = (
            "label-flow fixpoint covered every reachable configuration; "
            "none satisfies the final-header constraint at an accepting "
            "path state"
        )
    return FlowAnalysis(values, accepting, reason)
