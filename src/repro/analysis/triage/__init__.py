"""Static triage tier: prove verdicts before any pushdown system exists.

Given a network and a query, :func:`run_triage` runs two sound static
passes —

1. an **over-approximate label-flow analysis**
   (:mod:`repro.analysis.triage.overapprox`): a fixpoint over
   per-interface reachable label-set abstractions (top-of-stack set ×
   header-length interval, honoring the ≤ k failure budget through the
   routing tables' protection semantics) that can prove the query
   UNREACHABLE;
2. an **under-approximate concrete witness search**
   (:mod:`repro.analysis.triage.underapprox`): a bounded simulation over
   the active failure-free rules that can prove the query REACHABLE and
   emits a real, replayable trace —

and wraps the outcome in the three-verdict
:class:`~repro.analysis.triage.result.TriageResult` contract
(``PROVEN_YES(trace)`` / ``PROVEN_NO(reason)`` / ``INCONCLUSIVE``).
The verification engine uses it as a fast path (``triage="auto"``), the
farm to skip compiling settled scenario variants, and the linter's DP007
rule to flag statically unsatisfiable queries.

Like the rest of :mod:`repro.analysis`, nothing in this package imports
:mod:`repro.pda` or :mod:`repro.verification` — triage stays instant on
networks where saturation takes seconds.
"""

from repro.analysis.triage.overapprox import (
    AbstractHeader,
    FlowAnalysis,
    analyze_flow,
    unsatisfiable_reason,
)
from repro.analysis.triage.pipeline import run_triage
from repro.analysis.triage.result import TriageResult, TriageVerdict
from repro.analysis.triage.stats import TriageStats, triage_stats
from repro.analysis.triage.underapprox import SearchLimits, find_witness

__all__ = [
    "AbstractHeader",
    "FlowAnalysis",
    "SearchLimits",
    "TriageResult",
    "TriageStats",
    "TriageVerdict",
    "analyze_flow",
    "find_witness",
    "run_triage",
    "triage_stats",
    "unsatisfiable_reason",
]
