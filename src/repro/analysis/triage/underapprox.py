"""Under-approximate concrete witness search: a sound REACHABLE prover.

A bounded breadth-first simulation over the network's *failure-free*
forwarding relation (𝓐 restricted to defined rewrites — exactly
:meth:`repro.model.network.MplsNetwork.forwarding_alternatives` with an
empty failure set). Every state it explores is a real packet
configuration ``(link, header, path-automaton states)``, so any
accepting state reached yields a real trace:

* its headers are rewritten by actual routing entries (Definition 2.3),
* it is valid under the empty failure set, hence under every failure
  bound ``k ≥ 0`` — no feasibility check can refute it,
* its link word is accepted by the path automaton and its first/last
  headers match the query's header constraints by construction.

The search is bounded (initial headers enumerated shortest-first, caps
on header depth, trace length and visited states), so exhausting it
proves nothing — the caller falls through to the over-approximation or
the full solver. Found witnesses are re-checked with
:func:`repro.model.trace.check_trace` before being returned; a failure
there would be a bug, and the hypothesis replay property keeps it honest.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.model.header import Header
from repro.model.labels import Label
from repro.model.network import MplsNetwork
from repro.model.topology import Link
from repro.model.trace import Trace, TraceStep, check_trace
from repro.query.ast import Query
from repro.query.nfa import Nfa, label_nfa, link_nfa, valid_header_nfa


@dataclass(frozen=True)
class SearchLimits:
    """Bounds of the concrete search; defaults keep triage instant."""

    #: Distinct initial headers drawn from Lang(a) ∩ H, shortest first.
    max_initial_headers: int = 32
    #: Maximum witness trace length (links traversed).
    max_steps: int = 64
    #: Maximum number of distinct configurations explored.
    max_visited: int = 5000
    #: Maximum header length (labels, IP included) during the search.
    max_header_len: int = 16


#: A search node: (link, header, reachable path-automaton states).
_Node = Tuple[Link, Header, FrozenSet[int]]


def _initial_headers(aH: Nfa, limits: SearchLimits) -> List[Header]:
    """Shortest-first enumeration of words of ``Lang(a) ∩ H``.

    Deterministic: symbols are explored in sorted textual order, words
    deduplicated, lengths capped by the search limits.
    """
    words: List[Tuple[Label, ...]] = []
    seen_words: Set[Tuple[Label, ...]] = set()
    frontier: Deque[Tuple[FrozenSet[int], Tuple[Label, ...]]] = deque(
        [(aH.initial, ())]
    )
    seen_states: Set[Tuple[FrozenSet[int], Tuple[Label, ...]]] = set()
    while frontier and len(words) < limits.max_initial_headers:
        states, word = frontier.popleft()
        if states & aH.accepting and word and word not in seen_words:
            seen_words.add(word)
            words.append(word)
            if len(words) >= limits.max_initial_headers:
                break
        if len(word) >= limits.max_header_len:
            continue
        symbols: Set[Label] = set()
        for state in states:
            for edge in aH.edges_from(state):
                for symbol in edge.symbols:
                    if isinstance(symbol, Label):
                        symbols.add(symbol)
        for symbol in sorted(symbols, key=str):
            nxt = aH.step_set(states, symbol)
            if not nxt:
                continue
            key = (nxt, word + (symbol,))
            if key not in seen_states:
                seen_states.add(key)
                frontier.append(key)
    return [Header(word) for word in words]


def find_witness(
    network: MplsNetwork,
    query: Query,
    a_nfa: Optional[Nfa] = None,
    b_nfa: Optional[Nfa] = None,
    c_nfa: Optional[Nfa] = None,
    limits: Optional[SearchLimits] = None,
) -> Optional[Trace]:
    """Search for a concrete failure-free witness trace; None when the
    bounded search exhausts without finding one (which proves nothing)."""
    if limits is None:
        limits = SearchLimits()
    if a_nfa is None:
        a_nfa = label_nfa(query.initial_header, network)
    if b_nfa is None:
        b_nfa = link_nfa(query.path, network)
    if c_nfa is None:
        c_nfa = label_nfa(query.final_header, network)
    valid = valid_header_nfa(network)
    aH = a_nfa.intersect(valid)

    headers = _initial_headers(aH, limits)
    if not headers:
        return None

    no_failures: FrozenSet[Link] = frozenset()
    #: parent pointers for trace reconstruction; roots map to None.
    parents: Dict[_Node, Optional[_Node]] = {}
    depth: Dict[_Node, int] = {}
    queue: Deque[_Node] = deque()

    for link in sorted(network.topology.links, key=lambda l: l.name):
        states = b_nfa.step_set(b_nfa.initial, link)
        if not states:
            continue
        for header in headers:
            node: _Node = (link, header, states)
            if node not in parents:
                parents[node] = None
                depth[node] = 1
                queue.append(node)

    while queue:
        node = queue.popleft()
        link, header, states = node
        if states & b_nfa.accepting and c_nfa.accepts(header.labels):
            trace = _rebuild(parents, node)
            # Belt and braces: the certificate must replay concretely.
            if check_trace(network, trace, no_failures):
                return trace
            return None  # pragma: no cover - would be a search bug
        if depth[node] >= limits.max_steps:
            continue
        if len(parents) >= limits.max_visited:
            continue
        for entry, next_header in network.forwarding_alternatives(
            link, header, no_failures
        ):
            if len(next_header.labels) > limits.max_header_len:
                continue
            next_states = b_nfa.step_set(states, entry.out_link)
            if not next_states:
                continue
            child: _Node = (entry.out_link, next_header, next_states)
            if child not in parents:
                parents[child] = node
                depth[child] = depth[node] + 1
                queue.append(child)
    return None


def _rebuild(parents: Dict[_Node, Optional[_Node]], node: _Node) -> Trace:
    steps: List[TraceStep] = []
    current: Optional[_Node] = node
    while current is not None:
        steps.append(TraceStep(current[0], current[1]))
        current = parents[current]
    steps.reverse()
    return Trace(steps)
