"""The triage tier's three-verdict contract.

Triage may answer a query only when the answer is *provable* without
building a pushdown system:

* ``PROVEN_YES`` carries a real, replayable :class:`~repro.model.trace.Trace`
  found by the under-approximate concrete search — a certificate any
  caller can check with :func:`repro.model.trace.check_trace`;
* ``PROVEN_NO`` carries a human-readable reason from the over-approximate
  label-flow analysis — the abstraction covered every reachable
  configuration and none satisfied the query;
* ``INCONCLUSIVE`` means neither proof succeeded and the full dual
  pipeline must run. Triage is allowed to be inconclusive often; it is
  never allowed to be wrong (see the differential tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import AnalysisError
from repro.model.trace import Trace


class TriageVerdict(enum.Enum):
    """Outcome of the static triage pipeline."""

    PROVEN_YES = "proven_yes"
    PROVEN_NO = "proven_no"
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class TriageResult:
    """One triage answer, with its certificate.

    The invariants are part of the contract: a ``PROVEN_YES`` always
    carries a witness trace, a ``PROVEN_NO`` always carries a reason.
    """

    verdict: TriageVerdict
    #: Concrete witness trace (PROVEN_YES only) — valid under the empty
    #: failure set, hence under every failure bound k ≥ 0.
    trace: Optional[Trace] = None
    #: Why the query is unsatisfiable (PROVEN_NO only).
    reason: Optional[str] = None
    #: Wall-clock seconds the triage pipeline spent.
    elapsed_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.verdict is TriageVerdict.PROVEN_YES and self.trace is None:
            raise AnalysisError("PROVEN_YES requires a witness trace")
        if self.verdict is TriageVerdict.PROVEN_NO and self.reason is None:
            raise AnalysisError("PROVEN_NO requires a reason")

    @property
    def settled(self) -> bool:
        """True when triage answered the query (either proof succeeded)."""
        return self.verdict is not TriageVerdict.INCONCLUSIVE
