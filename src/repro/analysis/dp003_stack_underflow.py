"""DP003 — stack underflow: an operation chain provably undefined.

The abstract interpretation of :mod:`repro.analysis.stacks` tracks the
exactly-known part of the label stack implied by the matched top label.
When it proves that a chain is undefined on *every* valid header
matching the rule — typically a ``pop`` that hits the IP label at the
bottom of the stack, or a swap/push that would produce an invalid
header below the construction-time check's horizon — the entry is dead:
the header rewrite function 𝓗 is undefined, so the entry can never
forward a packet, and traffic that would have used it is dropped.

This is strictly sharper than the permissive construction-time check
(:func:`repro.model.operations.operations_well_formed`), which stops
tracking once a pop consumes past the matched label; the linter knows
the stack *shape* below it.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.registry import rule
from repro.model.operations import format_operations


@rule("DP003", "stack underflow", Severity.ERROR)
def check_stack_underflow(context: AnalysisContext) -> Iterable[Diagnostic]:
    """Operation chains undefined on every matching header."""
    return _check(context)


def _check(context: AnalysisContext) -> Iterator[Diagnostic]:
    for in_link, label, priority, entry in context.rules():
        outcome = context.interpret(label, entry.operations)
        if not outcome.is_undefined:
            continue
        yield Diagnostic(
            code="DP003",
            severity=Severity.ERROR,
            location=Location(
                router=in_link.target.name,
                in_link=in_link.name,
                label=str(label),
                priority=priority + 1,
            ),
            message=(
                f"operation chain {format_operations(entry.operations)} is "
                f"undefined on every header with top label {label}: "
                f"{outcome.reason}"
            ),
            hint="shorten the chain or match a label with a deeper stack",
        )
