"""Shared state of one lint run.

An :class:`AnalysisContext` is built once per :func:`repro.analysis.analyze`
call and handed to every rule. It precomputes the things several rules
need — the flattened rule list (respecting an assumed failure set), a
memoized abstract interpretation of operation chains, and the static
label-transition graph — so that a lint run stays linear in the size of
the routing table no matter how many rules are enabled.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.model.labels import Label
from repro.model.network import MplsNetwork
from repro.model.operations import Operation
from repro.model.routing import GroupSequence, RoutingEntry
from repro.model.topology import Link
from repro.analysis.stacks import StackOutcome, interpret

#: One flattened forwarding rule: (incoming link, matched label,
#: 0-based priority index, entry).
FlatRule = Tuple[Link, Label, int, RoutingEntry]

#: A node of the static label-transition graph: (link name, label text).
GraphNode = Tuple[str, str]


class AnalysisContext:
    """Everything the lint rules share for one network + failure set."""

    def __init__(
        self,
        network: MplsNetwork,
        failed_links: FrozenSet[str] = frozenset(),
        queries: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        unknown = failed_links - set(network.link_names())
        if unknown:
            raise AnalysisError(
                f"cannot lint {network.name!r} with unknown failed links: "
                + ", ".join(sorted(unknown))
            )
        self.network = network
        self.failed_links = failed_links
        #: (name, text) pairs for query-aware rules (DP007); empty when
        #: the lint run was not handed any queries.
        self.queries = queries
        self.failed = frozenset(
            link for link in network.topology.links if link.name in failed_links
        )
        self._interpretations: Dict[
            Tuple[Label, Tuple[Operation, ...]], StackOutcome
        ] = {}
        self._flat_rules: Optional[List[FlatRule]] = None
        self._dead_cells: List[Tuple[Link, Label]] = []
        self._egress: Dict[str, bool] = {}
        self._routers_with_rules: Optional[FrozenSet[str]] = None
        self._graph: Optional[Dict[GraphNode, List[GraphNode]]] = None

    # ------------------------------------------------------------------
    # rule iteration
    # ------------------------------------------------------------------
    def rules(self) -> List[FlatRule]:
        """Every forwarding rule the analysis considers.

        With an empty failure set this is the whole table (any group may
        become active under *some* failure scenario). With an assumed
        failure set, traffic cannot arrive over a failed incoming link
        and only the highest-priority active group of each cell applies
        — cells whose groups are all inactive are collected in
        :meth:`dead_cells` instead.
        """
        if self._flat_rules is None:
            self._flat_rules = list(self._compute_rules())
        return self._flat_rules

    def _compute_rules(self) -> Iterable[FlatRule]:
        for in_link, label, groups in self.network.routing.items():
            if not self.failed:
                for priority, entry in groups.all_entries():
                    yield (in_link, label, priority, entry)
                continue
            if in_link in self.failed:
                continue
            index = groups.active_group_index(self.failed)
            if index is None:
                self._dead_cells.append((in_link, label))
                continue
            for entry in groups.groups[index].active_entries(self.failed):
                yield (in_link, label, index, entry)

    def dead_cells(self) -> List[Tuple[Link, Label]]:
        """Cells whose groups are all inactive under the failure set."""
        self.rules()  # populate
        return self._dead_cells

    def group_sequences(self) -> Iterable[Tuple[Link, Label, GroupSequence]]:
        """The raw (in_link, label, groups) triples of the routing table."""
        return self.network.routing.items()

    # ------------------------------------------------------------------
    # shared analyses
    # ------------------------------------------------------------------
    def interpret(self, label: Label, operations: Tuple[Operation, ...]) -> StackOutcome:
        """Memoized abstract interpretation of one operation chain."""
        key = (label, operations)
        outcome = self._interpretations.get(key)
        if outcome is None:
            outcome = interpret(label, operations)
            self._interpretations[key] = outcome
        return outcome

    def has_rule(self, link: Link, label: Label) -> bool:
        """Is τ(link, label) defined (and alive under the failure set)?"""
        if not self.network.routing.has_rule(link, label):
            return False
        if not self.failed:
            return True
        groups = self.network.routing.lookup(link, label)
        return groups.active_group_index(self.failed) is not None

    def is_egress(self, router_name: str) -> bool:
        """Is a router a point where traffic legitimately leaves the network?

        Two shapes qualify: a router with no (active) outgoing links, and
        a router whose routing table is empty — the latter models edge /
        customer hand-off stubs that sit outside the MPLS dataplane, where
        arriving packets are delivered rather than label-switched onward.
        A router that forwards *some* labels but lacks a rule for an
        arriving one is NOT an egress — that is the black-hole case.
        """
        cached = self._egress.get(router_name)
        if cached is None:
            if self._routers_with_rules is None:
                self._routers_with_rules = frozenset(
                    in_link.target.name
                    for in_link, _label, _groups in self.network.routing.items()
                )
            if router_name not in self._routers_with_rules:
                cached = True
            else:
                out = self.network.topology.out_links(router_name)
                if self.failed:
                    out = tuple(link for link in out if link not in self.failed)
                cached = len(out) == 0
            self._egress[router_name] = cached
        return cached

    def transition_graph(self) -> Dict[GraphNode, List[GraphNode]]:
        """The static label-transition graph (stack-top abstraction).

        Nodes are defined routing-table cells ``(link name, label text)``;
        there is an edge for every entry whose rewritten top label is
        exactly known and matched by a rule on the entry's outgoing link.
        Edges through unknown tops are dropped, so reported cycles are
        real cycles of the abstraction.
        """
        if self._graph is None:
            graph: Dict[GraphNode, List[GraphNode]] = {}
            for in_link, label, _priority, entry in self.rules():
                node = (in_link.name, str(label))
                successors = graph.setdefault(node, [])
                outcome = self.interpret(label, entry.operations)
                if not outcome.is_ok or outcome.top is None:
                    continue
                if self.failed and entry.out_link in self.failed:
                    continue
                if self.has_rule(entry.out_link, outcome.top):
                    successors.append((entry.out_link.name, str(outcome.top)))
            self._graph = graph
        return self._graph
