"""DP001 — black hole: forwarded traffic arrives where no rule matches.

A routing entry sends packets out a link to its target router with a
statically-known new top label; if that router defines no rule for
``(out link, new label)`` and is not an egress (it has outgoing links,
so traffic is evidently meant to transit it), every packet using the
entry is silently dropped. Packets whose rewritten top is an IP label
are leaving the MPLS domain and are never flagged; entries whose new
top is unknown (the chain pops into the unknown part of the stack) are
skipped — a DP001 is only reported when the drop is provable.

With an assumed failure set the rule additionally flags routing cells
whose traffic-engineering groups are *all* inactive — the protection
chain is exhausted and matching packets are dropped on the floor.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.registry import rule


@rule("DP001", "black hole", Severity.ERROR)
def check_black_holes(context: AnalysisContext) -> Iterable[Diagnostic]:
    """Traffic provably dropped at a non-egress router."""
    return _check(context)


def _check(context: AnalysisContext) -> Iterator[Diagnostic]:
    for in_link, label, priority, entry in context.rules():
        outcome = context.interpret(label, entry.operations)
        if not outcome.is_ok or outcome.top is None or outcome.top_is_ip:
            continue
        out_link = entry.out_link
        if context.has_rule(out_link, outcome.top):
            continue
        next_router = out_link.target.name
        if context.is_egress(next_router):
            continue
        yield Diagnostic(
            code="DP001",
            severity=Severity.ERROR,
            location=Location(
                router=in_link.target.name,
                in_link=in_link.name,
                label=str(label),
                priority=priority + 1,
            ),
            message=(
                f"black hole: packets forwarded via {out_link.name} arrive at "
                f"{next_router} with top label {outcome.top}, but "
                f"τ({out_link.name}, {outcome.top}) is undefined and "
                f"{next_router} is not an egress"
            ),
            hint=(
                f"add a rule matching label {outcome.top} on link "
                f"{out_link.name} at {next_router}, or rewrite the chain to a "
                "label that router forwards"
            ),
        )
    for in_link, label in context.dead_cells():
        yield Diagnostic(
            code="DP001",
            severity=Severity.ERROR,
            location=Location(
                router=in_link.target.name,
                in_link=in_link.name,
                label=str(label),
            ),
            message=(
                f"black hole under failures "
                f"{{{', '.join(sorted(context.failed_links))}}}: every "
                f"traffic-engineering group of τ({in_link.name}, {label}) is "
                "inactive — protection is exhausted and matching packets are "
                "dropped"
            ),
            hint="add a further failover group with a disjoint outgoing link",
        )
