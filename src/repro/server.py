"""HTTP verification service — the backend of the paper's web GUI.

§4 of the paper: "The backend verification engine is running on a web
server at https://demo.aalwines.cs.aau.dk/". This module provides that
backend as a small stdlib-only JSON-over-HTTP service; any front end
(including a browser UI) can drive it. Endpoints:

* ``GET  /networks`` — the loadable built-in networks (the GUI's
  predefined-network drop-down);
* ``GET  /networks/<name>`` — one network in the single-file JSON
  format;
* ``GET  /queries/example`` — the φ0–φ4 demo queries of Figure 1;
* ``POST /verify`` — body ``{"network": <name or inline JSON network>,
  "query": "...", "weight": "...?", "engine": "dual|moped"?,
  "timeout": seconds?}``; responds with the verdict, the witness trace
  (steps + headers), the failure set, the minimal weight, and a
  Graphviz DOT visualization — everything the GUI renders.

Use :class:`VerificationServer` programmatically (it picks a free port
with ``port=0``, handy for tests) or run ``python -m repro.server``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.datasets.example import EXAMPLE_QUERIES
from repro.errors import ReproError, VerificationTimeout
from repro.io.json_format import network_from_json, network_to_json
from repro.model.network import MplsNetwork
from repro.verification.engine import VerificationEngine
from repro.viz import result_to_dot

_BUILTINS = ("example", "nordunet", "abilene", "nsfnet", "geant")


class _NetworkCache:
    """Lazily built, shared built-in networks."""

    def __init__(self) -> None:
        self._cache: Dict[str, MplsNetwork] = {}
        self._lock = threading.Lock()

    def get(self, name: str) -> MplsNetwork:
        if name not in _BUILTINS:
            raise ReproError(f"unknown built-in network {name!r}")
        with self._lock:
            if name not in self._cache:
                from repro.cli import _load_builtin

                self._cache[name] = _load_builtin(name)
            return self._cache[name]


def _verify_payload(payload: Dict[str, Any], cache: _NetworkCache) -> Dict[str, Any]:
    """Handle one /verify request body; returns the response document."""
    if "query" not in payload:
        raise ReproError("request needs a 'query' field")
    network_field = payload.get("network", "example")
    if isinstance(network_field, str):
        network = cache.get(network_field)
    elif isinstance(network_field, dict):
        network = network_from_json(json.dumps(network_field))
    else:
        raise ReproError("'network' must be a built-in name or a network object")

    engine_name = payload.get("engine", "dual")
    if engine_name not in ("dual", "moped", "poststar", "prestar"):
        raise ReproError(f"unknown engine {engine_name!r}")
    backend = "poststar" if engine_name == "dual" else engine_name
    engine = VerificationEngine(
        network, backend=backend, weight=payload.get("weight")
    )
    result = engine.verify(
        payload["query"], timeout_seconds=payload.get("timeout")
    )

    response: Dict[str, Any] = {
        "status": result.status.value,
        "query": str(result.query),
        "time_seconds": round(result.stats.total_seconds, 6),
        "dot": result_to_dot(network, result),
    }
    if result.weight is not None:
        response["weight"] = list(result.weight)
        response["minimal_guaranteed"] = result.minimal_guaranteed
    if result.trace is not None:
        response["trace"] = [
            {
                "link": step.link.name,
                "from": step.link.source.name,
                "to": step.link.target.name,
                "header": [str(label) for label in step.header],
            }
            for step in result.trace
        ]
        response["failure_set"] = sorted(
            link.name for link in (result.failure_set or frozenset())
        )
    return response


class _Handler(BaseHTTPRequestHandler):
    """Request handler; the server instance carries the shared cache."""

    server_version = "aalwines-repro/1.0"

    # -- helpers ---------------------------------------------------------
    def _send_json(self, document: Any, status: int = 200) -> None:
        body = json.dumps(document, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- routes ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        cache: _NetworkCache = self.server.cache  # type: ignore[attr-defined]
        try:
            if self.path == "/networks":
                self._send_json({"networks": list(_BUILTINS)})
            elif self.path.startswith("/networks/"):
                name = self.path[len("/networks/") :]
                network = cache.get(name)
                self._send_json(json.loads(network_to_json(network)))
            elif self.path == "/queries/example":
                self._send_json(
                    {"queries": [{"name": n, "text": t} for n, t in EXAMPLE_QUERIES]}
                )
            else:
                self._send_error_json(f"no such endpoint {self.path!r}", 404)
        except ReproError as error:
            self._send_error_json(str(error), 404)

    def do_POST(self) -> None:  # noqa: N802
        cache: _NetworkCache = self.server.cache  # type: ignore[attr-defined]
        if self.path != "/verify":
            self._send_error_json(f"no such endpoint {self.path!r}", 404)
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length)
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ReproError("request body must be a JSON object")
        except (ValueError, UnicodeDecodeError):
            self._send_error_json("request body is not valid JSON", 400)
            return
        try:
            self._send_json(_verify_payload(payload, cache))
        except VerificationTimeout:
            self._send_error_json("verification timed out", 408)
        except ReproError as error:
            self._send_error_json(str(error), 400)


class VerificationServer:
    """The embeddable verification web service.

    ``port=0`` binds an ephemeral port (see :attr:`port` after
    :meth:`start`). The server runs on a daemon thread; use as a context
    manager in tests.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 verbose: bool = False) -> None:
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.cache = _NetworkCache()  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    def start(self) -> "VerificationServer":
        """Start serving on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "VerificationServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def main() -> None:  # pragma: no cover - interactive entry point
    """Run the service from the command line until interrupted."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    args = parser.parse_args()
    server = VerificationServer(args.host, args.port, verbose=True)
    print(f"aalwines verification service on http://{server.host}:{server.port}/")
    server.start()
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        server.stop()


if __name__ == "__main__":  # pragma: no cover
    main()
