"""HTTP verification service — the backend of the paper's web GUI.

§4 of the paper: "The backend verification engine is running on a web
server at https://demo.aalwines.cs.aau.dk/". This module provides that
backend as a small stdlib-only JSON-over-HTTP service; any front end
(including a browser UI) can drive it. Endpoints:

* ``GET  /networks`` — the loadable built-in networks (the GUI's
  predefined-network drop-down);
* ``GET  /networks/<name>`` — one network in the single-file JSON
  format;
* ``GET  /queries/example`` — the φ0–φ4 demo queries of Figure 1;
* ``POST /verify`` — body ``{"network": <name or inline JSON network>,
  "query": "...", "weight": "...?", "engine": "dual|moped"?,
  "triage": "auto|off|only"?, "timeout": seconds?}``; responds with
  the verdict, the witness trace (steps + headers), the failure set,
  the minimal weight, and a Graphviz DOT visualization — everything
  the GUI renders. With ``"triage"`` the static triage tier
  (:mod:`repro.analysis.triage`) runs first and the response carries a
  ``"triage"`` block with its verdict and time. With
  ``"prob_threshold": p`` (or ``"sweep_prob": true``) the request
  becomes a probabilistic sweep (:mod:`repro.prob`): the response
  carries the verdict for "holds with probability ≥ p", the
  ``[lower, upper]`` bounds on P(query holds), and the most likely
  witness/counterexample with their probabilities
  (``prob_default`` / ``prob_limit`` tune the failure model and the
  scenario budget);
* ``POST /lint`` — body ``{"network": <name or inline JSON network>,
  "failed_links": [...]?, "rules": [...]?, "suppress": [...]?,
  "min_severity": "info|warning|error"?}``; statically lints the
  routing tables (:mod:`repro.analysis` — no pushdown system is built)
  and responds with the full diagnostic report.

The asynchronous **job API** runs whole what-if sweeps on the
verification farm (:mod:`repro.farm`) without holding a connection
open:

* ``POST /jobs`` — body ``{"network": ..., "queries": [...] or
  "query": "...", "sweep_failures": K?, "jobs": N?, "engine": ...?,
  "weight": ...?, "triage": ...?, "timeout": seconds?}``; returns ``{"id": ...}``
  immediately while the sweep runs in the background. A single query
  plus ``prob_threshold`` / ``sweep_prob`` submits a probabilistic
  sweep instead; its snapshots carry a ``"prob"`` block with the live
  probability bounds and the run self-cancels once the threshold
  verdict is decided;
* ``GET /jobs`` / ``GET /jobs/<id>`` — live progress counts, partial
  §4.2-style summary, and per-scenario outcomes;
* ``DELETE /jobs/<id>`` — cancel (running scenarios finish, queued
  ones are dropped).

Observability: ``GET /metrics`` exposes the process's solver counters,
gauges, and span timings in the Prometheus text exposition format
(:mod:`repro.obs`), plus the farm artifact-cache hit/miss counters and
the per-engine compile-memo statistics
(:meth:`repro.farm.cache.ArtifactCache.compile_memo_stats`). The server enables observation on construction by
default (``observe=False`` opts out); recording is strictly
observational, so responses are unaffected — pinned by the regression
tests in ``tests/obs/``.

Use :class:`VerificationServer` programmatically (it picks a free port
with ``port=0``, handy for tests) or run ``python -m repro.server``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.datasets.builtins import BUILTIN_NETWORKS, load_builtin
from repro.datasets.example import EXAMPLE_QUERIES
from repro.errors import NotFoundError, ReproError, VerificationTimeout
from repro.farm.jobs import JobManager
from repro.io.json_format import network_from_json, network_to_json
from repro.model.network import MplsNetwork
from repro.model.quantities import DEFAULT_FAILURE_PROBABILITY
from repro.service.core import (
    ServiceCore,
    ServiceRequest,
    ServiceResponse,
    _BadRequest,
)
from repro.service.ratelimit import RateLimitConfig, RateLimiter
from repro.verification.engine import VerificationEngine
from repro.viz import result_to_dot

#: Largest request body the service accepts (inline networks are big;
#: this is a DoS guard, not a format limit).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Upper bound on the per-sweep worker count a request may ask for.
MAX_SWEEP_WORKERS = 16


class _NetworkCache:
    """Lazily built, shared built-in networks (with their content keys)."""

    def __init__(self) -> None:
        self._cache: Dict[str, MplsNetwork] = {}
        self._keys: Dict[str, str] = {}
        self._lock = threading.Lock()

    def get(self, name: str) -> MplsNetwork:
        if name not in BUILTIN_NETWORKS:
            raise NotFoundError(f"unknown built-in network {name!r}")
        with self._lock:
            if name not in self._cache:
                self._cache[name] = load_builtin(name)
            return self._cache[name]

    def key_of(self, name: str) -> str:
        """The content hash of a built-in network (memoized — serializing
        a network per request would dominate small verifications)."""
        from repro.farm.cache import hash_text

        network = self.get(name)
        with self._lock:
            if name not in self._keys:
                self._keys[name] = hash_text(network_to_json(network))
            return self._keys[name]


def _resolve_network(field: Any, cache: _NetworkCache) -> MplsNetwork:
    """A built-in name or an inline network object → built network."""
    if isinstance(field, str):
        return cache.get(field)
    if isinstance(field, dict):
        return network_from_json(json.dumps(field))
    raise ReproError("'network' must be a built-in name or a network object")


def _resolve_network_keyed(
    field: Any, cache: _NetworkCache
) -> Tuple[MplsNetwork, str]:
    """Like :func:`_resolve_network` but also the network's content key.

    The key feeds the per-process engine cache and the shared artifact
    store. Built-ins hash their canonical JSON (memoized); inline
    networks hash the request's own JSON — cheaper than re-serializing
    the built network and just as content-stable for identical requests.
    """
    from repro.farm.cache import hash_text

    if isinstance(field, str):
        return cache.get(field), cache.key_of(field)
    if isinstance(field, dict):
        text = json.dumps(field, sort_keys=True)
        return network_from_json(json.dumps(field)), hash_text(text)
    raise ReproError("'network' must be a built-in name or a network object")


def _cache_metrics_text(exposition: str) -> str:
    """Farm artifact-cache and compile-memo counters as Prometheus lines.

    Appended to the ``repro.obs`` exposition at ``GET /metrics`` so the
    cache effectiveness of in-process sweeps is scrapeable alongside the
    solver counters. The obs registry already exports a ``farm.cache.*``
    counter once it has been incremented while enabled; any metric name
    that is present in ``exposition`` is skipped here so the combined
    body never declares the same series twice. (Counters of forked pool
    workers live in their own processes and are not aggregated here.)
    """
    from repro.farm.cache import worker_cache

    cache = worker_cache()
    pairs = [
        (f"aalwines_farm_cache_{name}_total", value)
        for name, value in sorted(cache.stats.as_dict().items())
    ]
    pairs.extend(
        (f"aalwines_{name}_total", value)
        for name, value in sorted(cache.compile_memo_stats().items())
    )
    lines: List[str] = []
    for metric, value in pairs:
        if f"\n{metric} " in f"\n{exposition}":
            continue
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def _store_metrics_text(exposition: str) -> str:
    """The shared artifact store's counters as Prometheus lines.

    Empty when no store is attached. Like :func:`_cache_metrics_text`,
    metric names already present in ``exposition`` are skipped so the
    combined ``GET /metrics`` body never declares a series twice.
    """
    from repro.farm.store import active_store

    store = active_store()
    if store is None:
        return ""
    lines: List[str] = []
    for name, value in sorted(store.stats.as_dict().items()):
        metric = f"aalwines_farm_store_{name}_total"
        if f"\n{metric} " in f"\n{exposition}":
            continue
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def _resolve_backend(payload: Dict[str, Any]) -> str:
    engine_name = payload.get("engine", "dual")
    if engine_name not in ("dual", "moped", "poststar", "prestar"):
        raise ReproError(f"unknown engine {engine_name!r}")
    return "poststar" if engine_name == "dual" else engine_name


def _resolve_core(payload: Dict[str, Any]) -> str:
    """Validated ``"core"`` field (default interned, matching the CLI)."""
    core = payload.get("core", "interned")
    if core not in ("interned", "tuple", "vectorized", "incremental"):
        raise ReproError(
            f"unknown core {core!r} "
            "(use: interned, tuple, vectorized, incremental)"
        )
    return core


def _resolve_triage(payload: Dict[str, Any]) -> str:
    """Validated ``"triage"`` field (default off, matching the CLI)."""
    mode = payload.get("triage", "off")
    if mode not in ("auto", "off", "only"):
        raise ReproError(f"unknown triage mode {mode!r} (use: auto, off, only)")
    return mode


def _triage_metrics_text(exposition: str) -> str:
    """The triage tier's counters as Prometheus lines (``GET /metrics``).

    The obs registry already exports ``triage.*`` counters once the
    triage spans ran while observation was enabled; like
    :func:`_cache_metrics_text`, any metric name already present in
    ``exposition`` is skipped so the combined body never declares the
    same series twice.
    """
    from repro.analysis.triage import triage_stats

    stats = triage_stats().as_dict()
    lines: List[str] = []
    for name in sorted(stats):
        value = stats[name]
        if not isinstance(value, int):
            continue  # elapsed_seconds / hit_rate are not counters
        metric = f"aalwines_triage_{name}_total"
        if f"\n{metric} " in f"\n{exposition}":
            continue
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def _trace_steps(trace: Any) -> List[Dict[str, Any]]:
    """A witness trace as the JSON step list the GUI renders."""
    return [
        {
            "link": step.link.name,
            "from": step.link.source.name,
            "to": step.link.target.name,
            "header": [str(label) for label in step.header],
        }
        for step in trace
    ]


def _prob_requested(payload: Dict[str, Any]) -> bool:
    """True when the body asks for a probabilistic sweep."""
    return payload.get("prob_threshold") is not None or bool(
        payload.get("sweep_prob")
    )


def _prob_params(
    payload: Dict[str, Any]
) -> Tuple[Optional[float], float, int]:
    """Validated ``(threshold, default, limit)`` probability parameters."""
    threshold = payload.get("prob_threshold")
    if threshold is not None:
        if isinstance(threshold, bool) or not isinstance(threshold, (int, float)):
            raise ReproError("'prob_threshold' must be a number")
        threshold = float(threshold)
    default = payload.get("prob_default", DEFAULT_FAILURE_PROBABILITY)
    if isinstance(default, bool) or not isinstance(default, (int, float)):
        raise ReproError("'prob_default' must be a number")
    limit = payload.get("prob_limit", 512)
    if isinstance(limit, bool) or not isinstance(limit, int) or limit < 1:
        raise ReproError("'prob_limit' must be a positive integer")
    return threshold, float(default), limit


def _prob_verify(
    payload: Dict[str, Any], network: MplsNetwork
) -> Dict[str, Any]:
    """Handle a probabilistic /verify body; returns the response document."""
    from repro.farm.pool import EngineConfig
    from repro.prob import run_probabilistic_sweep

    backend = _resolve_backend(payload)
    weight = payload.get("weight")
    if backend == "moped" and weight:
        raise ReproError("the Moped backend does not support weighted verification")
    threshold, default, limit = _prob_params(payload)
    result = run_probabilistic_sweep(
        network,
        payload["query"],
        threshold=threshold,
        default=default,
        max_scenarios=limit,
        config=EngineConfig(
            backend=backend, weight=weight, core=_resolve_core(payload)
        ),
        timeout=payload.get("timeout"),
    )
    response: Dict[str, Any] = {
        "status": result.verdict.value,
        "query": payload["query"],
        "prob": {
            "threshold": result.threshold,
            "verdict": result.verdict.value,
            "lower": result.lower,
            "upper": result.upper,
            "covered": result.covered,
            "residual": result.residual,
            "scenarios_enumerated": result.scenarios_enumerated,
            "scenarios_verified": result.scenarios_verified,
            "early_exit": result.early_exit,
        },
    }
    if result.most_likely_witness is not None:
        response["most_likely_witness"] = {
            "probability": result.most_likely_witness_probability,
            "trace": _trace_steps(result.most_likely_witness),
        }
    if result.most_likely_counterexample is not None:
        response["most_likely_counterexample"] = {
            "probability": result.most_likely_counterexample_probability,
            "failed_links": list(result.most_likely_counterexample),
        }
    return response


def _verify_payload(payload: Dict[str, Any], cache: _NetworkCache) -> Dict[str, Any]:
    """Handle one /verify request body; returns the response document.

    Engines are cached per (network content key, engine configuration)
    in the process-wide :func:`~repro.farm.cache.worker_cache`, so
    repeated interactive verifications reuse the compiled network and
    the compile memo instead of rebuilding an engine per request. The
    content key also feeds the shared artifact store (when one is
    attached) so sibling worker processes reuse compiled queries.
    """
    from repro.farm.cache import worker_cache
    from repro.farm.pool import EngineConfig

    if "query" not in payload:
        raise ReproError("request needs a 'query' field")
    network, network_key = _resolve_network_keyed(
        payload.get("network", "example"), cache
    )
    if _prob_requested(payload):
        return _prob_verify(payload, network)
    config = EngineConfig(
        backend=_resolve_backend(payload),
        weight=payload.get("weight"),
        core=_resolve_core(payload),
        triage=_resolve_triage(payload),
    )
    engine = worker_cache().engine(
        network_key, config, lambda: config.build(network)
    )
    engine.attach_artifact_key(network_key)
    result = engine.verify(
        payload["query"], timeout_seconds=payload.get("timeout")
    )

    response: Dict[str, Any] = {
        "status": result.status.value,
        "query": str(result.query),
        "time_seconds": round(result.stats.total_seconds, 6),
        "dot": result_to_dot(network, result),
    }
    if result.stats.triage_verdict is not None:
        response["triage"] = {
            "verdict": result.stats.triage_verdict,
            "seconds": round(result.stats.triage_seconds, 6),
        }
    if result.weight is not None:
        response["weight"] = list(result.weight)
        response["minimal_guaranteed"] = result.minimal_guaranteed
    if result.witness_probability is not None:
        response["witness_probability"] = result.witness_probability
    if result.trace is not None:
        response["trace"] = _trace_steps(result.trace)
        response["failure_set"] = sorted(
            link.name for link in (result.failure_set or frozenset())
        )
    return response


def _lint_payload(payload: Dict[str, Any], cache: _NetworkCache) -> Dict[str, Any]:
    """Handle one POST /lint request body; returns the lint report.

    Body: ``{"network": <name or inline JSON network>, "failed_links":
    [...]?, "rules": [...]?, "suppress": [...]?, "min_severity": ...?,
    "queries": [...]?}``. ``queries`` (strings or ``{"name", "text"}``
    objects) feeds the query-aware rules — DP007 flags statically
    unsatisfiable queries.
    """
    from repro.analysis import LintConfig, analyze

    network = _resolve_network(payload.get("network", "example"), cache)
    for key in ("failed_links", "rules", "suppress"):
        value = payload.get(key)
        if value is not None and (
            not isinstance(value, list)
            or not all(isinstance(item, str) for item in value)
        ):
            raise ReproError(f"'{key}' must be a list of strings")
    queries: List[Tuple[str, str]] = []
    for entry in payload.get("queries") or ():
        if isinstance(entry, str):
            queries.append((f"q{len(queries):04d}", entry))
        elif isinstance(entry, dict) and "text" in entry:
            queries.append(
                (str(entry.get("name", f"q{len(queries):04d}")), entry["text"])
            )
        else:
            raise ReproError(
                "each query must be a string or a {'name', 'text'} object"
            )
    try:
        config = LintConfig.of(
            enabled=payload.get("rules"),
            suppressed=payload.get("suppress") or (),
            min_severity=payload.get("min_severity"),
        )
    except ValueError:  # bad min_severity string
        raise ReproError(
            f"unknown min_severity {payload.get('min_severity')!r} "
            "(use: info, warning, error)"
        )
    report = analyze(
        network,
        failed_links=frozenset(payload.get("failed_links") or ()),
        config=config,
        queries=queries,
    )
    return report.to_dict()


def _submit_job(
    payload: Dict[str, Any],
    cache: _NetworkCache,
    manager: JobManager,
    client: Optional[str] = None,
) -> Dict[str, Any]:
    """Handle one POST /jobs body: build the sweep, start it, return the id."""
    from repro.farm.pool import EngineConfig
    from repro.farm.scenarios import (
        failure_scenarios,
        preflight_index,
        probabilistic_scenarios,
        scenarios_to_jobs,
        suite_scenarios,
    )

    network = _resolve_network(payload.get("network", "example"), cache)

    queries: List[Tuple[str, str]] = []
    if "queries" in payload:
        entries = payload["queries"]
        if not isinstance(entries, list) or not entries:
            raise ReproError("'queries' must be a non-empty list")
        for entry in entries:
            if isinstance(entry, str):
                queries.append((f"q{len(queries):04d}", entry))
            elif isinstance(entry, dict) and "text" in entry:
                queries.append(
                    (str(entry.get("name", f"q{len(queries):04d}")), entry["text"])
                )
            else:
                raise ReproError(
                    "each query must be a string or a {'name', 'text'} object"
                )
    elif "query" in payload:
        queries.append(("query", payload["query"]))
    else:
        raise ReproError("request needs a 'query' or 'queries' field")

    backend = _resolve_backend(payload)
    weight = payload.get("weight")
    if backend == "moped" and weight:
        raise ReproError("the Moped backend does not support weighted verification")
    config = EngineConfig(
        backend=backend,
        weight=weight,
        core=_resolve_core(payload),
        triage=_resolve_triage(payload),
    )

    preflight = bool(payload.get("preflight"))
    sweep_failures = payload.get("sweep_failures")
    probabilities: Optional[List[float]] = None
    prob_threshold: Optional[float] = None
    if _prob_requested(payload):
        if sweep_failures is not None:
            raise ReproError(
                "'sweep_failures' cannot be combined with a probabilistic sweep"
            )
        if preflight:
            raise ReproError(
                "'preflight' is not supported for probabilistic sweeps"
            )
        if len(queries) != 1:
            raise ReproError("a probabilistic sweep takes exactly one query")
        from repro.prob import FailureModel, best_first_scenarios

        prob_threshold, prob_default, prob_limit = _prob_params(payload)
        model = FailureModel.from_network(network, default=prob_default)
        enumerated = []
        mass_seen = 0.0
        for failure_scenario in best_first_scenarios(model, limit=prob_limit):
            enumerated.append(failure_scenario)
            mass_seen += failure_scenario.probability
            if 1.0 - mass_seen <= 1e-9:
                break
        obs.add("prob.scenarios_enumerated", len(enumerated))
        name, text = queries[0]
        scenarios, probabilities = probabilistic_scenarios(
            network, text, enumerated, query_name=name
        )
        description = f"probabilistic sweep on {network.name}"
    elif sweep_failures is not None:
        if not isinstance(sweep_failures, int) or sweep_failures < 0:
            raise ReproError("'sweep_failures' must be a non-negative integer")
        scenarios = failure_scenarios(
            network,
            queries,
            max_failures=sweep_failures,
            links=payload.get("sweep_links"),
            limit=payload.get("sweep_limit", 10_000),
            preflight=preflight,
        )
        description = f"failure sweep ≤{sweep_failures} on {network.name}"
    else:
        scenarios = suite_scenarios(network, queries, preflight=preflight)
        description = f"query suite on {network.name}"

    workers = payload.get("jobs", 1)
    if not isinstance(workers, int) or workers < 1:
        raise ReproError("'jobs' must be a positive integer")
    workers = min(workers, MAX_SWEEP_WORKERS)

    jobs, payloads, prebuilt = scenarios_to_jobs(
        scenarios, config, timeout=payload.get("timeout")
    )
    run = manager.submit(
        jobs,
        payloads,
        max_workers=workers,
        prebuilt=prebuilt,
        description=description,
        preflight=preflight_index(scenarios) if preflight else None,
        probabilities=probabilities,
        prob_threshold=prob_threshold,
        client=client,
    )
    return {"id": run.id, "state": run.state, "total": run.total}


class _Handler(BaseHTTPRequestHandler):
    """Thin ``http.server`` transport over the shared
    :class:`~repro.service.core.ServiceCore` (carried by the server
    instance). All routing, error mapping, rate limiting and streaming
    live in the core — this class only moves bytes."""

    server_version = "aalwines-repro/1.0"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _read_body(self) -> Optional[bytes]:
        """Read the request body (``None`` when no Content-Length).

        Raises :class:`_BadRequest` (→ 400 JSON error, never a 500
        traceback) for an invalid ``Content-Length``, an oversized body,
        or a body the client truncated. ``rfile.read(n)`` on a socket
        may legally return *fewer* than ``n`` bytes, so the read loops
        until the announced length arrived or the stream ended early —
        a single short read used to hand the JSON parser half a body.
        """
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            return None
        try:
            length = int(length_header)
        except ValueError:
            raise _BadRequest(f"invalid Content-Length {length_header!r}")
        if length < 0:
            raise _BadRequest(f"invalid Content-Length {length_header!r}")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"request body exceeds the {MAX_BODY_BYTES}-byte limit"
            )
        chunks: List[bytes] = []
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(remaining)
            if not chunk:
                received = length - remaining
                raise _BadRequest(
                    f"request body was truncated "
                    f"({received} of {length} bytes received)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _write_response(self, response: ServiceResponse) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        for name, value in response.headers:
            self.send_header(name, value)
        if response.stream is None:
            self.send_header("Content-Length", str(len(response.body)))
            self.end_headers()
            self.wfile.write(response.body)
            return
        # Streaming (SSE): no Content-Length — the connection closes
        # when the stream ends, so tell the client not to reuse it.
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        try:
            for chunk in response.stream:
                self.wfile.write(chunk)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up

    def _dispatch(self) -> None:
        core: ServiceCore = self.server.core  # type: ignore[attr-defined]
        try:
            body = self._read_body()
        except _BadRequest as error:
            from repro.service.core import error_response

            self._write_response(error_response(str(error), 400))
            return
        request = ServiceRequest(
            method=self.command,
            target=self.path,
            headers=self.headers,
            body=body,
            peer=self.client_address[0],
        )
        self._write_response(core.handle(request))

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch()

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch()

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch()


class VerificationServer:
    """The embeddable verification web service.

    ``port=0`` binds an ephemeral port (see :attr:`port` after
    :meth:`start`). The server runs on a daemon thread; use as a context
    manager in tests.

    Production knobs (all default off so embedded/test use is
    unchanged):

    * ``store`` — path of a shared on-disk artifact store
      (:class:`~repro.farm.store.SharedArtifactStore`); attaches it to
      this process (and, via the environment, to farm pool workers) so
      compiled artifacts and job snapshots are shared across worker
      processes;
    * ``rate_limit`` — a :class:`~repro.service.ratelimit.RateLimitConfig`
      enabling per-client budgets;
    * ``listen_socket`` — an already-bound, already-listening socket to
      serve on instead of binding ``(host, port)``; this is how the
      pre-fork workers of ``aalwines serve --workers N`` share one port
      (:mod:`repro.service.prefork`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        verbose: bool = False,
        observe: bool = True,
        store: Optional[str] = None,
        rate_limit: Optional[RateLimitConfig] = None,
        listen_socket: Optional[Any] = None,
    ) -> None:
        if store is not None:
            from repro.farm.store import configure_store

            store_obj = configure_store(store)
        else:
            from repro.farm.store import active_store

            store_obj = active_store()
        if listen_socket is None:
            self._httpd = ThreadingHTTPServer((host, port), _Handler)
        else:
            self._httpd = ThreadingHTTPServer(
                (host, port), _Handler, bind_and_activate=False
            )
            self._httpd.socket = listen_socket
            address = listen_socket.getsockname()
            self._httpd.server_address = address[:2]
            self._httpd.server_name = str(address[0])
            self._httpd.server_port = int(address[1])
        cache = _NetworkCache()
        jobs = JobManager(store=store_obj)
        limiter = RateLimiter(rate_limit) if rate_limit is not None else None
        self._httpd.cache = cache  # type: ignore[attr-defined]
        self._httpd.jobs = jobs  # type: ignore[attr-defined]
        self._httpd.core = ServiceCore(  # type: ignore[attr-defined]
            cache=cache, jobs=jobs, limiter=limiter
        )
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        if observe:
            obs.enable()

    @property
    def jobs(self) -> JobManager:
        """The farm job manager behind the /jobs endpoints."""
        return self._httpd.jobs  # type: ignore[attr-defined]

    @property
    def core(self) -> ServiceCore:
        """The transport-agnostic service core handling every request."""
        return self._httpd.core  # type: ignore[attr-defined]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    def start(self) -> "VerificationServer":
        """Start serving on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the *calling* thread until :meth:`stop` — the worker
        loop of the pre-fork server."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Shut the server down and release the socket."""
        self.jobs.shutdown()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "VerificationServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def main() -> None:  # pragma: no cover - interactive entry point
    """Run the service from the command line until interrupted."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    args = parser.parse_args()
    server = VerificationServer(args.host, args.port, verbose=True)
    print(f"aalwines verification service on http://{server.host}:{server.port}/")
    server.start()
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        server.stop()


if __name__ == "__main__":  # pragma: no cover
    main()
