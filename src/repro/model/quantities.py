"""Atomic quantities of network traces (§3 of the paper).

The paper defines five atomic quantities of a trace
``σ = (e1, h1) … (en, hn)``:

* ``Links(σ) = n``,
* ``Hops(σ)`` — links that are not self-loops,
* ``Distance(σ) = Σ d(e_i)`` for a per-link distance function d,
* ``Failures(σ) = Σ |failed(i)|`` — per step, the links of all
  strictly-higher-priority groups that must be failed,
* ``Tunnels(σ) = Σ max(0, |h_{i+1}| − |h_i|)`` — label-stack growth.

These trace-level evaluators are the semantic ground truth; the PDA
compiler assigns the equivalent *per-rule* weights statically, and the
test-suite cross-checks the two.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Iterable, Optional

from repro.errors import WeightError
from repro.model.network import MplsNetwork
from repro.model.operations import try_apply_operations
from repro.model.topology import Link
from repro.model.trace import Trace

#: Fixed-point scale for the *Likelihood* quantity: one unit is one
#: nano-nat of negative log-probability. Costs stay integers, so the
#: existing lexicographic min-plus vector semiring (which assumes a
#: finite integer domain) carries likelihood ranking unchanged.
LIKELIHOOD_SCALE = 10**9

#: Failure probability assumed for links that do not declare one, when a
#: probabilistic analysis needs a number. Purely-boolean analyses never
#: touch it.
DEFAULT_FAILURE_PROBABILITY = 1e-3

#: Floor applied before taking logs. A link with failure probability 0
#: can never fail in the exact enumerator, but as a *ranking* cost it
#: must stay finite (the semiring domain is finite integers), so it is
#: clamped to this floor — far below any realistic likelihood.
_PROBABILITY_FLOOR = 1e-30


def link_failure_probability(
    link: Link, default: float = DEFAULT_FAILURE_PROBABILITY
) -> float:
    """The link's failure probability, substituting ``default`` when unset."""
    p = link.failure_probability
    return default if p is None else p


def link_failure_cost(
    link: Link, default: float = DEFAULT_FAILURE_PROBABILITY
) -> int:
    """Scaled negative log-probability of this link failing.

    ``round(-ln(p) * LIKELIHOOD_SCALE)`` with ``p`` floored at
    ``_PROBABILITY_FLOOR``; smaller cost = more likely failure.
    """
    p = max(link_failure_probability(link, default), _PROBABILITY_FLOOR)
    return round(-math.log(p) * LIKELIHOOD_SCALE)


def failure_set_cost(
    links_required: Iterable[Link], default: float = DEFAULT_FAILURE_PROBABILITY
) -> int:
    """Scaled neg-log-probability of an independent set of link failures."""
    return sum(link_failure_cost(link, default) for link in links_required)


class Quantity(enum.Enum):
    """The atomic quantities supported by the tool."""

    LINKS = "links"
    HOPS = "hops"
    DISTANCE = "distance"
    FAILURES = "failures"
    TUNNELS = "tunnels"
    LIKELIHOOD = "likelihood"

    @classmethod
    def parse(cls, text: str) -> "Quantity":
        """Parse a quantity name, case-insensitively."""
        try:
            return cls(text.strip().lower())
        except ValueError:
            valid = ", ".join(q.value for q in cls)
            raise WeightError(f"unknown atomic quantity {text!r} (expected one of {valid})")


def links(trace: Trace) -> int:
    """``Links(σ)`` — the length of the trace."""
    return len(trace)


def hops(trace: Trace) -> int:
    """``Hops(σ)`` — links whose endpoints differ (self-loops not counted).

    The paper counts the *set* of non-self-loop links used.
    """
    return len({link for link in trace.links if not link.is_self_loop})


def distance(trace: Trace, distance_of: Callable[[Link], int]) -> int:
    """``Distance(σ)`` for a distance function ``d : E → ℕ``."""
    return sum(distance_of(link) for link in trace.links)


def step_failures(network: MplsNetwork, trace: Trace, index: int) -> int:
    """``|failed(i)|`` for the i-th step (0-based) of the trace.

    When several (priority, entry) pairs justify the step, the cheapest
    (fewest required failures) is used, matching the *minimal* number of
    failed links the quantity is defined to measure.
    """
    current = trace[index]
    following = trace[index + 1]
    groups = network.group_sequence(current.link, current.header.top)
    best: Optional[int] = None
    for priority_index, entry in groups.all_entries():
        if entry.out_link != following.link:
            continue
        if try_apply_operations(current.header, entry.operations) != following.header:
            continue
        required = groups.required_failures(priority_index)
        if entry.out_link in required:
            continue
        cost = len(required)
        if best is None or cost < best:
            best = cost
    if best is None:
        raise WeightError(
            f"trace step {index} is not justified by any routing entry; "
            "Failures is undefined on invalid traces"
        )
    return best


def failures(network: MplsNetwork, trace: Trace) -> int:
    """``Failures(σ)`` — the sum of per-step minimal failed-link counts."""
    return sum(step_failures(network, trace, i) for i in range(len(trace) - 1))


def step_likelihood(
    network: MplsNetwork,
    trace: Trace,
    index: int,
    default: float = DEFAULT_FAILURE_PROBABILITY,
) -> int:
    """Scaled neg-log-probability of the cheapest failure set for step i.

    The *Likelihood* analogue of :func:`step_failures`: instead of the
    minimal *count* of failed links, the minimal *neg-log-probability*
    of the failure set that justifies the step. A step served by the
    primary (priority-1) entry costs 0 — no failure needs to happen.
    """
    current = trace[index]
    following = trace[index + 1]
    groups = network.group_sequence(current.link, current.header.top)
    best: Optional[int] = None
    for priority_index, entry in groups.all_entries():
        if entry.out_link != following.link:
            continue
        if try_apply_operations(current.header, entry.operations) != following.header:
            continue
        required = groups.required_failures(priority_index)
        if entry.out_link in required:
            continue
        cost = failure_set_cost(required, default)
        if best is None or cost < best:
            best = cost
    if best is None:
        raise WeightError(
            f"trace step {index} is not justified by any routing entry; "
            "Likelihood is undefined on invalid traces"
        )
    return best


def likelihood(
    network: MplsNetwork,
    trace: Trace,
    default: float = DEFAULT_FAILURE_PROBABILITY,
) -> int:
    """``Likelihood(σ)`` — total scaled neg-log-probability of the failures
    the trace relies on (0 for a trace along primary paths only)."""
    return sum(
        step_likelihood(network, trace, i, default) for i in range(len(trace) - 1)
    )


def tunnels(trace: Trace) -> int:
    """``Tunnels(σ)`` — total positive growth of the label stack."""
    total = 0
    for current, following in zip(trace.headers, trace.headers[1:]):
        total += max(0, len(following) - len(current))
    return total


def evaluate_quantity(
    quantity: Quantity,
    network: MplsNetwork,
    trace: Trace,
    distance_of: Optional[Callable[[Link], int]] = None,
) -> int:
    """Evaluate one atomic quantity on a trace."""
    if quantity is Quantity.LINKS:
        return links(trace)
    if quantity is Quantity.HOPS:
        return hops(trace)
    if quantity is Quantity.DISTANCE:
        d = distance_of if distance_of is not None else network.topology.link_distance
        return distance(trace, d)
    if quantity is Quantity.FAILURES:
        return failures(network, trace)
    if quantity is Quantity.TUNNELS:
        return tunnels(trace)
    if quantity is Quantity.LIKELIHOOD:
        return likelihood(network, trace)
    raise WeightError(f"unhandled quantity {quantity}")
