"""MPLS label-stack operations and the header rewrite function 𝓗.

The operation set of the paper (Definition 2) is

    Op = { swap(ℓ) | ℓ ∈ L } ∪ { push(ℓ) | ℓ ∈ L } ∪ { pop }

and Definition 3 gives the partial semantics 𝓗 : H × Op* ⇀ H that applies
an operation sequence to a valid header, remaining *undefined* whenever a
step would produce an invalid header (e.g. popping the IP label, or
pushing a plain MPLS label directly onto an IP label).

This module implements the operations as immutable dataclasses plus
:func:`apply_operations` (the function 𝓗) and the static helpers the PDA
compiler needs (:func:`stack_growth`, :func:`operations_well_formed`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import HeaderError, ModelError
from repro.model.header import Header, is_valid_header
from repro.model.labels import Label


@dataclass(frozen=True)
class Swap:
    """``swap(ℓ)`` — replace the top-of-stack label with ``ℓ``."""

    label: Label

    def __str__(self) -> str:
        return f"swap({self.label})"


@dataclass(frozen=True)
class Push:
    """``push(ℓ)`` — push ``ℓ`` on top of the stack."""

    label: Label

    def __str__(self) -> str:
        return f"push({self.label})"


@dataclass(frozen=True)
class Pop:
    """``pop`` — remove the top-of-stack label (must be an MPLS label)."""

    def __str__(self) -> str:
        return "pop"


Operation = Union[Swap, Push, Pop]

#: The identity operation sequence ε.
NO_OPS: Tuple[Operation, ...] = ()


def apply_operation(labels: Tuple[Label, ...], op: Operation) -> Tuple[Label, ...]:
    """Apply one operation to a label word (top first); raise if undefined.

    This is one unfolding step of Definition 3. ``labels`` must be a valid
    header; the result is guaranteed valid (otherwise :class:`HeaderError`).
    """
    if not labels:
        raise HeaderError("cannot apply an operation to an empty header")
    if isinstance(op, Swap):
        candidate = (op.label,) + labels[1:]
        if not is_valid_header(candidate):
            raise HeaderError(f"swap({op.label}) undefined on header top {labels[0]}")
        return candidate
    if isinstance(op, Push):
        candidate = (op.label,) + labels
        if not is_valid_header(candidate):
            raise HeaderError(f"push({op.label}) undefined on header top {labels[0]}")
        return candidate
    if isinstance(op, Pop):
        top = labels[0]
        if not (top.is_mpls or top.is_bottom_mpls):
            raise HeaderError(f"pop undefined on non-MPLS top label {top}")
        candidate = labels[1:]
        if not is_valid_header(candidate):
            raise HeaderError("pop would produce an invalid header")
        return candidate
    raise ModelError(f"unknown MPLS operation {op!r}")


def apply_operations(header: Header, ops: Sequence[Operation]) -> Header:
    """The header rewrite function 𝓗(h, ω) of Definition 3.

    Raises :class:`HeaderError` exactly when 𝓗 is undefined on the input.
    """
    labels = header.labels
    for op in ops:
        labels = apply_operation(labels, op)
    return Header(labels)


def try_apply_operations(header: Header, ops: Sequence[Operation]) -> Optional[Header]:
    """Like :func:`apply_operations` but returns None where 𝓗 is undefined."""
    try:
        return apply_operations(header, ops)
    except HeaderError:
        return None


def stack_growth(ops: Sequence[Operation]) -> int:
    """Net change in header length caused by an operation sequence.

    Used to compute the *Tunnels* atomic quantity statically per routing
    rule: the per-step tunnel contribution is ``max(0, stack_growth(ω))``.
    """
    growth = 0
    for op in ops:
        if isinstance(op, Push):
            growth += 1
        elif isinstance(op, Pop):
            growth -= 1
    return growth


def max_stack_excursion(ops: Sequence[Operation]) -> int:
    """Largest intermediate growth above the starting height.

    Relevant for bounding the label-stack size the operation chain may
    need while executing (tunnel-depth analyses).
    """
    growth = 0
    peak = 0
    for op in ops:
        if isinstance(op, Push):
            growth += 1
            peak = max(peak, growth)
        elif isinstance(op, Pop):
            growth -= 1
    return peak


def operations_well_formed(top: Label, ops: Sequence[Operation]) -> bool:
    """Statically check whether ω can be defined for a header with top ``top``.

    The check tracks the *known* prefix of the stack as operations execute.
    Once a pop consumes below the known prefix the remaining symbols are
    unknown, and the check becomes permissive (the PDA compiler handles the
    unknown-top case by expanding over the feasible label set).
    """
    known: List[Optional[Label]] = [top]
    for op in ops:
        current = known[0] if known else None
        if isinstance(op, Swap):
            if current is not None and current.is_ip and not op.label.is_ip:
                return False
            if known:
                known[0] = op.label
        elif isinstance(op, Push):
            if current is not None:
                if current.is_ip and not op.label.is_bottom_mpls:
                    return False
                if (current.is_mpls or current.is_bottom_mpls) and not op.label.is_mpls:
                    return False
            known.insert(0, op.label)
        elif isinstance(op, Pop):
            if current is not None and current.is_ip:
                return False
            if known:
                known.pop(0)
    return True


def parse_operation(text: str, resolve: "LabelResolver") -> Operation:
    """Parse one operation from text like ``swap(s21)``, ``push(30)``, ``pop``.

    ``resolve`` maps a rendered label to a :class:`Label` (typically
    ``LabelTable.require`` or :func:`repro.model.labels.parse_label`).
    """
    text = text.strip()
    if text == "pop":
        return Pop()
    for name, cls in (("swap", Swap), ("push", Push)):
        if text.startswith(name + "(") and text.endswith(")"):
            inner = text[len(name) + 1 : -1].strip()
            return cls(resolve(inner))
    raise ModelError(f"cannot parse MPLS operation {text!r}")


def parse_operation_sequence(text: str, resolve: "LabelResolver") -> Tuple[Operation, ...]:
    """Parse an operation chain like ``swap(s21) ∘ push(30)`` (``o`` or ``;``
    are accepted as separators too). An empty string — or the rendered
    identity ``ε`` that :func:`format_operations` emits — is ε."""
    text = text.strip()
    if not text or text == "ε":
        return NO_OPS
    for separator in ("∘", ";", " o "):
        if separator in text:
            parts = text.split(separator)
            break
    else:
        parts = [text]
    return tuple(parse_operation(part, resolve) for part in parts if part.strip())


class LabelResolver:
    """Protocol-like alias: any callable str -> Label (documentation only)."""

    def __call__(self, text: str) -> Label:  # pragma: no cover - protocol stub
        raise NotImplementedError


def format_operations(ops: Iterable[Operation]) -> str:
    """Render an operation sequence the way the paper prints it."""
    rendered = " ∘ ".join(str(op) for op in ops)
    return rendered if rendered else "ε"
