"""Network topology: a directed multigraph of routers and links.

Definition 1 of the paper: a topology is ``(V, E, s, t)`` with routers
``V``, links ``E`` and source/target maps ``s, t : E → V``. Links are
*directed* (the paper models asymmetric failures), and multiple parallel
links between the same router pair are allowed, which is why links carry
their own identity instead of being (u, v) pairs.

Routers expose named *interfaces*; a link connects an outgoing interface
of its source router to an incoming interface of its target router, which
is how the query syntax ``[v.in1#u.in2]`` addresses individual links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import TopologyError


@dataclass(frozen=True)
class Coordinates:
    """Geographical router position (latitude/longitude, degrees).

    Used by the *Distance* atomic quantity (Appendix A.2 of the paper) via
    :func:`haversine_km`.
    """

    latitude: float
    longitude: float


def haversine_km(a: Coordinates, b: Coordinates) -> float:
    """Great-circle distance between two coordinates in kilometres."""
    radius_km = 6371.0
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * radius_km * math.asin(math.sqrt(h))


@dataclass(frozen=True)
class Router:
    """One router (a vertex of the topology)."""

    name: str
    coordinates: Optional[Coordinates] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("router name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Link:
    """One directed link ``e`` with ``s(e) = source`` and ``t(e) = target``.

    ``source_interface`` names the outgoing interface on the source router
    and ``target_interface`` the incoming interface on the target router.
    ``weight`` is the value of the distance function ``d(e)`` used by the
    *Distance* atomic quantity (latency, kilometres, inverse bandwidth, …).

    ``failure_probability`` is the link's independent failure likelihood
    used by the probabilistic what-if layer (:mod:`repro.prob`). ``None``
    means "not specified": the network behaves exactly as before, and
    probabilistic analyses substitute their configured default. When
    given, it must lie in ``[0, 1)`` — a link that *always* fails should
    simply be removed from the topology.
    """

    name: str
    source: Router
    target: Router
    source_interface: str
    target_interface: str
    weight: int = 1
    failure_probability: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("link name must be non-empty")
        if self.weight < 0:
            raise TopologyError(f"link {self.name}: weight must be non-negative")
        p = self.failure_probability
        if p is not None:
            if not isinstance(p, (int, float)) or isinstance(p, bool):
                raise TopologyError(
                    f"link {self.name}: failure_probability must be a number, "
                    f"got {p!r}"
                )
            if not (0.0 <= p < 1.0) or math.isnan(p):
                raise TopologyError(
                    f"link {self.name}: failure_probability {p!r} out of "
                    "range [0, 1)"
                )

    @property
    def is_self_loop(self) -> bool:
        """True when source and target router coincide (not counted by *Hops*)."""
        return self.source == self.target

    def endpoints(self) -> Tuple[Router, Router]:
        """The (source, target) router pair."""
        return (self.source, self.target)

    def __str__(self) -> str:
        return f"{self.name}[{self.source}->{self.target}]"


class Topology:
    """A directed multigraph ``(V, E, s, t)`` with interface bookkeeping.

    Construction is incremental (:meth:`add_router`, :meth:`add_link`);
    once handed to an :class:`repro.model.network.MplsNetwork` the topology
    should be treated as frozen.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._routers: Dict[str, Router] = {}
        self._links: Dict[str, Link] = {}
        self._out: Dict[str, List[Link]] = {}
        self._in: Dict[str, List[Link]] = {}
        # (router, outgoing interface) -> link, and the incoming mirror.
        self._by_out_interface: Dict[Tuple[str, str], Link] = {}
        self._by_in_interface: Dict[Tuple[str, str], Link] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_router(
        self, name: str, coordinates: Optional[Coordinates] = None
    ) -> Router:
        """Register a router; returns the existing one if already present."""
        existing = self._routers.get(name)
        if existing is not None:
            if coordinates is not None and existing.coordinates is None:
                updated = Router(name, coordinates)
                self._routers[name] = updated
                return updated
            return existing
        router = Router(name, coordinates)
        self._routers[name] = router
        self._out[name] = []
        self._in[name] = []
        return router

    def add_link(
        self,
        name: str,
        source: str,
        target: str,
        source_interface: Optional[str] = None,
        target_interface: Optional[str] = None,
        weight: int = 1,
        failure_probability: Optional[float] = None,
    ) -> Link:
        """Add a directed link from ``source`` to ``target``.

        Interfaces default to the link name (unique per direction). Both
        routers must already exist; interface names must be unique per
        (router, direction).
        """
        if name in self._links:
            raise TopologyError(f"duplicate link name {name!r}")
        src = self._routers.get(source)
        dst = self._routers.get(target)
        if src is None:
            raise TopologyError(f"link {name!r}: unknown source router {source!r}")
        if dst is None:
            raise TopologyError(f"link {name!r}: unknown target router {target!r}")
        out_if = source_interface if source_interface is not None else name
        in_if = target_interface if target_interface is not None else name
        out_key = (source, out_if)
        in_key = (target, in_if)
        if out_key in self._by_out_interface:
            raise TopologyError(
                f"outgoing interface {out_if!r} already in use on router {source!r}"
            )
        if in_key in self._by_in_interface:
            raise TopologyError(
                f"incoming interface {in_if!r} already in use on router {target!r}"
            )
        link = Link(name, src, dst, out_if, in_if, weight, failure_probability)
        self._links[name] = link
        self._out[source].append(link)
        self._in[target].append(link)
        self._by_out_interface[out_key] = link
        self._by_in_interface[in_key] = link
        return link

    def add_duplex_link(
        self,
        source: str,
        target: str,
        weight: int = 1,
        name: Optional[str] = None,
        failure_probability: Optional[float] = None,
    ) -> Tuple[Link, Link]:
        """Add a pair of opposite directed links modelling one physical link.

        Physical MPLS links are bidirectional, but the model (and failure
        semantics) is directional, so a physical link becomes two ``Link``
        objects named ``{name}_fw`` / ``{name}_bw``. A failure probability
        applies to both directions (one physical span, one likelihood).
        """
        base = name if name is not None else f"{source}--{target}"
        forward = self.add_link(
            f"{base}_fw", source, target, weight=weight,
            failure_probability=failure_probability,
        )
        backward = self.add_link(
            f"{base}_bw", target, source, weight=weight,
            failure_probability=failure_probability,
        )
        return forward, backward

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def routers(self) -> Tuple[Router, ...]:
        """All routers, in insertion order."""
        return tuple(self._routers.values())

    @property
    def links(self) -> Tuple[Link, ...]:
        """All links, in insertion order."""
        return tuple(self._links.values())

    def router(self, name: str) -> Router:
        """Router by name (raises :class:`TopologyError` on a miss)."""
        router = self._routers.get(name)
        if router is None:
            raise TopologyError(f"unknown router {name!r}")
        return router

    def has_router(self, name: str) -> bool:
        """Does a router of this name exist?"""
        return name in self._routers

    def link(self, name: str) -> Link:
        """Link by name (raises :class:`TopologyError` on a miss)."""
        link = self._links.get(name)
        if link is None:
            raise TopologyError(f"unknown link {name!r}")
        return link

    def has_link(self, name: str) -> bool:
        """Does a link of this name exist?"""
        return name in self._links

    def out_links(self, router: str) -> Tuple[Link, ...]:
        """Links whose source is ``router``."""
        if router not in self._routers:
            raise TopologyError(f"unknown router {router!r}")
        return tuple(self._out[router])

    def in_links(self, router: str) -> Tuple[Link, ...]:
        """Links whose target is ``router``."""
        if router not in self._routers:
            raise TopologyError(f"unknown router {router!r}")
        return tuple(self._in[router])

    def link_by_out_interface(self, router: str, interface: str) -> Link:
        """The unique link leaving ``router`` via ``interface``."""
        link = self._by_out_interface.get((router, interface))
        if link is None:
            raise TopologyError(
                f"router {router!r} has no outgoing interface {interface!r}"
            )
        return link

    def link_by_in_interface(self, router: str, interface: str) -> Link:
        """The unique link entering ``router`` via ``interface``."""
        link = self._by_in_interface.get((router, interface))
        if link is None:
            raise TopologyError(
                f"router {router!r} has no incoming interface {interface!r}"
            )
        return link

    def links_between(self, source: str, target: str) -> Tuple[Link, ...]:
        """Every parallel link from ``source`` to ``target``."""
        return tuple(l for l in self._out.get(source, ()) if l.target.name == target)

    def reverse_link(self, link: Link) -> Optional[Link]:
        """A link in the opposite direction between the same routers, if any."""
        candidates = self.links_between(link.target.name, link.source.name)
        return candidates[0] if candidates else None

    def interfaces(self, router: str) -> Tuple[str, ...]:
        """All interface names on a router (incoming and outgoing)."""
        names = [l.source_interface for l in self.out_links(router)]
        names += [l.target_interface for l in self.in_links(router)]
        seen: Dict[str, None] = {}
        for name in names:
            seen.setdefault(name)
        return tuple(seen)

    def link_distance(self, link: Link) -> int:
        """The distance value d(e): geographic km when both endpoints have
        coordinates, otherwise the link's configured weight."""
        if (
            link.source.coordinates is not None
            and link.target.coordinates is not None
            and not link.is_self_loop
        ):
            return max(1, round(haversine_km(link.source.coordinates, link.target.coordinates)))
        return link.weight

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def degree(self, router: str) -> int:
        """Total number of incident links (in + out)."""
        return len(self._out.get(router, ())) + len(self._in.get(router, ()))

    def __len__(self) -> int:
        return len(self._routers)

    def __iter__(self) -> Iterator[Router]:
        return iter(self._routers.values())

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, routers={len(self._routers)}, "
            f"links={len(self._links)})"
        )
