"""MPLS label model.

The paper partitions the label set ``L`` of a network into three disjoint
classes (Definition 2):

* ``L_M`` — plain MPLS labels (bottom-of-stack bit ``S`` unset),
* ``L_M^bot`` — MPLS labels with the bottom-of-stack bit set (rendered with
  a leading ``s`` in the paper, e.g. ``s20``),
* ``L_IP`` — IP "labels" (destination addresses used below the MPLS stack).

A :class:`Label` is an immutable (kind, name) pair; :class:`LabelTable`
manages the label universe of one network and provides interning so that
label identity checks are cheap inside the verification engine.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.errors import ModelError


class LabelKind(enum.Enum):
    """The three label classes of Definition 2 (plus the stack-bottom marker)."""

    MPLS = "mpls"
    #: MPLS label with the bottom-of-stack bit set (``smpls`` in queries).
    MPLS_BOTTOM = "smpls"
    IP = "ip"
    #: Synthetic stack-bottom marker used only inside pushdown encodings.
    BOTTOM = "bottom"


class Label:
    """One MPLS/IP label: an immutable (kind, name) pair.

    ``name`` is the label text as it appears in router tables and queries,
    *without* any kind prefix (so the paper's ``s20`` is
    ``Label(LabelKind.MPLS_BOTTOM, "20")`` but is rendered back as ``s20``).

    Labels are the stack symbols of every pushdown encoding and therefore
    sit on the hottest hashing path of the saturation engines; the hash is
    computed once at construction.
    """

    __slots__ = ("kind", "name", "_hash")

    def __init__(self, kind: LabelKind, name: str) -> None:
        if not name and kind is not LabelKind.BOTTOM:
            raise ModelError("label name must be non-empty")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash((kind.value, name)))

    def __setattr__(self, attribute: str, value: object) -> None:
        raise AttributeError("Label is immutable")

    def __reduce__(self) -> Tuple[Any, Tuple["LabelKind", str]]:
        # The immutability guard above blocks pickle's slot-restoring
        # default path; reconstruct through _restore_label instead, so
        # labels (and everything holding them: headers, traces, results,
        # compiled queries in the shared artifact store) can cross
        # process boundaries. _restore_label maps the stack-bottom kind
        # back to the BOTTOM singleton — replay code compares it by
        # identity (``stack[-1] is BOTTOM``), so a mere equal copy would
        # corrupt witness reconstruction after unpickling.
        return (_restore_label, (self.kind, self.name))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self.kind is other.kind and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_mpls(self) -> bool:
        """True for plain MPLS labels (``L_M``)."""
        return self.kind is LabelKind.MPLS

    @property
    def is_bottom_mpls(self) -> bool:
        """True for MPLS labels with the S-bit set (``L_M^bot``)."""
        return self.kind is LabelKind.MPLS_BOTTOM

    @property
    def is_ip(self) -> bool:
        """True for IP labels (``L_IP``)."""
        return self.kind is LabelKind.IP

    @property
    def is_stack_bottom(self) -> bool:
        """True only for the synthetic PDA stack-bottom marker."""
        return self.kind is LabelKind.BOTTOM

    def __str__(self) -> str:
        if self.kind is LabelKind.MPLS_BOTTOM:
            return f"s{self.name}"
        if self.kind is LabelKind.BOTTOM:
            return "⊥"  # ⊥
        return self.name

    def __repr__(self) -> str:
        return f"Label({self.kind.value}:{self.name})"


#: The unique stack-bottom marker shared by all pushdown encodings.
BOTTOM = Label(LabelKind.BOTTOM, "")


def _restore_label(kind: LabelKind, name: str) -> Label:
    """Unpickle target of :meth:`Label.__reduce__`: preserves the
    BOTTOM singleton's identity, builds everything else afresh."""
    if kind is LabelKind.BOTTOM:
        return BOTTOM
    return Label(kind, name)


def mpls(name: object) -> Label:
    """Convenience constructor for a plain MPLS label, e.g. ``mpls(30)``."""
    return Label(LabelKind.MPLS, str(name))


def smpls(name: object) -> Label:
    """Convenience constructor for a bottom-of-stack MPLS label.

    Accepts either the bare name (``smpls(20)``) or the paper's rendered
    form (``smpls("s20")``); the leading ``s`` is stripped only for the
    paper's numeric convention, so names like ``svc0`` stay intact.
    """
    text = str(name)
    if text.startswith("s") and len(text) > 1 and text[1].isdigit():
        text = text[1:]
    return Label(LabelKind.MPLS_BOTTOM, text)


def ip(name: object) -> Label:
    """Convenience constructor for an IP label, e.g. ``ip("ip1")``."""
    return Label(LabelKind.IP, str(name))


def parse_label(text: str) -> Label:
    """Parse a label from its rendered form.

    The conventions follow the paper and the AalWiNes input formats:

    * ``sNAME`` (a leading ``s`` followed by at least one character that
      makes the remainder a plausible MPLS label) is a bottom-of-stack
      MPLS label;
    * ``ipNAME`` or anything containing a dot (dotted-quad addresses) is an
      IP label;
    * ``$NAME`` and plain numeric names are MPLS labels.
    """
    text = text.strip()
    if not text:
        raise ModelError("cannot parse an empty label")
    if text == "⊥":
        return BOTTOM
    if text.startswith("ip") or "." in text:
        return Label(LabelKind.IP, text)
    if text.startswith("s") and len(text) > 1:
        return Label(LabelKind.MPLS_BOTTOM, text[1:])
    return Label(LabelKind.MPLS, text)


class LabelTable:
    """The label universe ``L = L_M ⊎ L_M^bot ⊎ L_IP`` of one network.

    The table interns labels by their rendered text, guaranteeing that a
    given (kind, name) pair appears once; the verification engine relies on
    this to key dictionaries by label identity-equivalent hashes.
    """

    def __init__(self, labels: Iterable[Label] = ()) -> None:
        self._by_text: Dict[str, Label] = {}
        for label in labels:
            self.add(label)

    def add(self, label: Label) -> Label:
        """Intern ``label`` and return the canonical instance."""
        if label.is_stack_bottom:
            raise ModelError("the stack-bottom marker is not a network label")
        existing = self._by_text.get(str(label))
        if existing is not None:
            if existing.kind is not label.kind:
                raise ModelError(
                    f"label text {label} already registered with kind "
                    f"{existing.kind.value}"
                )
            return existing
        self._by_text[str(label)] = label
        return label

    def get(self, text: str) -> Optional[Label]:
        """Look up a label by its rendered text, or None."""
        return self._by_text.get(text)

    def require(self, text: str) -> Label:
        """Look up a label by its rendered text, raising on a miss."""
        label = self._by_text.get(text)
        if label is None:
            raise ModelError(f"unknown label {text!r}")
        return label

    def of_kind(self, kind: LabelKind) -> FrozenSet[Label]:
        """All labels of one class (``ip`` / ``mpls`` / ``smpls`` sets)."""
        return frozenset(l for l in self._by_text.values() if l.kind is kind)

    @property
    def mpls_labels(self) -> FrozenSet[Label]:
        """``L_M`` — the plain MPLS labels."""
        return self.of_kind(LabelKind.MPLS)

    @property
    def bottom_mpls_labels(self) -> FrozenSet[Label]:
        """``L_M^bot`` — the bottom-of-stack MPLS labels."""
        return self.of_kind(LabelKind.MPLS_BOTTOM)

    @property
    def ip_labels(self) -> FrozenSet[Label]:
        """``L_IP`` — the IP labels."""
        return self.of_kind(LabelKind.IP)

    def all_labels(self) -> Tuple[Label, ...]:
        """Every registered label, in deterministic (insertion) order."""
        return tuple(self._by_text.values())

    def __len__(self) -> int:
        return len(self._by_text)

    def __iter__(self) -> Iterator[Label]:
        return iter(self._by_text.values())

    def __contains__(self, label: object) -> bool:
        if isinstance(label, Label):
            return self._by_text.get(str(label)) == label
        if isinstance(label, str):
            return label in self._by_text
        return False

    def __repr__(self) -> str:
        return (
            f"LabelTable(mpls={len(self.mpls_labels)}, "
            f"smpls={len(self.bottom_mpls_labels)}, ip={len(self.ip_labels)})"
        )
