"""Valid MPLS packet headers (Definition 2.2 of the paper).

A header is a finite word over the label set ``L``, written top-of-stack
first. The set of *valid* headers is

    H = L_IP  ∪  { α ℓ1 ℓ0 | α ∈ L_M*, ℓ1 ∈ L_M^bot, ℓ0 ∈ L_IP }

i.e. either a bare IP label, or an IP label below exactly one
bottom-of-stack MPLS label below any number of plain MPLS labels.

:class:`Header` is an immutable tuple wrapper with validity checking and
the stack accessors the rest of the library needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

from repro.errors import HeaderError
from repro.model.labels import Label


def is_valid_header(labels: Sequence[Label]) -> bool:
    """Check membership of a label word (top first) in the valid set ``H``."""
    if len(labels) == 0:
        return False
    if len(labels) == 1:
        return labels[0].is_ip
    # More than one label: last must be IP, second-to-last the unique
    # bottom-of-stack MPLS label, all earlier ones plain MPLS.
    if not labels[-1].is_ip:
        return False
    if not labels[-2].is_bottom_mpls:
        return False
    return all(label.is_mpls for label in labels[:-2])


class Header:
    """An immutable valid MPLS header; labels ordered top-of-stack first."""

    __slots__ = ("_labels", "_hash")

    def __init__(self, labels: Iterable[Label]) -> None:
        stack: Tuple[Label, ...] = tuple(labels)
        if not is_valid_header(stack):
            rendered = " ".join(str(l) for l in stack) or "(empty)"
            raise HeaderError(f"invalid MPLS header: {rendered}")
        self._labels = stack
        self._hash = hash(stack)

    @classmethod
    def of(cls, *labels: Label) -> "Header":
        """Build a header from labels listed top-of-stack first."""
        return cls(labels)

    @property
    def labels(self) -> Tuple[Label, ...]:
        """The label word, top of stack first."""
        return self._labels

    @property
    def top(self) -> Label:
        """The top-of-stack (left-most) label — ``head(h)`` in the paper."""
        return self._labels[0]

    @property
    def ip_label(self) -> Label:
        """The IP label at the bottom of every valid header."""
        return self._labels[-1]

    @property
    def depth(self) -> int:
        """Number of MPLS labels on the stack (header length minus the IP)."""
        return len(self._labels) - 1

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Label]:
        return iter(self._labels)

    def __getitem__(self, index: int) -> Label:
        return self._labels[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Header):
            return NotImplemented
        return self._labels == other._labels

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return " ∘ ".join(str(label) for label in self._labels)

    def __repr__(self) -> str:
        return f"Header({self})"
