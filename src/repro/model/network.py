"""The MPLS network: topology + label universe + routing table.

Definition 2 of the paper: ``N = (V, E, s, t, L, τ)``. This module ties
the pieces together and offers the forwarding-step primitive
(:meth:`MplsNetwork.forwarding_alternatives`) used by both the explicit
simulator and the trace validity checker.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Tuple

from repro.errors import ModelError
from repro.model.header import Header
from repro.model.labels import Label, LabelTable
from repro.model.operations import try_apply_operations
from repro.model.routing import GroupSequence, RoutingEntry, RoutingTable
from repro.model.topology import Link, Topology


class MplsNetwork:
    """An MPLS network ``N = (V, E, s, t, L, τ)``.

    Instances are produced by :class:`repro.model.builder.NetworkBuilder`
    or by the dataset generators / input-format readers; after
    construction the network is conceptually immutable.
    """

    def __init__(
        self,
        topology: Topology,
        labels: LabelTable,
        routing: RoutingTable,
    ) -> None:
        if routing.topology is not topology:
            raise ModelError("routing table was built for a different topology")
        self.topology = topology
        self.labels = labels
        self.routing = routing

    # ------------------------------------------------------------------
    # forwarding semantics
    # ------------------------------------------------------------------
    def forwarding_alternatives(
        self, in_link: Link, header: Header, failed: AbstractSet[Link]
    ) -> Tuple[Tuple[RoutingEntry, Header], ...]:
        """All (entry, next header) pairs available to a packet.

        This is 𝓐(τ(e, head(h))) of §2.4 restricted to entries whose
        operation chain is defined on ``h`` (the header rewrite function is
        partial): the active entries of the highest-priority active group,
        each paired with the rewritten header.
        """
        groups = self.routing.lookup(in_link, header.top)
        result = []
        for entry in groups.active_entries(failed):
            next_header = try_apply_operations(header, entry.operations)
            if next_header is not None:
                result.append((entry, next_header))
        return tuple(result)

    def group_sequence(self, in_link: Link, label: Label) -> GroupSequence:
        """τ(in_link, label) — the raw prioritized group sequence."""
        return self.routing.lookup(in_link, label)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.topology.name

    def router_names(self) -> Tuple[str, ...]:
        """All router names, in insertion order."""
        return tuple(r.name for r in self.topology.routers)

    def link_names(self) -> Tuple[str, ...]:
        """All link names, in insertion order."""
        return tuple(l.name for l in self.topology.links)

    def rule_count(self) -> int:
        """Total number of forwarding rules (the paper's rule-count unit)."""
        return self.routing.rule_count()

    def used_labels(self) -> FrozenSet[Label]:
        """Labels that occur in the routing table (matched or produced)."""
        from repro.model.operations import Push, Swap

        used = set()
        for _link, label, groups in self.routing.items():
            used.add(label)
            for _priority, entry in groups.all_entries():
                for op in entry.operations:
                    if isinstance(op, (Push, Swap)):
                        used.add(op.label)
        return frozenset(used)

    def validate(self) -> None:
        """Consistency checks beyond what construction already enforces.

        Raises :class:`ModelError` when the routing table uses labels that
        are not registered in the label table.
        """
        for _link, label, groups in self.routing.items():
            if label not in self.labels:
                raise ModelError(f"routing table matches unregistered label {label}")
        for label in self.used_labels():
            if label not in self.labels:
                raise ModelError(f"routing table produces unregistered label {label}")

    def __repr__(self) -> str:
        return (
            f"MplsNetwork({self.name!r}, routers={len(self.topology)}, "
            f"links={len(self.topology.links)}, rules={self.rule_count()})"
        )
