"""Fluent construction API for MPLS networks.

The dataset generators, the input-format readers and the examples all
build networks through :class:`NetworkBuilder`, which takes care of
label interning, link/interface naming and the grouping of rules into
prioritized traffic-engineering groups.

Example (a two-router swap chain)::

    builder = NetworkBuilder("tiny")
    builder.router("A"); builder.router("B"); builder.router("C")
    builder.link("e0", "A", "B")
    builder.link("e1", "B", "C")
    builder.rule("e0", "s10", "e1", "swap(s11)")
    network = builder.build()
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import RuleValidationError, TopologyError
from repro.model.labels import Label, LabelTable, parse_label
from repro.model.network import MplsNetwork
from repro.model.operations import (
    Operation,
    parse_operation_sequence,
)
from repro.model.routing import (
    RoutingEntry,
    RoutingTable,
    TrafficEngineeringGroup,
)
from repro.model.topology import Coordinates, Topology

#: Operations may be given as a pre-parsed tuple or as text like
#: ``"swap(s21) ∘ push(30)"``.
OperationsLike = Union[str, Sequence[Operation]]
LabelLike = Union[str, Label]

#: Largest accepted traffic-engineering priority. Real tables carry a
#: handful of protection levels; a priority beyond this bound is a
#: loader bug (e.g. a byte offset parsed as a priority), not intent.
MAX_PRIORITY = 100


class NetworkBuilder:
    """Incrementally builds an :class:`MplsNetwork`."""

    def __init__(self, name: str = "network") -> None:
        self._topology = Topology(name)
        self._labels = LabelTable()
        # (link name, label) -> priority -> list of entries
        self._pending: Dict[Tuple[str, Label], Dict[int, List[RoutingEntry]]] = {}

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def router(
        self,
        name: str,
        latitude: Optional[float] = None,
        longitude: Optional[float] = None,
    ) -> "NetworkBuilder":
        """Add a router, optionally with coordinates for Distance weights."""
        coords = None
        if latitude is not None and longitude is not None:
            coords = Coordinates(latitude, longitude)
        self._topology.add_router(name, coords)
        return self

    def link(
        self,
        name: str,
        source: str,
        target: str,
        source_interface: Optional[str] = None,
        target_interface: Optional[str] = None,
        weight: int = 1,
        failure_probability: Optional[float] = None,
    ) -> "NetworkBuilder":
        """Add a directed link (routers are created on demand).

        Duplicate definitions — reusing a link name, or wiring a second
        link through an interface pair that already carries one — raise
        :class:`~repro.errors.RuleValidationError` naming the earlier
        link, so input files that paste the same link twice fail at the
        declaration site instead of surfacing as a confusing topology
        state downstream.
        """
        self._topology.add_router(source)
        self._topology.add_router(target)
        self._validate_new_link(name, source, target, source_interface, target_interface)
        self._topology.add_link(
            name,
            source,
            target,
            source_interface,
            target_interface,
            weight,
            failure_probability,
        )
        return self

    def _validate_new_link(
        self,
        name: str,
        source: str,
        target: str,
        source_interface: Optional[str],
        target_interface: Optional[str],
    ) -> None:
        """Reject duplicate link definitions with declaration-site context."""
        if self._topology.has_link(name):
            existing = self._topology.link(name)
            raise RuleValidationError(
                f"duplicate link definition {name!r}: already declared as "
                f"{existing.source.name}.{existing.source_interface} -> "
                f"{existing.target.name}.{existing.target_interface}",
                router=source,
                in_link=name,
            )
        out_if = source_interface if source_interface is not None else name
        in_if = target_interface if target_interface is not None else name
        for router, interface, lookup, direction in (
            (source, out_if, self._topology.link_by_out_interface, "outgoing"),
            (target, in_if, self._topology.link_by_in_interface, "incoming"),
        ):
            try:
                existing = lookup(router, interface)
            except TopologyError:
                continue
            raise RuleValidationError(
                f"duplicate link definition {name!r}: {direction} interface "
                f"{interface!r} on router {router!r} already carries link "
                f"{existing.name!r} "
                f"({existing.source.name}.{existing.source_interface} -> "
                f"{existing.target.name}.{existing.target_interface})",
                router=router,
                in_link=name,
            )

    def duplex_link(
        self,
        source: str,
        target: str,
        weight: int = 1,
        name: Optional[str] = None,
        failure_probability: Optional[float] = None,
    ) -> "NetworkBuilder":
        """Add a physical (bidirectional) link as two directed links."""
        self._topology.add_router(source)
        self._topology.add_router(target)
        base = name if name is not None else f"{source}--{target}"
        for link_name, src, dst in (
            (f"{base}_fw", source, target),
            (f"{base}_bw", target, source),
        ):
            self._validate_new_link(link_name, src, dst, None, None)
        self._topology.add_duplex_link(source, target, weight, name, failure_probability)
        return self

    # ------------------------------------------------------------------
    # labels and rules
    # ------------------------------------------------------------------
    def label(self, label: LabelLike) -> Label:
        """Intern a label given as text (``"s20"``, ``"ip1"``, ``"30"``)."""
        if isinstance(label, Label):
            return self._labels.add(label)
        return self._labels.add(parse_label(label))

    def _resolve_operations(self, operations: OperationsLike) -> Tuple[Operation, ...]:
        if isinstance(operations, str):
            return parse_operation_sequence(operations, lambda text: self.label(text))
        resolved = tuple(operations)
        from repro.model.operations import Push, Swap

        for op in resolved:
            if isinstance(op, (Push, Swap)):
                self._labels.add(op.label)
        return resolved

    def rule(
        self,
        in_link: str,
        label: LabelLike,
        out_link: str,
        operations: OperationsLike = (),
        priority: int = 1,
    ) -> "NetworkBuilder":
        """Add one forwarding rule.

        Rules with the same (in_link, label, priority) form one
        traffic-engineering group; lower ``priority`` numbers are tried
        first (priority 1 is the primary path), matching the table
        rendering of Figure 1b in the paper.

        Both links must already exist and ``priority`` must lie in
        ``1..MAX_PRIORITY``; violations raise
        :class:`~repro.errors.RuleValidationError` at the declaration
        site, carrying the router/label coordinates of the bad rule.
        """
        matched = self.label(label)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise RuleValidationError(
                f"rule τ({in_link}, {matched}): priority must be an "
                f"integer, got {priority!r}",
                in_link=in_link,
                label=str(matched),
            )
        if not 1 <= priority <= MAX_PRIORITY:
            raise RuleValidationError(
                f"rule τ({in_link}, {matched}): priority {priority} out "
                f"of range 1..{MAX_PRIORITY} (1 = highest)",
                in_link=in_link,
                label=str(matched),
            )
        try:
            incoming = self._topology.link(in_link)
        except TopologyError:
            raise RuleValidationError(
                f"rule τ({in_link}, {matched}): unknown incoming link "
                f"{in_link!r}",
                in_link=in_link,
                label=str(matched),
            ) from None
        try:
            out = self._topology.link(out_link)
        except TopologyError:
            raise RuleValidationError(
                f"rule τ({in_link}, {matched}) at {incoming.target.name}: "
                f"unknown outgoing link {out_link!r}",
                router=incoming.target.name,
                in_link=in_link,
                label=str(matched),
            ) from None
        entry = RoutingEntry(out, self._resolve_operations(operations))
        key = (in_link, matched)
        self._pending.setdefault(key, defaultdict(list))[priority].append(entry)
        return self

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def build(self) -> MplsNetwork:
        """Assemble and validate the network."""
        routing = RoutingTable(self._topology)
        for (link_name, label), by_priority in self._pending.items():
            in_link = self._topology.link(link_name)
            groups = [
                TrafficEngineeringGroup(by_priority[priority])
                for priority in sorted(by_priority)
            ]
            routing.set_groups(in_link, label, groups)
        network = MplsNetwork(self._topology, self._labels, routing)
        network.validate()
        return network

    @property
    def topology(self) -> Topology:
        """The topology under construction (for read-only inspection)."""
        return self._topology
