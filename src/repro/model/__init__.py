"""MPLS network model (§2 of the paper).

Public surface: labels, headers, operations, topology, routing tables,
networks, traces and atomic quantities.
"""

from repro.model.builder import NetworkBuilder
from repro.model.header import Header, is_valid_header
from repro.model.labels import (
    BOTTOM,
    Label,
    LabelKind,
    LabelTable,
    ip,
    mpls,
    parse_label,
    smpls,
)
from repro.model.network import MplsNetwork
from repro.model.operations import (
    NO_OPS,
    Operation,
    Pop,
    Push,
    Swap,
    apply_operations,
    format_operations,
    stack_growth,
    try_apply_operations,
)
from repro.model.quantities import Quantity, evaluate_quantity
from repro.model.srlg import SharedRiskGroups, degrade_network, minimal_failure_groups
from repro.model.routing import (
    GroupSequence,
    RoutingEntry,
    RoutingTable,
    TrafficEngineeringGroup,
)
from repro.model.topology import Coordinates, Link, Router, Topology, haversine_km
from repro.model.trace import (
    Trace,
    TraceStep,
    check_trace,
    enumerate_traces,
    minimal_failure_set,
)

__all__ = [
    "BOTTOM",
    "Coordinates",
    "GroupSequence",
    "Header",
    "Label",
    "LabelKind",
    "LabelTable",
    "Link",
    "MplsNetwork",
    "NO_OPS",
    "NetworkBuilder",
    "Operation",
    "Pop",
    "Push",
    "Quantity",
    "Router",
    "RoutingEntry",
    "RoutingTable",
    "SharedRiskGroups",
    "Swap",
    "Topology",
    "Trace",
    "TraceStep",
    "TrafficEngineeringGroup",
    "apply_operations",
    "check_trace",
    "degrade_network",
    "enumerate_traces",
    "evaluate_quantity",
    "format_operations",
    "haversine_km",
    "ip",
    "is_valid_header",
    "minimal_failure_set",
    "minimal_failure_groups",
    "mpls",
    "parse_label",
    "smpls",
    "stack_growth",
    "try_apply_operations",
]
