"""Routing tables with prioritized traffic-engineering groups.

Definition 2 of the paper: the routing table is a function

    τ : E × L → (2^{E × Op*})*

mapping an incoming link and a top-of-stack label to a *sequence* of
traffic-engineering groups ``O_1 O_2 … O_n``. Each group is a set of
(outgoing link, operation sequence) pairs; the router forwards via any
*active* link of the highest-priority group that has one (§2.4).

The over-approximating PDA construction and the *Failures* atomic
quantity both need, per (group, entry), the set of links that must have
failed for that entry to be chosen — :meth:`GroupSequence.required_failures`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import RoutingError
from repro.model.labels import Label
from repro.model.operations import Operation, format_operations, operations_well_formed
from repro.model.topology import Link, Topology


@dataclass(frozen=True)
class RoutingEntry:
    """One forwarding alternative: an outgoing link plus an op sequence ω."""

    out_link: Link
    operations: Tuple[Operation, ...]

    def __str__(self) -> str:
        return f"{self.out_link.name}: {format_operations(self.operations)}"


class TrafficEngineeringGroup:
    """One traffic-engineering group ``O`` — a set of routing entries.

    Entry order is preserved for deterministic iteration, but two groups
    with the same entries in different order compare equal (set semantics,
    as in the paper).
    """

    __slots__ = ("_entries", "_links")

    def __init__(self, entries: Iterable[RoutingEntry]) -> None:
        unique: Dict[RoutingEntry, None] = {}
        for entry in entries:
            unique.setdefault(entry)
        if not unique:
            raise RoutingError("a traffic-engineering group must be non-empty")
        self._entries: Tuple[RoutingEntry, ...] = tuple(unique)
        self._links: FrozenSet[Link] = frozenset(e.out_link for e in self._entries)

    @property
    def entries(self) -> Tuple[RoutingEntry, ...]:
        return self._entries

    @property
    def links(self) -> FrozenSet[Link]:
        """``E(O)`` — the set of all outgoing links in the group."""
        return self._links

    def is_active(self, failed: AbstractSet[Link]) -> bool:
        """True when at least one link of the group is active (§2.4)."""
        return any(link not in failed for link in self._links)

    def active_entries(self, failed: AbstractSet[Link]) -> Tuple[RoutingEntry, ...]:
        """Entries whose outgoing link is active."""
        return tuple(e for e in self._entries if e.out_link not in failed)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RoutingEntry]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficEngineeringGroup):
            return NotImplemented
        return frozenset(self._entries) == frozenset(other._entries)

    def __hash__(self) -> int:
        return hash(frozenset(self._entries))

    def __str__(self) -> str:
        return "{" + ", ".join(str(e) for e in self._entries) + "}"


class GroupSequence:
    """The value τ(e, ℓ): a priority-ordered sequence ``O_1 O_2 … O_n``.

    ``O_1`` has the highest priority. :meth:`active_entries` implements the
    paper's 𝓐 operator; :meth:`required_failures` gives, per priority
    index, the links that must all be failed before that group may be used
    (the per-step *failed(i)* set of the Failures quantity, §3).
    """

    __slots__ = ("_groups", "_required")

    def __init__(self, groups: Sequence[TrafficEngineeringGroup]) -> None:
        self._groups: Tuple[TrafficEngineeringGroup, ...] = tuple(groups)
        required: List[FrozenSet[Link]] = []
        accumulated: FrozenSet[Link] = frozenset()
        for group in self._groups:
            required.append(accumulated)
            accumulated = accumulated | group.links
        self._required: Tuple[FrozenSet[Link], ...] = tuple(required)

    @property
    def groups(self) -> Tuple[TrafficEngineeringGroup, ...]:
        return self._groups

    def required_failures(self, priority_index: int) -> FrozenSet[Link]:
        """Links in all strictly higher-priority groups ``O_1 … O_{j-1}``.

        Every one of them must be failed for group ``j`` (0-based
        ``priority_index``) to be the highest-priority active group.
        """
        return self._required[priority_index]

    def active_group_index(self, failed: AbstractSet[Link]) -> Optional[int]:
        """Index of the highest-priority active group, or None."""
        for index, group in enumerate(self._groups):
            if group.is_active(failed):
                return index
        return None

    def active_entries(self, failed: AbstractSet[Link]) -> Tuple[RoutingEntry, ...]:
        """The 𝓐 operator of §2.4: active entries of the first active group."""
        index = self.active_group_index(failed)
        if index is None:
            return ()
        return self._groups[index].active_entries(failed)

    def all_entries(self) -> Iterator[Tuple[int, RoutingEntry]]:
        """Iterate (priority index, entry) over every entry of every group."""
        for index, group in enumerate(self._groups):
            for entry in group:
                yield index, entry

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[TrafficEngineeringGroup]:
        return iter(self._groups)

    def __bool__(self) -> bool:
        return bool(self._groups)

    def __str__(self) -> str:
        return " ".join(str(g) for g in self._groups)


#: An empty τ value (packet is dropped / leaves the network).
EMPTY_GROUP_SEQUENCE = GroupSequence(())


class RoutingTable:
    """The full routing function τ of one MPLS network.

    Keys are (incoming link, top label); missing keys mean the packet is
    not forwarded further (τ(e, ℓ) = empty sequence), which is how traffic
    leaves the network at edge links.
    """

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._table: Dict[Tuple[str, Label], GroupSequence] = {}
        self._labels_by_link: Dict[str, List[Label]] = {}

    @property
    def topology(self) -> Topology:
        return self._topology

    def set_groups(
        self, in_link: Link, label: Label, groups: Sequence[TrafficEngineeringGroup]
    ) -> None:
        """Define τ(in_link, label) = groups, validating link adjacency.

        Every entry's outgoing link must leave the router the incoming link
        arrives at (``t(e) = s(e')``), and its operation chain must be
        potentially well-formed for the matched top label.
        """
        router = in_link.target
        for group in groups:
            for entry in group:
                if entry.out_link.source != router:
                    raise RoutingError(
                        f"rule for ({in_link.name}, {label}): outgoing link "
                        f"{entry.out_link.name} does not leave router {router}"
                    )
                if not operations_well_formed(label, entry.operations):
                    raise RoutingError(
                        f"rule for ({in_link.name}, {label}): operations "
                        f"{format_operations(entry.operations)} undefined on "
                        f"top label {label}"
                    )
        key = (in_link.name, label)
        if key in self._table:
            raise RoutingError(
                f"duplicate routing definition for ({in_link.name}, {label})"
            )
        self._table[key] = GroupSequence(groups)
        self._labels_by_link.setdefault(in_link.name, []).append(label)

    def lookup(self, in_link: Link, label: Label) -> GroupSequence:
        """τ(in_link, label); the empty sequence when undefined."""
        return self._table.get((in_link.name, label), EMPTY_GROUP_SEQUENCE)

    def has_rule(self, in_link: Link, label: Label) -> bool:
        """Is τ(in_link, label) defined?"""
        return (in_link.name, label) in self._table

    def items(self) -> Iterator[Tuple[Link, Label, GroupSequence]]:
        """Iterate all defined (incoming link, label, groups) triples."""
        for (link_name, label), groups in self._table.items():
            yield self._topology.link(link_name), label, groups

    def labels_for_link(self, in_link: Link) -> Tuple[Label, ...]:
        """All top labels with a rule on the given incoming link."""
        return tuple(self._labels_by_link.get(in_link.name, ()))

    def rule_count(self) -> int:
        """Total number of (link, label, priority, entry) forwarding rules,
        the unit the paper uses when it reports ">250,000 rules"."""
        return sum(
            len(group)
            for groups in self._table.values()
            for group in groups
        )

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[Tuple[str, Label]]:
        return iter(self._table)
