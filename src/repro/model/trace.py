"""Network traces (Definition 4) and their validity / feasibility checks.

A trace is a finite sequence of (link, header) pairs describing the
routing of one packet under a set ``F`` of failed links. This module
provides:

* :class:`Trace` — the immutable sequence plus pretty-printing;
* :func:`check_trace` — validity of a trace for a *given* failure set F;
* :func:`minimal_failure_set` — the smallest F enabling a trace (or proof
  that none of size ≤ k exists), which is the feasibility test the dual
  engine runs on candidate witnesses from the over-approximation;
* :func:`enumerate_traces` — a bounded explicit-state simulator used by
  the reference engine and the test oracles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import ModelError
from repro.model.header import Header
from repro.model.network import MplsNetwork
from repro.model.operations import try_apply_operations
from repro.model.topology import Link


@dataclass(frozen=True)
class TraceStep:
    """One (link, header) pair of a trace: the packet *arrived* on ``link``
    carrying ``header``."""

    link: Link
    header: Header

    def __str__(self) -> str:
        return f"({self.link.name}, {self.header})"


class Trace:
    """An immutable sequence of trace steps."""

    __slots__ = ("_steps",)

    def __init__(self, steps: Iterable[TraceStep]) -> None:
        self._steps: Tuple[TraceStep, ...] = tuple(steps)
        if not self._steps:
            raise ModelError("a trace must contain at least one step")

    @classmethod
    def of(cls, *pairs: Tuple[Link, Header]) -> "Trace":
        """Build a trace from (link, header) tuples."""
        return cls(TraceStep(link, header) for link, header in pairs)

    @property
    def steps(self) -> Tuple[TraceStep, ...]:
        return self._steps

    @property
    def links(self) -> Tuple[Link, ...]:
        """The link sequence e1 … en (matched against the query's ``b``)."""
        return tuple(step.link for step in self._steps)

    @property
    def headers(self) -> Tuple[Header, ...]:
        return tuple(step.header for step in self._steps)

    @property
    def first_header(self) -> Header:
        """h1 — matched against the query's initial-header expression."""
        return self._steps[0].header

    @property
    def last_header(self) -> Header:
        """hn — matched against the query's final-header expression."""
        return self._steps[-1].header

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self._steps)

    def __getitem__(self, index: int) -> TraceStep:
        return self._steps[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._steps == other._steps

    def __hash__(self) -> int:
        return hash(self._steps)

    def __str__(self) -> str:
        return " ".join(str(step) for step in self._steps)

    def __repr__(self) -> str:
        return f"Trace({self})"

    def pretty(self) -> str:
        """Multi-line rendering showing, per hop, the router-level view."""
        lines = []
        for index, step in enumerate(self._steps):
            link = step.link
            lines.append(
                f"  {index + 1:>3}. {link.source.name} --{link.name}--> "
                f"{link.target.name}   header: {step.header}"
            )
        return "\n".join(lines)


def check_trace(
    network: MplsNetwork, trace: Trace, failed: AbstractSet[Link]
) -> bool:
    """Definition 4: is ``trace`` a valid trace of ``network`` under ``F``?

    Checks that no used link is failed and that every consecutive pair is
    justified by an active entry of the highest-priority active group.
    """
    for step in trace:
        if step.link in failed:
            return False
    for current, following in zip(trace.steps, trace.steps[1:]):
        alternatives = network.forwarding_alternatives(
            current.link, current.header, failed
        )
        if not any(
            entry.out_link == following.link and header == following.header
            for entry, header in alternatives
        ):
            return False
    return True


def _step_requirements(
    network: MplsNetwork, current: TraceStep, following: TraceStep
) -> List[FrozenSet[Link]]:
    """All per-step failure requirements justifying ``current → following``.

    Each element is the set of links that must be failed so that the
    highest-priority active group contains the used entry. Several
    alternatives can exist when the same (out link, rewritten header)
    appears in more than one priority group.
    """
    groups = network.group_sequence(current.link, current.header.top)
    requirements: List[FrozenSet[Link]] = []
    for priority_index, entry in groups.all_entries():
        if entry.out_link != following.link:
            continue
        rewritten = try_apply_operations(current.header, entry.operations)
        if rewritten != following.header:
            continue
        required = groups.required_failures(priority_index)
        if entry.out_link in required:
            # The used link would itself have to be failed: contradiction.
            continue
        requirements.append(required)
    return requirements


def step_requirement_sets(
    network: MplsNetwork, current: TraceStep, following: TraceStep
) -> List[FrozenSet[Link]]:
    """Public alias of the per-step failure-requirement computation.

    Used by the SRLG extension, which needs the raw requirement sets to
    cover them with failure *events* instead of individual links.
    """
    return _step_requirements(network, current, following)


def minimal_failure_set(
    network: MplsNetwork, trace: Trace, max_failures: int
) -> Optional[FrozenSet[Link]]:
    """Smallest failure set ``F`` with |F| ≤ k making the trace valid.

    Returns None when no such set exists. The used links of the trace can
    never be in F. Per step there may be several alternative requirement
    sets (rarely more than one); the search is a small exact set-cover
    over those alternatives, with memoization on the accumulated set.
    """
    used = frozenset(trace.links)
    per_step: List[List[FrozenSet[Link]]] = []
    for current, following in zip(trace.steps, trace.steps[1:]):
        alternatives = _step_requirements(network, current, following)
        alternatives = [req for req in alternatives if not (req & used)]
        if not alternatives:
            return None
        # Deduplicate and drop dominated alternatives (supersets).
        pruned: List[FrozenSet[Link]] = []
        for req in sorted(set(alternatives), key=len):
            if not any(small <= req for small in pruned):
                pruned.append(req)
        per_step.append(pruned)

    best: Optional[FrozenSet[Link]] = None
    seen: Set[Tuple[int, FrozenSet[Link]]] = set()

    def search(index: int, accumulated: FrozenSet[Link]) -> None:
        nonlocal best
        if len(accumulated) > max_failures:
            return
        if best is not None and len(accumulated) >= len(best):
            return
        if index == len(per_step):
            best = accumulated
            return
        key = (index, accumulated)
        if key in seen:
            return
        seen.add(key)
        for requirement in per_step[index]:
            search(index + 1, accumulated | requirement)

    search(0, frozenset())
    return best


def simulate_step(
    network: MplsNetwork, step: TraceStep, failed: AbstractSet[Link]
) -> Tuple[TraceStep, ...]:
    """All possible successor steps of one trace step under ``F``."""
    return tuple(
        TraceStep(entry.out_link, header)
        for entry, header in network.forwarding_alternatives(
            step.link, step.header, failed
        )
    )


def enumerate_traces(
    network: MplsNetwork,
    initial: TraceStep,
    failed: AbstractSet[Link],
    max_length: int,
    max_header_depth: Optional[int] = None,
) -> Iterator[Trace]:
    """Yield every valid trace from ``initial`` up to ``max_length`` steps.

    Traces are emitted for every prefix (a packet may leave the network at
    any point where τ is undefined — and a query may also match a strict
    prefix of a longer routing). ``max_header_depth`` bounds the label
    stack so that push-loops terminate; the exponential cost is why this
    is only a test oracle, mirroring the paper's remark that the direct
    encoding is exponentially slower than the symbolic PDA approach.
    """
    if initial.link in failed:
        return
    stack: List[Tuple[TraceStep, ...]] = [(initial,)]
    seen: Set[Tuple[TraceStep, ...]] = set()
    while stack:
        prefix = stack.pop()
        yield Trace(prefix)
        if len(prefix) >= max_length:
            continue
        for successor in simulate_step(network, prefix[-1], failed):
            if max_header_depth is not None and successor.header.depth > max_header_depth:
                continue
            extended = prefix + (successor,)
            if extended in seen:
                continue
            seen.add(extended)
            stack.append(extended)
