"""Shared-risk link groups (SRLGs).

The paper motivates multi-failure analysis with shared risk link
groups [6, 17, 30]: links that share a conduit, a line card or a fibre
span fail *together*, so "one failure event" can take down several
model links at once. This module extends the failure semantics
accordingly:

* :class:`SharedRiskGroups` — a named grouping of links; links not
  assigned to any group act as singleton groups (they can still fail
  individually);
* :func:`minimal_failure_groups` — the SRLG analogue of
  :func:`repro.model.trace.minimal_failure_set`: the smallest set of
  *failure events* (groups) enabling a trace, honouring that failing a
  group fails **all** of its links — including any the trace itself
  would need to traverse.

The verification layer builds on this in
:mod:`repro.verification.srlg`.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import ModelError
from repro.model.network import MplsNetwork
from repro.model.topology import Link
from repro.model.trace import Trace, step_requirement_sets


class SharedRiskGroups:
    """A named partition-with-overlaps of links into shared-risk groups.

    A link may belong to several groups (a conduit and a line card,
    say). Links in no explicit group get an implicit singleton group
    named after the link (prefixed ``link:``), so every link remains
    individually failable.
    """

    SINGLETON_PREFIX = "link:"

    def __init__(
        self, network: MplsNetwork, groups: Mapping[str, Iterable[str]]
    ) -> None:
        self.network = network
        topology = network.topology
        self._groups: Dict[str, FrozenSet[Link]] = {}
        self._of_link: Dict[str, Set[str]] = {}
        for name, link_names in groups.items():
            if name.startswith(self.SINGLETON_PREFIX):
                raise ModelError(
                    f"group name {name!r} collides with the singleton namespace"
                )
            members = frozenset(topology.link(link_name) for link_name in link_names)
            if not members:
                raise ModelError(f"shared-risk group {name!r} is empty")
            self._groups[name] = members
            for link in members:
                self._of_link.setdefault(link.name, set()).add(name)

    # ------------------------------------------------------------------
    def group_names(self) -> Tuple[str, ...]:
        """The explicitly defined group names."""
        return tuple(self._groups)

    def links_of(self, group: str) -> FrozenSet[Link]:
        """All links failed by one failure event of ``group``."""
        if group.startswith(self.SINGLETON_PREFIX):
            return frozenset(
                {self.network.topology.link(group[len(self.SINGLETON_PREFIX) :])}
            )
        members = self._groups.get(group)
        if members is None:
            raise ModelError(f"unknown shared-risk group {group!r}")
        return members

    def groups_of(self, link: Link) -> FrozenSet[str]:
        """Every failure event that would take this link down."""
        explicit = self._of_link.get(link.name)
        if explicit:
            return frozenset(explicit)
        return frozenset({self.SINGLETON_PREFIX + link.name})

    def links_of_groups(self, groups: Iterable[str]) -> FrozenSet[Link]:
        """The union of links failed by a set of failure events."""
        failed: Set[Link] = set()
        for group in groups:
            failed |= self.links_of(group)
        return frozenset(failed)

    def max_group_size(self) -> int:
        """Largest number of links a single failure event can take down."""
        if not self._groups:
            return 1
        return max(len(members) for members in self._groups.values())

    def __len__(self) -> int:
        return len(self._groups)


def degrade_network(
    network: MplsNetwork, failed: AbstractSet[Link], name: Optional[str] = None
) -> MplsNetwork:
    """Partially evaluate a network under a *fixed* failure set.

    Returns a new network in which the failed links are physically
    removed and every routing entry is resolved to the highest-priority
    group that is active under ``failed`` (Definition 2.4's 𝓐 operator,
    baked in). Verifying a query with ``k = 0`` on the degraded network
    answers exactly "given that these links have failed, does a matching
    trace exist?" — the deterministic what-if question operators ask
    once an event has actually happened.

    Link and interface names are preserved, so queries resolve
    identically (patterns naming a removed link simply match nothing).
    """
    from repro.model.builder import NetworkBuilder

    failed_names = {link.name for link in failed}
    builder = NetworkBuilder(
        name if name is not None else f"{network.name}@degraded"
    )
    for router in network.topology.routers:
        coords = router.coordinates
        builder.router(
            router.name,
            coords.latitude if coords else None,
            coords.longitude if coords else None,
        )
    for link in network.topology.links:
        if link.name in failed_names:
            continue
        builder.link(
            link.name,
            link.source.name,
            link.target.name,
            source_interface=link.source_interface,
            target_interface=link.target_interface,
            weight=link.weight,
            failure_probability=link.failure_probability,
        )
    for label in network.labels:
        builder.label(label)
    failed_set = frozenset(failed)
    for in_link, label, groups in network.routing.items():
        if in_link.name in failed_names:
            continue
        for entry in groups.active_entries(failed_set):
            builder.rule(
                in_link.name,
                label,
                entry.out_link.name,
                entry.operations,
                priority=1,
            )
    return builder.build()


def _cover_alternatives(
    srlg: SharedRiskGroups, required: FrozenSet[Link], used: FrozenSet[Link]
) -> Optional[List[FrozenSet[str]]]:
    """Group-set alternatives covering a per-step link requirement.

    Each returned alternative is a set of groups whose union contains
    ``required`` and touches no used link. Returns None when no such
    cover exists. Exact search — requirement sets are tiny in practice
    (the links of the higher-priority TE groups of one rule).
    """
    per_link: List[List[str]] = []
    for link in sorted(required, key=lambda l: l.name):
        candidates = [
            group
            for group in sorted(srlg.groups_of(link))
            if not (srlg.links_of(group) & used)
        ]
        if not candidates:
            return None
        per_link.append(candidates)

    alternatives: Set[FrozenSet[str]] = set()

    def search(index: int, chosen: FrozenSet[str]) -> None:
        if index == len(per_link):
            alternatives.add(chosen)
            return
        for group in per_link[index]:
            search(index + 1, chosen | {group})

    search(0, frozenset())
    # Drop dominated alternatives (proper supersets of another).
    pruned: List[FrozenSet[str]] = []
    for alternative in sorted(alternatives, key=len):
        if not any(small <= alternative for small in pruned):
            pruned.append(alternative)
    return pruned


def minimal_failure_groups(
    network: MplsNetwork,
    trace: Trace,
    srlg: SharedRiskGroups,
    max_groups: int,
) -> Optional[FrozenSet[str]]:
    """Smallest set of failure events (≤ max_groups) enabling a trace.

    Like :func:`repro.model.trace.minimal_failure_set`, but failures
    come in groups: choosing a group fails all of its links, so no
    chosen group may contain a link the trace traverses. Returns None
    when no such set of events exists.
    """
    used = frozenset(trace.links)
    per_step: List[List[FrozenSet[str]]] = []
    for current, following in zip(trace.steps, trace.steps[1:]):
        requirement_sets = step_requirement_sets(network, current, following)
        step_alternatives: List[FrozenSet[str]] = []
        for required in requirement_sets:
            if required & used:
                continue
            covers = _cover_alternatives(srlg, frozenset(required), used)
            if covers:
                step_alternatives.extend(covers)
            elif not required:
                step_alternatives.append(frozenset())
        if not step_alternatives:
            return None
        pruned: List[FrozenSet[str]] = []
        for alternative in sorted(set(step_alternatives), key=len):
            if not any(small <= alternative for small in pruned):
                pruned.append(alternative)
        per_step.append(pruned)

    best: Optional[FrozenSet[str]] = None
    seen: Set[Tuple[int, FrozenSet[str]]] = set()

    def search(index: int, accumulated: FrozenSet[str]) -> None:
        nonlocal best
        if len(accumulated) > max_groups:
            return
        if best is not None and len(accumulated) >= len(best):
            return
        if index == len(per_step):
            best = accumulated
            return
        key = (index, accumulated)
        if key in seen:
            return
        seen.add(key)
        for alternative in per_step[index]:
            search(index + 1, accumulated | alternative)

    search(0, frozenset())
    return best
