"""Observability: tracing spans, solver counters, and metric sinks.

The paper's headline claims are *quantitative* — Table 1 and Figure 4
compare where verification time goes across backends — so the
reproduction instruments every layer with this zero-dependency
subsystem: hierarchical timed spans, named counters/gauges, and sinks
that render them as a phase table (``aalwines verify --profile``),
Prometheus text (``GET /metrics``), or a JSON trace file.

Usage — module-level functions act on one process-wide registry::

    from repro import obs

    obs.enable()
    with obs.span("verify", engine="dual"):
        with obs.span("compile.over"):
            ...
        obs.add("pda.saturation_iterations", result.iterations)
    print(obs.summary())

**The switch is off by default** and instrumentation is strictly
observational: with it off, call sites pay one attribute read; with it
on, verdicts, traces and every other engine output are identical —
enforced by the regression tests in ``tests/obs/``.

Cross-process: farm workers measure their counter/span deltas per work
chunk and ship them back with the results; the parent folds them in
with :func:`merge` (see :mod:`repro.farm.pool`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.obs.core import (
    HISTOGRAM_BUCKETS,
    NULL_SPAN,
    MetricRegistry,
    NullSpan,
    Span,
    SpanRecord,
    diff_counters,
    diff_snapshots,
)
from repro.obs.sinks import (
    PROMETHEUS_CONTENT_TYPE,
    json_trace_document,
    prometheus_text,
    text_summary,
    write_json_trace,
)

__all__ = [
    "MetricRegistry",
    "NullSpan",
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "PROMETHEUS_CONTENT_TYPE",
    "add",
    "counter",
    "counters",
    "diff_counters",
    "diff_snapshots",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "gauges",
    "HISTOGRAM_BUCKETS",
    "histograms",
    "json_trace_document",
    "merge",
    "metrics_text",
    "observe",
    "prometheus_text",
    "recording",
    "registry",
    "reset",
    "snapshot",
    "span",
    "summary",
    "text_summary",
    "write_json_trace",
    "write_trace",
]

#: The process-wide registry every instrumented layer reports to.
_REGISTRY = MetricRegistry()


def registry() -> MetricRegistry:
    """The process-wide :class:`MetricRegistry`."""
    return _REGISTRY


def enabled() -> bool:
    """Is observation currently on?"""
    return _REGISTRY.enabled


def enable() -> None:
    """Turn observation on (it is off by default)."""
    _REGISTRY.enabled = True


def disable() -> None:
    """Turn observation off; recorded metrics are kept."""
    _REGISTRY.enabled = False


def span(name: str, **attributes: Any):
    """Open a timed region on the global registry (no-op while off)."""
    return _REGISTRY.span(name, **attributes)


def add(name: str, value: int = 1) -> None:
    """Increment a global counter (no-op while off)."""
    _REGISTRY.add(name, value)


def gauge(name: str, value: float) -> None:
    """Record a global gauge level (no-op while off)."""
    _REGISTRY.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record one latency sample into a global histogram (no-op while off)."""
    _REGISTRY.observe(name, value)


def histograms() -> Dict[str, Any]:
    """Per-name views of every global latency histogram."""
    return _REGISTRY.histograms()


def counter(name: str) -> int:
    """One global counter's current value."""
    return _REGISTRY.counter(name)


def counters() -> Dict[str, int]:
    """A copy of every global counter."""
    return _REGISTRY.counters()


def gauges() -> Dict[str, float]:
    """A copy of every global gauge."""
    return _REGISTRY.gauges()


def snapshot() -> Dict[str, Any]:
    """A mergeable snapshot of the global registry."""
    return _REGISTRY.snapshot()


def merge(delta: Mapping[str, Any]) -> None:
    """Fold a worker's snapshot delta into the global registry."""
    _REGISTRY.merge(delta)


def reset() -> None:
    """Drop every global metric and span (the switch is untouched)."""
    _REGISTRY.reset()


def summary(title: str = "phase profile") -> str:
    """The global registry rendered as the --profile phase table."""
    return text_summary(_REGISTRY, title=title)


def metrics_text() -> str:
    """The global registry in Prometheus text exposition format."""
    return prometheus_text(_REGISTRY)


def write_trace(path: str, metadata: Optional[Dict[str, Any]] = None) -> str:
    """Export the global registry's spans as a JSON trace file."""
    return write_json_trace(path, _REGISTRY, metadata)


@contextmanager
def recording(fresh: bool = True) -> Iterator[MetricRegistry]:
    """Observation enabled for a scope, restoring the switch afterwards.

    ``fresh=True`` (the default) resets the registry on entry so the
    scope observes only its own work — the idiom of ``--profile``, the
    benchmarks, and most tests.
    """
    previous = _REGISTRY.enabled
    if fresh:
        _REGISTRY.reset()
    _REGISTRY.enabled = True
    try:
        yield _REGISTRY
    finally:
        _REGISTRY.enabled = previous
