"""Core of the observability layer: the metric registry and spans.

A :class:`MetricRegistry` owns three kinds of instruments —

* **counters** — monotone named integers ("how many saturation
  iterations ran", "how many cache hits");
* **gauges** — last-written level samples ("BDD nodes allocated by the
  most recent symbolic run");
* **spans** — hierarchical timed regions opened with a context manager;
  each completed span is folded into per-path aggregates (count, total
  seconds) and, up to a bound, kept as an individual record for the
  JSON trace exporter.

Everything is guarded by the registry's ``enabled`` switch, which is
**off by default**: a disabled registry's :meth:`~MetricRegistry.span`
returns a shared no-op object and :meth:`~MetricRegistry.add` returns
before taking any lock, so instrumented code pays one attribute read
per call site. Instrumentation sites in the hot saturation loops
accumulate into local variables and report once per phase, so even the
enabled overhead stays bounded (see ``benchmarks/bench_obs_overhead``).

Thread-safety: counter/gauge/aggregate mutation happens under one lock;
the span stack tracking the current hierarchy is thread-local, so
concurrent server requests or farm threads nest their spans
independently. Process-safety is by *merge*: a worker process computes
the delta of its counters over a work item (:meth:`snapshot_counters` /
:func:`diff_counters`) and the parent folds it in with
:meth:`MetricRegistry.merge`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

__all__ = [
    "MetricRegistry",
    "NullSpan",
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "diff_counters",
]


@dataclass
class SpanRecord:
    """One completed span, kept for the JSON trace exporter."""

    #: Slash-joined hierarchy, e.g. ``"verify/solve.over/saturate"``.
    path: str
    #: The leaf name the span was opened with.
    name: str
    #: Registry-relative start time (``time.perf_counter`` seconds).
    start: float
    #: Wall-clock duration in seconds.
    elapsed: float
    #: Free-form key/value annotations attached at open or via ``set``.
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (used by the trace-file sink)."""
        document: Dict[str, Any] = {
            "path": self.path,
            "name": self.name,
            "start": round(self.start, 9),
            "elapsed": round(self.elapsed, 9),
        }
        if self.attributes:
            document["attributes"] = {
                key: value for key, value in sorted(self.attributes.items())
            }
        return document


class NullSpan:
    """The shared do-nothing span returned while observation is off."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False

    def set(self, **_attributes: Any) -> "NullSpan":
        """Discard the attributes; chainable like ``Span.set``."""
        return self


#: Singleton no-op span: entering/exiting it allocates nothing.
NULL_SPAN = NullSpan()


class Span:
    """A live timed region; use as a context manager.

    The span's path is determined at ``__enter__`` from the calling
    thread's current span stack, so nesting is purely dynamic — a
    ``saturate`` span opened inside ``verify/solve.over`` lands at
    ``verify/solve.over/saturate`` with no cooperation between layers.
    """

    __slots__ = ("_registry", "name", "path", "attributes", "_start")

    def __init__(
        self, registry: "MetricRegistry", name: str, attributes: Dict[str, Any]
    ) -> None:
        self._registry = registry
        self.name = name
        self.path = name
        self.attributes = attributes
        self._start = 0.0

    def set(self, **attributes: Any) -> "Span":
        """Attach/overwrite attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack()
        self.path = f"{stack[-1].path}/{self.name}" if stack else self.name
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> bool:
        elapsed = time.perf_counter() - self._start
        stack = self._registry._span_stack()
        # Tolerate exits out of order (a span kept across threads or a
        # generator suspension); drop this span from wherever it sits.
        if self in stack:
            stack.remove(self)
        self._registry._record_span(self, elapsed)
        return False


class MetricRegistry:
    """Named counters, gauges, and span aggregates behind one switch."""

    def __init__(self, max_span_records: int = 10_000) -> None:
        #: The global on/off switch — **off by default**. Reading it is
        #: the only cost instrumented code pays while observation is off.
        self.enabled = False
        self.max_span_records = max_span_records
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._span_seconds: Dict[str, float] = {}
        self._span_counts: Dict[str, int] = {}
        self._span_records: List[SpanRecord] = []
        self._dropped_spans = 0

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any):
        """A context-managed timed region (no-op while disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attributes)

    def add(self, name: str, value: int = 1) -> None:
        """Increment counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the current level of gauge ``name`` (no-op while off)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    # ------------------------------------------------------------------
    # span bookkeeping
    # ------------------------------------------------------------------
    def _span_stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record_span(self, span: Span, elapsed: float) -> None:
        record = SpanRecord(
            path=span.path,
            name=span.name,
            start=span._start - self._epoch,
            elapsed=elapsed,
            attributes=span.attributes,
        )
        with self._lock:
            self._span_seconds[span.path] = (
                self._span_seconds.get(span.path, 0.0) + elapsed
            )
            self._span_counts[span.path] = self._span_counts.get(span.path, 0) + 1
            if len(self._span_records) < self.max_span_records:
                self._span_records.append(record)
            else:
                self._dropped_spans += 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counters)

    def counter(self, name: str) -> int:
        """One counter's current value (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauges(self) -> Dict[str, float]:
        """A point-in-time copy of every gauge."""
        with self._lock:
            return dict(self._gauges)

    def span_aggregates(self) -> Dict[str, Dict[str, float]]:
        """Per-path ``{"count": n, "seconds": s}`` aggregates."""
        with self._lock:
            return {
                path: {
                    "count": float(self._span_counts.get(path, 0)),
                    "seconds": self._span_seconds[path],
                }
                for path in sorted(self._span_seconds)
            }

    def span_records(self) -> List[SpanRecord]:
        """The retained individual span records, in completion order."""
        with self._lock:
            return list(self._span_records)

    @property
    def dropped_spans(self) -> int:
        """Spans discarded past :attr:`max_span_records` (aggregates
        still include them)."""
        with self._lock:
            return self._dropped_spans

    def snapshot_counters(self) -> Dict[str, int]:
        """Alias of :meth:`counters`, named for the worker delta idiom."""
        return self.counters()

    def snapshot(self) -> Dict[str, Any]:
        """Everything mergeable, as one JSON-ready document."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "span_seconds": dict(self._span_seconds),
                "span_counts": dict(self._span_counts),
            }

    # ------------------------------------------------------------------
    # lifecycle and cross-process merge
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every metric and span (the switch is left as-is)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._span_seconds.clear()
            self._span_counts.clear()
            self._span_records.clear()
            self._dropped_spans = 0
            self._epoch = time.perf_counter()

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot`-shaped delta from another process in.

        Counters, span seconds and span counts are summed; gauges take
        the maximum (they are level samples — "largest BDD ever built"
        is the meaningful cross-worker aggregate). Unknown sections are
        ignored so snapshots stay forward-compatible.
        """
        counters = delta.get("counters", delta if _is_flat(delta) else {})
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in delta.get("gauges", {}).items():
                current = self._gauges.get(name)
                self._gauges[name] = (
                    float(value) if current is None else max(current, float(value))
                )
            for path, value in delta.get("span_seconds", {}).items():
                self._span_seconds[path] = (
                    self._span_seconds.get(path, 0.0) + float(value)
                )
            for path, value in delta.get("span_counts", {}).items():
                self._span_counts[path] = self._span_counts.get(path, 0) + int(value)


def _is_flat(delta: Mapping[str, Any]) -> bool:
    """True when ``delta`` is a bare counter mapping (name → int)."""
    return all(isinstance(value, int) for value in delta.values())


def diff_counters(
    after: Mapping[str, int], before: Mapping[str, int]
) -> Dict[str, int]:
    """The counter increments between two snapshots (``after - before``)."""
    delta: Dict[str, int] = {}
    for name, value in after.items():
        change = value - before.get(name, 0)
        if change:
            delta[name] = change
    return delta


def diff_snapshots(
    after: Mapping[str, Any], before: Mapping[str, Any]
) -> Dict[str, Any]:
    """The mergeable delta between two :meth:`MetricRegistry.snapshot`
    documents — what a worker sends back to its parent."""
    delta: Dict[str, Any] = {
        "counters": diff_counters(
            after.get("counters", {}), before.get("counters", {})
        ),
        "gauges": dict(after.get("gauges", {})),
        "span_counts": diff_counters(
            after.get("span_counts", {}), before.get("span_counts", {})
        ),
        "span_seconds": {},
    }
    before_seconds = before.get("span_seconds", {})
    for path, value in after.get("span_seconds", {}).items():
        change = value - before_seconds.get(path, 0.0)
        if change > 0.0:
            delta["span_seconds"][path] = change
    return delta
