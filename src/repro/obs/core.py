"""Core of the observability layer: the metric registry and spans.

A :class:`MetricRegistry` owns three kinds of instruments —

* **counters** — monotone named integers ("how many saturation
  iterations ran", "how many cache hits");
* **gauges** — last-written level samples ("BDD nodes allocated by the
  most recent symbolic run");
* **spans** — hierarchical timed regions opened with a context manager;
  each completed span is folded into per-path aggregates (count, total
  seconds) and, up to a bound, kept as an individual record for the
  JSON trace exporter.

Everything is guarded by the registry's ``enabled`` switch, which is
**off by default**: a disabled registry's :meth:`~MetricRegistry.span`
returns a shared no-op object and :meth:`~MetricRegistry.add` returns
before taking any lock, so instrumented code pays one attribute read
per call site. Instrumentation sites in the hot saturation loops
accumulate into local variables and report once per phase, so even the
enabled overhead stays bounded (see ``benchmarks/bench_obs_overhead``).

Thread-safety: counter/gauge/aggregate mutation happens under one lock;
the span stack tracking the current hierarchy is thread-local, so
concurrent server requests or farm threads nest their spans
independently. Process-safety is by *merge*: a worker process computes
the delta of its counters over a work item (:meth:`snapshot_counters` /
:func:`diff_counters`) and the parent folds it in with
:meth:`MetricRegistry.merge`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

__all__ = [
    "HISTOGRAM_BUCKETS",
    "MetricRegistry",
    "NullSpan",
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "diff_counters",
]

#: Upper bounds (seconds) of the fixed latency-histogram buckets; one
#: implicit +Inf bucket follows. Log-spaced to cover sub-millisecond
#: cache hits through multi-second sweeps, Prometheus-classic style.
HISTOGRAM_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


@dataclass
class SpanRecord:
    """One completed span, kept for the JSON trace exporter."""

    #: Slash-joined hierarchy, e.g. ``"verify/solve.over/saturate"``.
    path: str
    #: The leaf name the span was opened with.
    name: str
    #: Registry-relative start time (``time.perf_counter`` seconds).
    start: float
    #: Wall-clock duration in seconds.
    elapsed: float
    #: Free-form key/value annotations attached at open or via ``set``.
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (used by the trace-file sink)."""
        document: Dict[str, Any] = {
            "path": self.path,
            "name": self.name,
            "start": round(self.start, 9),
            "elapsed": round(self.elapsed, 9),
        }
        if self.attributes:
            document["attributes"] = {
                key: value for key, value in sorted(self.attributes.items())
            }
        return document


class NullSpan:
    """The shared do-nothing span returned while observation is off."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False

    def set(self, **_attributes: Any) -> "NullSpan":
        """Discard the attributes; chainable like ``Span.set``."""
        return self


#: Singleton no-op span: entering/exiting it allocates nothing.
NULL_SPAN = NullSpan()


class Span:
    """A live timed region; use as a context manager.

    The span's path is determined at ``__enter__`` from the calling
    thread's current span stack, so nesting is purely dynamic — a
    ``saturate`` span opened inside ``verify/solve.over`` lands at
    ``verify/solve.over/saturate`` with no cooperation between layers.
    """

    __slots__ = ("_registry", "name", "path", "attributes", "_start")

    def __init__(
        self, registry: "MetricRegistry", name: str, attributes: Dict[str, Any]
    ) -> None:
        self._registry = registry
        self.name = name
        self.path = name
        self.attributes = attributes
        self._start = 0.0

    def set(self, **attributes: Any) -> "Span":
        """Attach/overwrite attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack()
        self.path = f"{stack[-1].path}/{self.name}" if stack else self.name
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> bool:
        elapsed = time.perf_counter() - self._start
        stack = self._registry._span_stack()
        # Tolerate exits out of order (a span kept across threads or a
        # generator suspension); drop this span from wherever it sits.
        if self in stack:
            stack.remove(self)
        self._registry._record_span(self, elapsed)
        return False


class MetricRegistry:
    """Named counters, gauges, and span aggregates behind one switch."""

    def __init__(self, max_span_records: int = 10_000) -> None:
        #: The global on/off switch — **off by default**. Reading it is
        #: the only cost instrumented code pays while observation is off.
        self.enabled = False
        self.max_span_records = max_span_records
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._span_seconds: Dict[str, float] = {}
        self._span_counts: Dict[str, int] = {}
        self._span_records: List[SpanRecord] = []
        self._dropped_spans = 0
        #: name → per-bucket counts (len(HISTOGRAM_BUCKETS) + 1, the
        #: last slot being +Inf) plus a running sum of observed values.
        self._hist_counts: Dict[str, List[int]] = {}
        self._hist_sums: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any):
        """A context-managed timed region (no-op while disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attributes)

    def add(self, name: str, value: int = 1) -> None:
        """Increment counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the current level of gauge ``name`` (no-op while off)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name`` (no-op while off).

        Values are latencies in seconds; buckets are the fixed
        :data:`HISTOGRAM_BUCKETS` (log-spaced, Prometheus-classic), so
        histograms from different processes merge by plain addition.
        """
        if not self.enabled:
            return
        index = len(HISTOGRAM_BUCKETS)
        for i, bound in enumerate(HISTOGRAM_BUCKETS):
            if value <= bound:
                index = i
                break
        with self._lock:
            counts = self._hist_counts.get(name)
            if counts is None:
                counts = [0] * (len(HISTOGRAM_BUCKETS) + 1)
                self._hist_counts[name] = counts
            counts[index] += 1
            self._hist_sums[name] = self._hist_sums.get(name, 0.0) + value

    # ------------------------------------------------------------------
    # span bookkeeping
    # ------------------------------------------------------------------
    def _span_stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record_span(self, span: Span, elapsed: float) -> None:
        record = SpanRecord(
            path=span.path,
            name=span.name,
            start=span._start - self._epoch,
            elapsed=elapsed,
            attributes=span.attributes,
        )
        with self._lock:
            self._span_seconds[span.path] = (
                self._span_seconds.get(span.path, 0.0) + elapsed
            )
            self._span_counts[span.path] = self._span_counts.get(span.path, 0) + 1
            if len(self._span_records) < self.max_span_records:
                self._span_records.append(record)
            else:
                self._dropped_spans += 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counters)

    def counter(self, name: str) -> int:
        """One counter's current value (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauges(self) -> Dict[str, float]:
        """A point-in-time copy of every gauge."""
        with self._lock:
            return dict(self._gauges)

    def histograms(self) -> Dict[str, Dict[str, Any]]:
        """Per-name ``{"buckets": [...], "sum": s, "count": n,
        "quantiles": {"p50": ..., "p99": ...}}`` histogram views.

        ``buckets`` lists *cumulative* counts aligned with
        :data:`HISTOGRAM_BUCKETS` plus +Inf; quantiles are estimated as
        the upper bound of the bucket the quantile falls in (the usual
        Prometheus-side estimate, conservative by construction).
        """
        with self._lock:
            counts = {name: list(c) for name, c in self._hist_counts.items()}
            sums = dict(self._hist_sums)
        views: Dict[str, Dict[str, Any]] = {}
        for name in sorted(counts):
            raw = counts[name]
            total = sum(raw)
            cumulative: List[int] = []
            running = 0
            for value in raw:
                running += value
                cumulative.append(running)
            views[name] = {
                "buckets": cumulative,
                "sum": sums.get(name, 0.0),
                "count": total,
                "quantiles": {
                    "p50": _bucket_quantile(raw, 0.50),
                    "p99": _bucket_quantile(raw, 0.99),
                },
            }
        return views

    def span_aggregates(self) -> Dict[str, Dict[str, float]]:
        """Per-path ``{"count": n, "seconds": s}`` aggregates."""
        with self._lock:
            return {
                path: {
                    "count": float(self._span_counts.get(path, 0)),
                    "seconds": self._span_seconds[path],
                }
                for path in sorted(self._span_seconds)
            }

    def span_records(self) -> List[SpanRecord]:
        """The retained individual span records, in completion order."""
        with self._lock:
            return list(self._span_records)

    @property
    def dropped_spans(self) -> int:
        """Spans discarded past :attr:`max_span_records` (aggregates
        still include them)."""
        with self._lock:
            return self._dropped_spans

    def snapshot_counters(self) -> Dict[str, int]:
        """Alias of :meth:`counters`, named for the worker delta idiom."""
        return self.counters()

    def snapshot(self) -> Dict[str, Any]:
        """Everything mergeable, as one JSON-ready document."""
        with self._lock:
            document: Dict[str, Any] = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "span_seconds": dict(self._span_seconds),
                "span_counts": dict(self._span_counts),
            }
            # Histogram blocks only when present: keeps the snapshot
            # shape (and worker deltas) exactly as before for the many
            # processes that never observe a latency sample.
            if self._hist_counts:
                document["hist_counts"] = {
                    name: list(c) for name, c in self._hist_counts.items()
                }
                document["hist_sums"] = dict(self._hist_sums)
            return document

    # ------------------------------------------------------------------
    # lifecycle and cross-process merge
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every metric and span (the switch is left as-is)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._span_seconds.clear()
            self._span_counts.clear()
            self._span_records.clear()
            self._dropped_spans = 0
            self._hist_counts.clear()
            self._hist_sums.clear()
            self._epoch = time.perf_counter()

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot`-shaped delta from another process in.

        Counters, span seconds and span counts are summed; gauges take
        the maximum (they are level samples — "largest BDD ever built"
        is the meaningful cross-worker aggregate). Unknown sections are
        ignored so snapshots stay forward-compatible.
        """
        counters = delta.get("counters", delta if _is_flat(delta) else {})
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in delta.get("gauges", {}).items():
                current = self._gauges.get(name)
                self._gauges[name] = (
                    float(value) if current is None else max(current, float(value))
                )
            for path, value in delta.get("span_seconds", {}).items():
                self._span_seconds[path] = (
                    self._span_seconds.get(path, 0.0) + float(value)
                )
            for path, value in delta.get("span_counts", {}).items():
                self._span_counts[path] = self._span_counts.get(path, 0) + int(value)
            for name, buckets in delta.get("hist_counts", {}).items():
                counts = self._hist_counts.get(name)
                if counts is None:
                    counts = [0] * (len(HISTOGRAM_BUCKETS) + 1)
                    self._hist_counts[name] = counts
                for index, value in enumerate(buckets[: len(counts)]):
                    counts[index] += int(value)
            for name, value in delta.get("hist_sums", {}).items():
                self._hist_sums[name] = self._hist_sums.get(name, 0.0) + float(value)


def _bucket_quantile(raw_counts: List[int], quantile: float) -> float:
    """Estimate a quantile from per-bucket counts (upper-bound rule).

    Returns the upper bound of the bucket the quantile lands in; samples
    in the +Inf bucket report the largest finite bound (there is no
    tighter claim to make). 0.0 for an empty histogram.
    """
    total = sum(raw_counts)
    if total == 0:
        return 0.0
    rank = quantile * total
    running = 0
    for index, count in enumerate(raw_counts):
        running += count
        if running >= rank:
            if index < len(HISTOGRAM_BUCKETS):
                return HISTOGRAM_BUCKETS[index]
            return HISTOGRAM_BUCKETS[-1]
    return HISTOGRAM_BUCKETS[-1]


def _is_flat(delta: Mapping[str, Any]) -> bool:
    """True when ``delta`` is a bare counter mapping (name → int)."""
    return all(isinstance(value, int) for value in delta.values())


def diff_counters(
    after: Mapping[str, int], before: Mapping[str, int]
) -> Dict[str, int]:
    """The counter increments between two snapshots (``after - before``)."""
    delta: Dict[str, int] = {}
    for name, value in after.items():
        change = value - before.get(name, 0)
        if change:
            delta[name] = change
    return delta


def diff_snapshots(
    after: Mapping[str, Any], before: Mapping[str, Any]
) -> Dict[str, Any]:
    """The mergeable delta between two :meth:`MetricRegistry.snapshot`
    documents — what a worker sends back to its parent."""
    delta: Dict[str, Any] = {
        "counters": diff_counters(
            after.get("counters", {}), before.get("counters", {})
        ),
        "gauges": dict(after.get("gauges", {})),
        "span_counts": diff_counters(
            after.get("span_counts", {}), before.get("span_counts", {})
        ),
        "span_seconds": {},
    }
    before_seconds = before.get("span_seconds", {})
    for path, value in after.get("span_seconds", {}).items():
        change = value - before_seconds.get(path, 0.0)
        if change > 0.0:
            delta["span_seconds"][path] = change
    hist_counts: Dict[str, List[int]] = {}
    before_hists = before.get("hist_counts", {})
    for name, buckets in after.get("hist_counts", {}).items():
        previous = before_hists.get(name, [0] * len(buckets))
        changed = [
            int(value) - int(previous[i]) if i < len(previous) else int(value)
            for i, value in enumerate(buckets)
        ]
        if any(changed):
            hist_counts[name] = changed
    if hist_counts:
        delta["hist_counts"] = hist_counts
        before_sums = before.get("hist_sums", {})
        delta["hist_sums"] = {
            name: after.get("hist_sums", {}).get(name, 0.0)
            - before_sums.get(name, 0.0)
            for name in hist_counts
        }
    return delta
