"""Sinks: render a :class:`~repro.obs.core.MetricRegistry` for humans,
Prometheus scrapers, and trace viewers.

Three output shapes:

* :func:`text_summary` — the ``aalwines verify --profile`` phase table:
  one row per span path (indented by hierarchy) with call count, total
  seconds and share of the root span, followed by the non-zero counters;
* :func:`prometheus_text` — Prometheus text exposition (version 0.0.4):
  counters as ``aalwines_<name>_total``, gauges as ``aalwines_<name>``,
  span aggregates as ``aalwines_span_seconds_total{span="..."}`` /
  ``aalwines_span_count_total{span="..."}``;
* :func:`json_trace_document` / :func:`write_json_trace` — the retained
  individual span records plus the counter/gauge state, as a JSON
  document (one file = one trace).

All three are pure readers: rendering a registry never mutates it, so
exporting metrics cannot perturb the measurements (see DESIGN.md's
observational-soundness guarantee).
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.core import MetricRegistry

_METRIC_NAME = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(name: str) -> str:
    """A legal Prometheus metric-name fragment."""
    return _METRIC_NAME.sub("_", name)


def _escape_label(value: str) -> str:
    """Escape a Prometheus label value (backslash, quote, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


# ----------------------------------------------------------------------
# human-readable summary (the --profile table)
# ----------------------------------------------------------------------


def text_summary(registry: "MetricRegistry", title: str = "phase profile") -> str:
    """The per-phase timing/counter table the CLI prints for --profile."""
    aggregates = registry.span_aggregates()
    counters = registry.counters()
    gauges = registry.gauges()
    lines: List[str] = [title, "-" * max(len(title), 58)]
    if aggregates:
        roots = {path.split("/", 1)[0] for path in aggregates}
        root_seconds = sum(
            aggregates[root]["seconds"] for root in roots if root in aggregates
        )
        lines.append(f"{'phase':<38} {'calls':>6} {'seconds':>10} {'share':>7}")
        for path in sorted(aggregates):
            depth = path.count("/")
            name = ("  " * depth) + path.rsplit("/", 1)[-1]
            seconds = aggregates[path]["seconds"]
            count = int(aggregates[path]["count"])
            share = 100.0 * seconds / root_seconds if root_seconds > 0 else 0.0
            lines.append(f"{name:<38} {count:>6} {seconds:>10.4f} {share:>6.1f}%")
    else:
        lines.append("(no spans recorded)")
    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    if gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            value = gauges[name]
            rendered = f"{value:g}"
            lines.append(f"  {name:<{width}}  {rendered}")
    histograms = registry.histograms()
    if histograms:
        lines.append("")
        lines.append("latency histograms:")
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            view = histograms[name]
            quantiles = view["quantiles"]
            lines.append(
                f"  {name:<{width}}  n={view['count']}"
                f"  p50≤{quantiles['p50']:g}s  p99≤{quantiles['p99']:g}s"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

#: Content type of the exposition format served at GET /metrics.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def prometheus_text(registry: "MetricRegistry", prefix: str = "aalwines") -> str:
    """Prometheus text exposition of every counter, gauge and span."""
    lines: List[str] = []
    for name, value in sorted(registry.counters().items()):
        metric = f"{prefix}_{_sanitize(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(registry.gauges().items()):
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value:g}")
    histograms = registry.histograms()
    for name in sorted(histograms):
        view = histograms[name]
        metric = f"{prefix}_{_sanitize(name)}_seconds"
        lines.append(f"# TYPE {metric} histogram")
        from repro.obs.core import HISTOGRAM_BUCKETS

        for bound, cumulative in zip(HISTOGRAM_BUCKETS, view["buckets"]):
            lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {view["count"]}')
        lines.append(f"{metric}_sum {view['sum']:.9f}")
        lines.append(f"{metric}_count {view['count']}")
    aggregates = registry.span_aggregates()
    if aggregates:
        seconds_metric = f"{prefix}_span_seconds_total"
        count_metric = f"{prefix}_span_count_total"
        lines.append(f"# TYPE {seconds_metric} counter")
        for path in sorted(aggregates):
            label = _escape_label(path)
            lines.append(
                f'{seconds_metric}{{span="{label}"}} '
                f"{aggregates[path]['seconds']:.9f}"
            )
        lines.append(f"# TYPE {count_metric} counter")
        for path in sorted(aggregates):
            label = _escape_label(path)
            lines.append(
                f'{count_metric}{{span="{label}"}} {int(aggregates[path]["count"])}'
            )
    enabled_metric = f"{prefix}_observability_enabled"
    lines.append(f"# TYPE {enabled_metric} gauge")
    lines.append(f"{enabled_metric} {1 if registry.enabled else 0}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSON trace export
# ----------------------------------------------------------------------


def json_trace_document(
    registry: "MetricRegistry", metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The registry's spans + metrics as one JSON-ready document."""
    document: Dict[str, Any] = {
        "format": "aalwines-trace/1",
        "spans": [record.to_dict() for record in registry.span_records()],
        "dropped_spans": registry.dropped_spans,
        "counters": registry.counters(),
        "gauges": registry.gauges(),
        "span_aggregates": registry.span_aggregates(),
    }
    if metadata:
        document["metadata"] = metadata
    return document


def write_json_trace(
    path: str,
    registry: "MetricRegistry",
    metadata: Optional[Dict[str, Any]] = None,
) -> str:
    """Write :func:`json_trace_document` to ``path``; returns ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(json_trace_document(registry, metadata), handle, indent=2)
        handle.write("\n")
    return path
