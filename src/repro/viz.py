"""Graphviz/DOT visualization of networks and witness traces.

The original tool ships a web GUI that draws the topology and animates
the witness trace with the operations performed at each router (§4,
Figure 2). This module provides the same information as Graphviz DOT
documents (renderable with ``dot -Tsvg``) plus a pure-text fallback, so
the library remains dependency-free:

* :func:`network_to_dot` — the topology, optionally with failed links
  marked;
* :func:`trace_to_dot` — the topology with a witness trace highlighted,
  hop numbers on the traversed links and per-router header/operation
  annotations (what the GUI shows when a query is satisfied);
* :func:`result_to_dot` — convenience wrapper over a
  :class:`~repro.verification.results.VerificationResult`;
* :func:`trace_timeline` — a textual hop-by-hop rendering with the
  label-stack evolution, for terminals.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, List, Optional

from repro.model.network import MplsNetwork
from repro.model.topology import Link, Topology
from repro.model.trace import Trace
from repro.verification.results import VerificationResult


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _router_attributes(name: str) -> str:
    if name.startswith("ext_"):
        return "shape=plaintext, fontcolor=gray40"
    return "shape=ellipse, style=filled, fillcolor=white"


def network_to_dot(
    topology: Topology,
    failed: AbstractSet[Link] = frozenset(),
    title: Optional[str] = None,
) -> str:
    """Render a topology as a DOT digraph.

    Failed links are drawn dashed red; duplex pairs are merged into one
    double-headed edge when neither direction is failed or highlighted.
    """
    return _render(topology, failed=failed, highlight={}, labels={}, title=title)


def trace_to_dot(
    network: MplsNetwork,
    trace: Trace,
    failed: AbstractSet[Link] = frozenset(),
    title: Optional[str] = None,
) -> str:
    """Render a witness trace over its network.

    Traversed links are bold blue and numbered by hop; each traversed
    link is annotated with the header carried on it, reproducing the
    GUI's per-hop inspection view.
    """
    highlight: Dict[str, List[int]] = {}
    labels: Dict[str, str] = {}
    for index, step in enumerate(trace, start=1):
        highlight.setdefault(step.link.name, []).append(index)
        labels[step.link.name] = str(step.header)
    return _render(
        network.topology,
        failed=failed,
        highlight=highlight,
        labels=labels,
        title=title,
    )


def result_to_dot(network: MplsNetwork, result: VerificationResult) -> str:
    """Visualize a verification result (trace + failure set when SAT)."""
    failed = result.failure_set if result.failure_set is not None else frozenset()
    title = f"{result.query}  —  {result.status.value}"
    if result.trace is None:
        return network_to_dot(network.topology, failed=failed, title=title)
    return trace_to_dot(network, result.trace, failed=failed, title=title)


def _render(
    topology: Topology,
    failed: AbstractSet[Link],
    highlight: Dict[str, List[int]],
    labels: Dict[str, str],
    title: Optional[str],
) -> str:
    failed_names = {link.name for link in failed}
    lines = ["digraph network {"]
    lines.append("  rankdir=LR;")
    lines.append('  node [fontname="Helvetica", fontsize=11];')
    lines.append('  edge [fontname="Helvetica", fontsize=9];')
    if title:
        lines.append(f"  label={_quote(title)};")
        lines.append("  labelloc=t;")
    for router in topology.routers:
        position = ""
        if router.coordinates is not None:
            position = (
                f', pos="{router.coordinates.longitude:.2f},'
                f'{router.coordinates.latitude:.2f}!"'
            )
        lines.append(
            f"  {_quote(router.name)} [{_router_attributes(router.name)}"
            f"{position}];"
        )
    rendered_pairs = set()
    for link in topology.links:
        attributes: List[str] = []
        hops = highlight.get(link.name)
        if hops is not None:
            hop_text = ",".join(str(h) for h in hops)
            label = f"{hop_text}: {labels.get(link.name, link.name)}"
            attributes.append("color=blue")
            attributes.append("penwidth=2.2")
            attributes.append(f"label={_quote(label)}")
        elif link.name in failed_names:
            attributes.append("color=red")
            attributes.append("style=dashed")
            attributes.append(f'label={_quote(link.name + " ✗")}')
        else:
            # Merge an unremarkable duplex pair into one dir=both edge.
            reverse = topology.reverse_link(link)
            if (
                reverse is not None
                and reverse.name not in failed_names
                and reverse.name not in highlight
            ):
                pair = frozenset({link.name, reverse.name})
                if pair in rendered_pairs:
                    continue
                rendered_pairs.add(pair)
                attributes.append("dir=both")
            attributes.append("color=gray55")
        lines.append(
            f"  {_quote(link.source.name)} -> {_quote(link.target.name)} "
            f"[{', '.join(attributes)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def trace_timeline(network: MplsNetwork, trace: Trace) -> str:
    """A textual hop-by-hop view with the label-stack evolution.

    Mirrors the GUI's trace inspector: per hop the link, the arriving
    header, and the operations the previous router applied (inferred by
    matching the routing table, like the GUI's tooltip does).
    """
    from repro.model.operations import format_operations, try_apply_operations

    lines = []
    for index, step in enumerate(trace):
        stack = " ".join(str(label) for label in step.header)
        prefix = f"hop {index + 1:>2}  {step.link.source.name} → {step.link.target.name}"
        operation_text = ""
        if index > 0:
            previous = trace[index - 1]
            groups = network.group_sequence(previous.link, previous.header.top)
            for _priority, entry in groups.all_entries():
                if entry.out_link != step.link:
                    continue
                if try_apply_operations(previous.header, entry.operations) == step.header:
                    operation_text = f"  [{format_operations(entry.operations)}]"
                    break
        lines.append(f"{prefix:<40} stack: {stack}{operation_text}")
    return "\n".join(lines)
