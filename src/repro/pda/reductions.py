"""Static reductions on pushdown systems (§4.2 of the paper).

Before saturation, AalWiNes runs "a series of reductions (based on
static analysis that overapproximates the possible top-of-stack symbols
in every given control state) … removing redundant rules in order to
decrease its size". This module implements that pass:

* a fixpoint *top-of-stack* analysis computing, per control state ``p``,
  the set ``S(p)`` of symbols that can be on top when control is at
  ``p``, plus an auxiliary set ``U(p)`` of symbols that can occur
  anywhere strictly below the top (needed to propagate across pops);
* pruning of rules whose stack precondition is unsatisfiable
  (``pop ∉ S(from_state)``);
* control-flow pruning of rules that cannot participate in any run from
  the initial head to the target control state.

All reductions are over-approximations: they never remove a rule that
some real run could fire, so reachability answers are unchanged — only
the saturation workload shrinks.

The fixpoint itself runs on the interned representation: ``S(p)`` and
``U(p)`` are per-state-id Python-int *bitmasks* over symbol ids, so the
transfer functions are a few bitwise ops instead of set algebra, and
rule pruning tests one bit per rule. :func:`analyze_top_of_stack`
resolves the masks back to symbolic sets at the boundary — its result
shape is unchanged from the set-based original (preserved verbatim in
:mod:`repro.pda.reference` as the differential baseline).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.pda.intern import SymbolTable
from repro.pda.system import PushdownSystem, Rule

State = Hashable
Symbol = Hashable


@dataclass
class TopOfStackAnalysis:
    """Result of the fixpoint analysis: per-state top and below sets."""

    tops: Dict[State, Set[Symbol]]
    below: Dict[State, Set[Symbol]]

    def may_fire(self, rule: Rule) -> bool:
        """Could this rule's head ever match during a run?"""
        return rule.pop in self.tops.get(rule.from_state, ())


def _analyze_masks(
    pds: PushdownSystem, initial_sid: int, initial_yid: int
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """The top-of-stack fixpoint over (state id → symbol-id bitmask).

    Mirrors the set-based transfer functions exactly; entries appear for
    the initial state and for every target of a potentially-firing rule
    (possibly with an empty mask), matching the original's dict shape.
    """
    tops: Dict[int, int] = {initial_sid: 1 << initial_yid}
    below: Dict[int, int] = {initial_sid: 0}
    head_index = pds.head_index()
    head_rows = len(head_index)
    worklist = deque([initial_sid])
    queued = {initial_sid}

    while worklist:
        sid = worklist.popleft()
        queued.discard(sid)
        row = head_index[sid] if sid < head_rows else None
        if row is None:
            continue
        # Snapshot: self-loop growth re-enqueues rather than extending
        # the current pass (same fixpoint, monotone transfer functions).
        state_tops = tops.get(sid, 0)
        state_below = below.setdefault(sid, 0)
        remaining = state_tops
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            rules = row.get(bit.bit_length() - 1)
            if rules is None:
                continue
            for rule in rules:
                tid = rule.to_id
                push_ids = rule.push_ids
                if len(push_ids) == 1:  # swap
                    new_tops = 1 << push_ids[0]
                    new_below = state_below
                elif push_ids:  # push
                    new_tops = 1 << push_ids[0]
                    new_below = state_below | (1 << push_ids[1])
                else:  # pop: anything below may surface
                    new_tops = state_below
                    new_below = state_below
                target_tops = tops.get(tid)
                if target_tops is None:
                    target_tops = tops[tid] = 0
                target_below = below.get(tid)
                if target_below is None:
                    target_below = below[tid] = 0
                changed = False
                if new_tops & ~target_tops:
                    tops[tid] = target_tops | new_tops
                    changed = True
                if new_below & ~target_below:
                    below[tid] = target_below | new_below
                    changed = True
                if changed and tid not in queued:
                    queued.add(tid)
                    worklist.append(tid)
    return tops, below


def _mask_symbols(table: SymbolTable, mask: int) -> Set[Symbol]:
    """Resolve a symbol-id bitmask back to the set of symbols."""
    symbols: Set[Symbol] = set()
    resolve = table.resolve
    while mask:
        bit = mask & -mask
        mask ^= bit
        symbols.add(resolve(bit.bit_length() - 1))
    return symbols


def analyze_top_of_stack(
    pds: PushdownSystem, initial_state: State, initial_symbol: Symbol
) -> TopOfStackAnalysis:
    """Overapproximate the possible top-of-stack symbols per control state.

    Starts from the single initial head ``⟨initial_state, initial_symbol⟩``
    and propagates through the rules; a pop rule exposes any symbol of the
    source state's below-set. The result is symbolic — the id-level
    fixpoint is internal.
    """
    initial_sid = pds.state_table.intern(initial_state)
    initial_yid = pds.symbol_table.intern(initial_symbol)
    tops_masks, below_masks = _analyze_masks(pds, initial_sid, initial_yid)
    resolve_state = pds.state_table.resolve
    symbol_table = pds.symbol_table
    tops = {
        resolve_state(sid): _mask_symbols(symbol_table, mask)
        for sid, mask in tops_masks.items()
    }
    below = {
        resolve_state(sid): _mask_symbols(symbol_table, mask)
        for sid, mask in below_masks.items()
    }
    return TopOfStackAnalysis(tops, below)


def _coreachable_ids(pds: PushdownSystem, target_sid: int) -> Set[int]:
    """Ids of control states from which ``target_sid`` is reachable in
    the rule graph (ignoring stack contents — an over-approximation)."""
    predecessors: Dict[int, List[int]] = {}
    for rule in pds.rules:
        predecessors.setdefault(rule.to_id, []).append(rule.from_id)
    seen = {target_sid}
    frontier = deque([target_sid])
    while frontier:
        sid = frontier.popleft()
        for predecessor in predecessors.get(sid, ()):
            if predecessor not in seen:
                seen.add(predecessor)
                frontier.append(predecessor)
    return seen


@dataclass
class ReductionReport:
    """Sizes before/after the reduction pass (for the ablation bench)."""

    rules_before: int
    rules_after: int
    states_before: int
    states_after: int

    @property
    def rules_removed(self) -> int:
        return self.rules_before - self.rules_after


def reduce_pushdown(
    pds: PushdownSystem,
    initial_state: State,
    initial_symbol: Symbol,
    target_state: Optional[State] = None,
    passes: int = 2,
) -> Tuple[PushdownSystem, ReductionReport]:
    """Apply the reduction pipeline and return the smaller system.

    ``passes`` bounds how often the (analysis → prune) round-trip runs;
    pruning can make the next analysis strictly more precise, and two
    rounds capture almost all of the benefit in practice. The reduced
    system shares the input's symbol tables, so downstream saturation
    sees the exact same ids.
    """
    initial_sid = pds.state_table.intern(initial_state)
    initial_yid = pds.symbol_table.intern(initial_symbol)
    target_sid = (
        pds.state_table.intern(target_state) if target_state is not None else None
    )
    current = pds
    states_before = pds.state_count()
    for _ in range(max(1, passes)):
        tops_masks, _ = _analyze_masks(current, initial_sid, initial_yid)
        kept = [
            rule
            for rule in current.rules
            if (tops_masks.get(rule.from_id, 0) >> rule.pop_id) & 1
        ]
        if target_sid is not None:
            filtered = (
                current if len(kept) == len(current) else current.replace_rules(kept)
            )
            coreachable = _coreachable_ids(filtered, target_sid)
            kept = [
                rule
                for rule in kept
                if rule.to_id in coreachable or rule.to_id == target_sid
            ]
        if len(kept) == len(current):
            break
        current = current.replace_rules(kept)
    report = ReductionReport(
        rules_before=pds.rule_count(),
        rules_after=current.rule_count(),
        states_before=states_before,
        states_after=current.state_count(),
    )
    return current, report
