"""Static reductions on pushdown systems (§4.2 of the paper).

Before saturation, AalWiNes runs "a series of reductions (based on
static analysis that overapproximates the possible top-of-stack symbols
in every given control state) … removing redundant rules in order to
decrease its size". This module implements that pass:

* a fixpoint *top-of-stack* analysis computing, per control state ``p``,
  the set ``S(p)`` of symbols that can be on top when control is at
  ``p``, plus an auxiliary set ``U(p)`` of symbols that can occur
  anywhere strictly below the top (needed to propagate across pops);
* pruning of rules whose stack precondition is unsatisfiable
  (``pop ∉ S(from_state)``);
* control-flow pruning of rules that cannot participate in any run from
  the initial head to the target control state.

All reductions are over-approximations: they never remove a rule that
some real run could fire, so reachability answers are unchanged — only
the saturation workload shrinks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set, Tuple

from repro.pda.system import PushdownSystem, Rule

State = Hashable
Symbol = Hashable


@dataclass
class TopOfStackAnalysis:
    """Result of the fixpoint analysis: per-state top and below sets."""

    tops: Dict[State, Set[Symbol]]
    below: Dict[State, Set[Symbol]]

    def may_fire(self, rule: Rule) -> bool:
        """Could this rule's head ever match during a run?"""
        return rule.pop in self.tops.get(rule.from_state, ())


def analyze_top_of_stack(
    pds: PushdownSystem, initial_state: State, initial_symbol: Symbol
) -> TopOfStackAnalysis:
    """Overapproximate the possible top-of-stack symbols per control state.

    Starts from the single initial head ``⟨initial_state, initial_symbol⟩``
    and propagates through the rules; a pop rule exposes any symbol of the
    source state's below-set.
    """
    tops: Dict[State, Set[Symbol]] = {initial_state: {initial_symbol}}
    below: Dict[State, Set[Symbol]] = {initial_state: set()}
    worklist = deque([initial_state])
    queued = {initial_state}

    def enqueue(state: State) -> None:
        if state not in queued:
            queued.add(state)
            worklist.append(state)

    while worklist:
        state = worklist.popleft()
        queued.discard(state)
        state_tops = tuple(tops.get(state, ()))
        state_below = below.setdefault(state, set())
        for symbol in state_tops:
            for rule in pds.rules_from(state, symbol):
                target = rule.to_state
                target_tops = tops.setdefault(target, set())
                target_below = below.setdefault(target, set())
                changed = False
                if rule.is_swap:
                    new_tops = {rule.push[0]}
                    new_below = state_below
                elif rule.is_push:
                    new_tops = {rule.push[0]}
                    new_below = state_below | {rule.push[1]}
                else:  # pop: anything below may surface
                    new_tops = set(state_below)
                    new_below = state_below
                if not new_tops <= target_tops:
                    target_tops.update(new_tops)
                    changed = True
                if not new_below <= target_below:
                    target_below.update(new_below)
                    changed = True
                if changed:
                    enqueue(target)
    return TopOfStackAnalysis(tops, below)


def _coreachable_states(pds: PushdownSystem, target_state: State) -> Set[State]:
    """Control states from which ``target_state`` is reachable in the
    rule graph (ignoring stack contents — an over-approximation)."""
    predecessors: Dict[State, Set[State]] = {}
    for rule in pds.rules:
        predecessors.setdefault(rule.to_state, set()).add(rule.from_state)
    seen = {target_state}
    frontier = deque([target_state])
    while frontier:
        state = frontier.popleft()
        for predecessor in predecessors.get(state, ()):
            if predecessor not in seen:
                seen.add(predecessor)
                frontier.append(predecessor)
    return seen


@dataclass
class ReductionReport:
    """Sizes before/after the reduction pass (for the ablation bench)."""

    rules_before: int
    rules_after: int
    states_before: int
    states_after: int

    @property
    def rules_removed(self) -> int:
        return self.rules_before - self.rules_after


def reduce_pushdown(
    pds: PushdownSystem,
    initial_state: State,
    initial_symbol: Symbol,
    target_state: Optional[State] = None,
    passes: int = 2,
) -> Tuple[PushdownSystem, ReductionReport]:
    """Apply the reduction pipeline and return the smaller system.

    ``passes`` bounds how often the (analysis → prune) round-trip runs;
    pruning can make the next analysis strictly more precise, and two
    rounds capture almost all of the benefit in practice.
    """
    current = pds
    states_before = len(pds.states)
    for _ in range(max(1, passes)):
        analysis = analyze_top_of_stack(current, initial_state, initial_symbol)
        kept = [rule for rule in current.rules if analysis.may_fire(rule)]
        if target_state is not None:
            filtered = current if len(kept) == len(current) else current.replace_rules(kept)
            coreachable = _coreachable_states(filtered, target_state)
            kept = [rule for rule in kept if rule.to_state in coreachable or
                    rule.to_state == target_state]
        if len(kept) == len(current):
            break
        current = current.replace_rules(kept)
    report = ReductionReport(
        rules_before=pds.rule_count(),
        rules_after=current.rule_count(),
        states_before=states_before,
        states_after=len(current.states),
    )
    return current, report
