"""The reference (tuple) PDA core: pre-interning saturation and reductions.

This module preserves the engine's original data representation — rule
indexes keyed by ``(state, symbol)`` tuples, automaton transitions keyed
by ``(source, symbol, target)`` tuples, reductions over symbolic sets —
exactly as it ran before the interned core landed. It exists for two
reasons:

* **differential oracle** — the fuzz and property suites solve every
  instance with both cores and assert bit-identical verdicts, weights
  and witness runs (``core="tuple"`` on
  :func:`repro.pda.solver.solve_reachability` selects this module);
* **benchmark baseline** — ``benchmarks/bench_interning.py`` measures
  the interned core's speedup against this implementation, which is
  what ``BENCH_interning.json`` records.

The only deliberate deviation from the historical code is determinism:
successor iteration goes through the automaton's insertion-ordered
structures instead of frozensets, so equal-weight tie-breaking matches
the interned core step for step — a prerequisite for the byte-identical
trace guarantee (hash-ordered iteration made traces vary across
processes; see DESIGN.md, "Interned core").

Both saturators here mirror their interned twins line for line: the
same relax order, the same worklist, the same witness shapes. Keep them
in lockstep when changing either.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import PdaError, VerificationTimeout
from repro.pda.automaton import EPSILON, Key, WeightedPAutomaton
from repro.pda.semiring import Semiring
from repro.pda.system import PushdownSystem, Rule

State = Hashable
Symbol = Hashable


def _result(automaton, iterations, early_terminated, method):
    """Build and record a SaturationResult (late import avoids a cycle)."""
    from repro.pda.poststar import SaturationResult, observed

    return observed(
        SaturationResult(automaton, iterations, early_terminated), method
    )


def _mid_state(to_state: State, symbol: Any) -> Tuple[str, State, Any]:
    from repro.pda.poststar import mid_state

    return mid_state(to_state, symbol)


# ----------------------------------------------------------------------
# saturation (tuple-keyed)
# ----------------------------------------------------------------------


def reference_poststar(
    pds: PushdownSystem,
    semiring: Semiring,
    initial_transitions: Sequence[Tuple[State, Any, State]],
    final_states: Iterable[State],
    target: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
):
    """Tuple-keyed post* — the pre-interning implementation."""
    control_states = pds.states
    automaton = WeightedPAutomaton(semiring, final_states)
    for source, symbol, target_state in initial_transitions:
        if target_state in control_states:
            raise PdaError(
                "initial automaton must not have transitions into control states"
            )
        if symbol is EPSILON:
            raise PdaError("initial automaton must be ε-free")
        automaton.relax((source, symbol, target_state), semiring.one, ("init",))

    final_set = automaton.final_states
    iterations = 0
    while True:
        popped = automaton.pop()
        if popped is None:
            return _result(automaton, iterations, False, "poststar")
        iterations += 1
        # Checked at iteration 1 and then every 512: an already-expired
        # deadline must fire even on instances that saturate in a few steps.
        if deadline is not None and iterations % 512 <= 1 and time.perf_counter() > deadline:
            raise VerificationTimeout("saturation exceeded its wall-clock deadline")
        if max_steps is not None and iterations > max_steps:
            raise PdaError(f"post* exceeded the step budget of {max_steps}")
        key, weight = popped
        source, symbol, target_state = key

        if symbol is EPSILON:
            # Combine the ε-transition with every edge leaving its target.
            for out_symbol, out_targets in (
                automaton.out_edges.get(target_state, {}).items()
            ):
                for out_target in out_targets:
                    partner: Key = (target_state, out_symbol, out_target)
                    combined = semiring.extend(weight, automaton.weights[partner])
                    automaton.relax(
                        (source, out_symbol, out_target),
                        combined,
                        ("eps", key, partner),
                    )
            continue

        if (
            target is not None
            and source == target[0]
            and symbol == target[1]
            and target_state in final_set
        ):
            return _result(automaton, iterations, True, "poststar")

        # Apply every rule whose head matches the popped transition.
        for rule in pds.rules_from(source, symbol):
            extended = semiring.extend(weight, rule.weight)
            if rule.is_swap:
                automaton.relax(
                    (rule.to_state, rule.push[0], target_state),
                    extended,
                    ("step", rule, key),
                )
            elif rule.is_pop:
                automaton.relax(
                    (rule.to_state, EPSILON, target_state),
                    extended,
                    ("step", rule, key),
                )
            else:  # push
                top, below = rule.push
                middle = _mid_state(rule.to_state, top)
                automaton.relax(
                    (rule.to_state, top, middle), semiring.one, ("push-head", rule)
                )
                automaton.relax(
                    (middle, below, target_state),
                    extended,
                    ("push-tail", rule, key),
                )

        # Combine with finalized-or-pending ε-transitions ending at `source`.
        for eps_source in automaton.eps_by_target.get(source, ()):
            eps_key: Key = (eps_source, EPSILON, source)
            combined = semiring.extend(automaton.weights[eps_key], weight)
            automaton.relax(
                (eps_source, symbol, target_state), combined, ("eps", eps_key, key)
            )


def reference_poststar_single(
    pds: PushdownSystem,
    semiring: Semiring,
    initial_state: State,
    initial_symbol: Any,
    target: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
):
    """post* from a single configuration, tuple-keyed."""
    final = ("__final__", initial_state)
    return reference_poststar(
        pds,
        semiring,
        initial_transitions=[(initial_state, initial_symbol, final)],
        final_states=[final],
        target=target,
        max_steps=max_steps,
        deadline=deadline,
    )


def reference_prestar(
    pds: PushdownSystem,
    semiring: Semiring,
    target_transitions: Sequence[Tuple[State, Any, State]],
    final_states: Iterable[State],
    target: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
):
    """Tuple-keyed pre* — the pre-interning implementation."""
    control_states = pds.states
    automaton = WeightedPAutomaton(semiring, final_states)
    for source, symbol, target_state in target_transitions:
        if target_state in control_states:
            raise PdaError(
                "target automaton must not have transitions into control states"
            )
        if symbol is EPSILON:
            raise PdaError("target automaton must be ε-free")
        automaton.relax((source, symbol, target_state), semiring.one, ("init",))

    # Rule indexes for the two saturation directions.
    swap_rules: Dict[Tuple[State, Any], List[Rule]] = {}
    push_rules_head: Dict[Tuple[State, Any], List[Rule]] = {}
    push_rules_below: Dict[Any, List[Rule]] = {}
    for rule in pds.rules:
        if rule.is_pop:
            # ⟨p, γ⟩ → ⟨p', ε⟩: (p, γ, p') holds unconditionally.
            automaton.relax(
                (rule.from_state, rule.pop, rule.to_state),
                rule.weight,
                ("rule", rule, ()),
            )
        elif rule.is_swap:
            swap_rules.setdefault((rule.to_state, rule.push[0]), []).append(rule)
        else:
            push_rules_head.setdefault((rule.to_state, rule.push[0]), []).append(rule)
            push_rules_below.setdefault(rule.push[1], []).append(rule)

    final_set = automaton.final_states
    iterations = 0
    while True:
        popped = automaton.pop()
        if popped is None:
            return _result(automaton, iterations, False, "prestar")
        iterations += 1
        # Checked at iteration 1 and then every 512: an already-expired
        # deadline must fire even on instances that saturate in a few steps.
        if deadline is not None and iterations % 512 <= 1 and time.perf_counter() > deadline:
            raise VerificationTimeout("saturation exceeded its wall-clock deadline")
        if max_steps is not None and iterations > max_steps:
            raise PdaError(f"pre* exceeded the step budget of {max_steps}")
        key, weight = popped
        source, symbol, target_state = key

        if (
            target is not None
            and source == target[0]
            and symbol == target[1]
            and target_state in final_set
        ):
            return _result(automaton, iterations, True, "prestar")

        # Swap rules ⟨p, γ⟩ → ⟨p', γ1⟩ with (p', γ1) = (source, symbol).
        for rule in swap_rules.get((source, symbol), ()):
            automaton.relax(
                (rule.from_state, rule.pop, target_state),
                semiring.extend(rule.weight, weight),
                ("rule", rule, (key,)),
            )

        # Push rules where the popped transition reads the *first* pushed
        # symbol: ⟨p, γ⟩ → ⟨source, symbol · γ2⟩; need (target_state, γ2, q2).
        for rule in push_rules_head.get((source, symbol), ()):
            below = rule.push[1]
            for q2 in automaton.iter_targets(target_state, below):
                partner: Key = (target_state, below, q2)
                automaton.relax(
                    (rule.from_state, rule.pop, q2),
                    semiring.extend(
                        rule.weight,
                        semiring.extend(weight, automaton.weights[partner]),
                    ),
                    ("rule", rule, (key, partner)),
                )

        # Push rules where the popped transition reads the *second* pushed
        # symbol: need an existing (p', γ1, source).
        for rule in push_rules_below.get(symbol, ()):
            head: Key = (rule.to_state, rule.push[0], source)
            head_weight = automaton.weights.get(head)
            if head_weight is None:
                continue
            automaton.relax(
                (rule.from_state, rule.pop, target_state),
                semiring.extend(rule.weight, semiring.extend(head_weight, weight)),
                ("rule", rule, (head, key)),
            )


def reference_prestar_single(
    pds: PushdownSystem,
    semiring: Semiring,
    target_state: State,
    target_symbol: Any,
    source: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
):
    """pre* of a single configuration, tuple-keyed."""
    final = ("__final__", target_state)
    return reference_prestar(
        pds,
        semiring,
        target_transitions=[(target_state, target_symbol, final)],
        final_states=[final],
        target=source,
        max_steps=max_steps,
        deadline=deadline,
    )


# ----------------------------------------------------------------------
# reductions (symbolic sets, fresh-system replace)
# ----------------------------------------------------------------------


@dataclass
class _SymbolicAnalysis:
    """Per-state top / below symbol sets (the pre-interning analysis)."""

    tops: Dict[State, Set[Symbol]]
    below: Dict[State, Set[Symbol]]

    def may_fire(self, rule: Rule) -> bool:
        return rule.pop in self.tops.get(rule.from_state, ())


def reference_analyze_top_of_stack(
    pds: PushdownSystem, initial_state: State, initial_symbol: Symbol
) -> _SymbolicAnalysis:
    """The set-based top-of-stack fixpoint, as it ran before interning."""
    tops: Dict[State, Set[Symbol]] = {initial_state: {initial_symbol}}
    below: Dict[State, Set[Symbol]] = {initial_state: set()}
    worklist = deque([initial_state])
    queued = {initial_state}

    def enqueue(state: State) -> None:
        if state not in queued:
            queued.add(state)
            worklist.append(state)

    while worklist:
        state = worklist.popleft()
        queued.discard(state)
        state_tops = tuple(tops.get(state, ()))
        state_below = below.setdefault(state, set())
        for symbol in state_tops:
            for rule in pds.rules_from(state, symbol):
                target = rule.to_state
                target_tops = tops.setdefault(target, set())
                target_below = below.setdefault(target, set())
                changed = False
                if rule.is_swap:
                    new_tops = {rule.push[0]}
                    new_below = state_below
                elif rule.is_push:
                    new_tops = {rule.push[0]}
                    new_below = state_below | {rule.push[1]}
                else:  # pop: anything below may surface
                    new_tops = set(state_below)
                    new_below = state_below
                if not new_tops <= target_tops:
                    target_tops.update(new_tops)
                    changed = True
                if not new_below <= target_below:
                    target_below.update(new_below)
                    changed = True
                if changed:
                    enqueue(target)
    return _SymbolicAnalysis(tops, below)


def _coreachable_states(pds: PushdownSystem, target_state: State) -> Set[State]:
    """Control states from which ``target_state`` is reachable in the
    rule graph (ignoring stack contents — an over-approximation)."""
    predecessors: Dict[State, Set[State]] = {}
    for rule in pds.rules:
        predecessors.setdefault(rule.to_state, set()).add(rule.from_state)
    seen = {target_state}
    frontier = deque([target_state])
    while frontier:
        state = frontier.popleft()
        for predecessor in predecessors.get(state, ()):
            if predecessor not in seen:
                seen.add(predecessor)
                frontier.append(predecessor)
    return seen


def _fresh_replace(rules: Iterable[Rule]) -> PushdownSystem:
    """Old-style replace: a brand-new system with its own tables,
    re-creating (and re-interning) every rule."""
    reduced = PushdownSystem()
    for rule in rules:
        reduced.add_rule(
            rule.from_state, rule.pop, rule.to_state, rule.push, rule.weight, rule.tag
        )
    return reduced


def reference_reduce_pushdown(
    pds: PushdownSystem,
    initial_state: State,
    initial_symbol: Symbol,
    target_state: Optional[State] = None,
    passes: int = 2,
):
    """The pre-interning reduction pipeline (symbolic sets throughout)."""
    from repro.pda.reductions import ReductionReport

    current = pds
    states_before = pds.state_count()
    for _ in range(max(1, passes)):
        analysis = reference_analyze_top_of_stack(current, initial_state, initial_symbol)
        kept = [rule for rule in current.rules if analysis.may_fire(rule)]
        if target_state is not None:
            filtered = current if len(kept) == len(current) else _fresh_replace(kept)
            coreachable = _coreachable_states(filtered, target_state)
            kept = [rule for rule in kept if rule.to_state in coreachable or
                    rule.to_state == target_state]
        if len(kept) == len(current):
            break
        current = _fresh_replace(kept)
    report = ReductionReport(
        rules_before=pds.rule_count(),
        rules_after=current.rule_count(),
        states_before=states_before,
        states_after=current.state_count(),
    )
    return current, report
