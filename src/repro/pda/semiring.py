"""Bounded idempotent semirings for weighted pushdown reachability.

The weighted PDA framework of Reps, Schwoon, Jha and Melski [33]
computes meet-over-all-paths values over a *bounded idempotent
semiring* ``(D, ⊕, ⊗, 0̄, 1̄)``. The saturation engines in this package
additionally exploit a total order compatible with ⊕ (``a ⊕ b = min(a,
b)``) to run Dijkstra-style, which is what gives the paper's "guided
search" for minimal witnesses.

Three instances cover the tool's needs:

* :class:`BooleanSemiring` — plain reachability (the unweighted Dual
  engine),
* :class:`MinPlusSemiring` — a single quantity (e.g. Failures),
* :class:`MinPlusVectorSemiring` — lexicographically ordered vectors of
  quantities (Problem 2's priority vectors).

Elements are plain Python values (bool / int-or-inf / tuple), not
wrapper objects — the saturation inner loop is the hot path.
"""

from __future__ import annotations

import math
from typing import Generic, Tuple, TypeVar, Union

W = TypeVar("W")

#: Numeric weights may be exact ints or the infinity sentinel.
Extended = Union[int, float]


class Semiring(Generic[W]):
    """Interface of a totally ordered bounded idempotent semiring.

    ``combine`` (⊕) must be min w.r.t. :meth:`less`; ``extend`` (⊗) must
    be monotone (``extend(a, b) ⊀ a`` for weights ⊒ one), which the
    Dijkstra-style saturation relies on.
    """

    #: ⊕-neutral / ⊗-annihilating element ("unreachable").
    zero: W
    #: ⊗-neutral element (the weight of the empty rule sequence).
    one: W

    def combine(self, a: W, b: W) -> W:
        """⊕ — the better (smaller) of two weights."""
        raise NotImplementedError

    def extend(self, a: W, b: W) -> W:
        """⊗ — sequential composition of weights."""
        raise NotImplementedError

    def less(self, a: W, b: W) -> bool:
        """Strictly-better-than; total on the weights in use."""
        raise NotImplementedError

    def is_zero(self, a: W) -> bool:
        """Is this the unreachable element?"""
        return a == self.zero


class BooleanSemiring(Semiring[bool]):
    """Reachability only: True = reachable (and True is *better*)."""

    zero = False
    one = True

    def combine(self, a: bool, b: bool) -> bool:
        """Logical or."""
        return a or b

    def extend(self, a: bool, b: bool) -> bool:
        """Logical and."""
        return a and b

    def less(self, a: bool, b: bool) -> bool:
        """True (reachable) is strictly better than False."""
        return a and not b


class MinPlusSemiring(Semiring[Extended]):
    """(ℕ ∪ {∞}, min, +, ∞, 0) — shortest-path weights."""

    zero = math.inf
    one = 0

    def combine(self, a: Extended, b: Extended) -> Extended:
        """Minimum."""
        return a if a <= b else b

    def extend(self, a: Extended, b: Extended) -> Extended:
        """Addition."""
        return a + b

    def less(self, a: Extended, b: Extended) -> bool:
        """Numeric strictly-less."""
        return a < b


class MinPlusVectorSemiring(Semiring[Tuple[Extended, ...]]):
    """Lexicographic min / componentwise + over fixed-arity vectors.

    This is the semiring of Problem 2's prioritized weight vectors: the
    first component is minimized first, ties broken by the second, etc.
    Componentwise addition is monotone for the lexicographic order on
    non-negative components, so Dijkstra-style search stays correct.

    Domain note: the semiring laws (distributivity in particular) hold
    on the domain actually used — *finite* vectors plus the single
    all-∞ zero element. Vectors mixing finite and infinite components
    are not valid weights: rule weights are always finite, ⊗ of finite
    vectors is finite, and ⊕ never manufactures mixed vectors, so the
    engines stay inside the valid domain by construction.
    """

    def __init__(self, arity: int) -> None:
        if arity < 1:
            raise ValueError("vector semiring needs arity >= 1")
        self.arity = arity
        self.zero = (math.inf,) * arity
        self.one = (0,) * arity

    def combine(
        self, a: Tuple[Extended, ...], b: Tuple[Extended, ...]
    ) -> Tuple[Extended, ...]:
        """Lexicographic minimum."""
        return a if a <= b else b

    def extend(
        self, a: Tuple[Extended, ...], b: Tuple[Extended, ...]
    ) -> Tuple[Extended, ...]:
        """Componentwise addition."""
        return tuple(x + y for x, y in zip(a, b))

    def less(self, a: Tuple[Extended, ...], b: Tuple[Extended, ...]) -> bool:
        """Lexicographic strictly-less."""
        return a < b


#: Shared stateless instances.
BOOLEAN = BooleanSemiring()
MIN_PLUS = MinPlusSemiring()


def vector_semiring(arity: int) -> MinPlusVectorSemiring:
    """A lexicographic min-plus semiring of the given arity."""
    return MinPlusVectorSemiring(arity)
