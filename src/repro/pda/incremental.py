"""Incremental delta-saturation: reuse a baseline fixpoint across variants.

A what-if sweep solves hundreds of pushdown systems that differ from a
baseline by a handful of rules (a failed link retracts its failover
entries and promotes others). Saturating each variant from scratch
re-derives the entire automaton; this module keeps the **baseline
saturated automaton** alive and, per variant, runs a
*delete-then-repropagate* repair:

1. **Diff.** Rule sets are compared *symbolically* — a rule's identity
   is ``(from_state, pop, to_state, push, weight, tag)`` — so the delta
   between two independently compiled systems is exactly the rules that
   changed, regardless of interning order. (The compiler's chain states
   are content-addressed for precisely this reason.) New rules are
   interned into the baseline's shared
   :class:`~repro.pda.intern.SymbolTable` arenas, so packed keys remain
   comparable across deltas.

   When the variant was compiled in the *same id space* as the baseline
   (a shared ``spec_table`` — see
   :class:`~repro.pda.system.PushdownSystem`), the diff instead runs on
   the per-rule dense spec-id streams as a flat integer bincount
   subtraction. That path never hashes a tuple and costs well under a
   millisecond for tens of thousands of rules — essential, because the
   diff is on every variant's critical path while the repair itself is
   usually near-free. Spec ids deliberately exclude the rule ``tag``:
   tags never influence saturation weights, so a variant that only
   re-tags a rule is (correctly) an empty delta; the automaton's
   internal witnesses may then cite a rule object whose tag differs
   from the variant's equivalent rule, which is sound because
   user-facing traces are always re-extracted by a scratch solve of the
   variant (see below).

2. **Delete.** Every automaton transition whose recorded best
   derivation (its witness) references a retracted rule — or,
   transitively, a deleted transition — is removed. This over-deletes:
   a transition may still be derivable another way. The closure is
   computed over reverse dependency indexes (rule → dependent
   transitions, transition → dependent transitions) maintained next to
   the witness map. Soundness of keeping everything else untouched is
   an induction over the witness DAG: a surviving transition's recorded
   derivation uses only surviving premises, whose weights are exact
   minimal by the hypothesis, so its own recorded weight is still
   realized; and no *better* derivation can have appeared, because
   deletion only removes derivations.

3. **Repropagate.** Deleted transitions are re-seeded by one-step
   backward derivation from surviving facts, added rules are applied to
   all matching surviving facts, and the ordinary Dijkstra-style
   saturation loop (the same body as :mod:`repro.pda.poststar` /
   :mod:`repro.pda.prestar`) runs until the worklist drains. Added
   rules may *improve* a previously finalized transition, so the repair
   relax re-opens finalized keys on strict improvement — heap order
   stays valid because extend is monotone.

The repaired automaton reaches the same unique least fixpoint as a
from-scratch saturation of the variant, which makes the full weight map
(:meth:`IncrementalSolver.digest`) a strong differential oracle:
applying deltas in any order, or retracting and re-adding a delta,
must produce byte-identical digests.

Witness *traces*, by contrast, are tie-break artifacts of relaxation
order and are **not** preserved by repair; callers that need the
scratch-identical trace (the verification engine) re-run the ordinary
interned solve on the variant for witness extraction only, using the
incremental weight as a cross-check (see
:mod:`repro.verification.incremental`).

The solver always saturates the baseline **fully** (no early
termination — a partially saturated automaton is not reusable) and runs
**without** the §4.2 reductions: reduction output depends globally on
the rule set, so reduced systems of two near-identical variants can
differ in many rules, destroying the small delta. The reductions'
purpose — skipping work that cannot matter — is subsumed here by only
re-running the fixpoint on dirtied transitions. Reductions provably
never change the saturated weight map (they only drop rules that can
never fire), so answers agree with the reduced scratch cores.
"""

from __future__ import annotations

import hashlib
import heapq
import time
import warnings
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

try:  # the fast integer diff wants numpy; everything else works without
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in the dev image
    _np = None

from repro import obs
from repro.errors import NumpyFallbackWarning, PdaError
from repro.pda.automaton import EPSILON, IntPAutomaton, _heap_key
from repro.pda.intern import EPSILON_ID, MASK, SHIFT, pack_key
from repro.pda.poststar import _MID, poststar
from repro.pda.prestar import prestar
from repro.pda.semiring import Semiring
from repro.pda.system import PushdownSystem, Rule

State = Hashable
Symbol = Hashable

#: Symbolic rule identity: (from_state, pop, to_state, push, weight, tag).
RuleSpec = Tuple[Any, Any, Any, Tuple[Any, ...], Any, Any]


def rule_spec(rule: Rule) -> RuleSpec:
    """The symbolic identity of a rule, independent of interning."""
    return (rule.from_state, rule.pop, rule.to_state, rule.push, rule.weight, rule.tag)


@dataclass
class DeltaReport:
    """Accounting for one :meth:`IncrementalSolver.apply_delta`."""

    rules_removed: int = 0
    rules_added: int = 0
    #: Transitions deleted by the dirty closure.
    invalidated: int = 0
    #: Successful relaxations during re-seeding and repair.
    recomputed: int = 0
    #: Finalized transitions re-opened by an improving relax.
    reopened: int = 0
    #: Worklist iterations of the repair loop.
    repair_iterations: int = 0
    #: Transitions carried over untouched from before the delta.
    reused: int = 0
    elapsed_seconds: float = 0.0

    @property
    def reuse_ratio(self) -> float:
        """Fraction of the pre-delta automaton that survived the delta."""
        total = self.reused + self.invalidated
        return self.reused / total if total else 1.0


@dataclass
class IncrementalStats:
    """Cumulative accounting across a solver's lifetime."""

    deltas_applied: int = 0
    invalidated: int = 0
    recomputed: int = 0
    reused: int = 0
    reports: List[DeltaReport] = field(default_factory=list)


class IncrementalSolver:
    """One reachability question, kept saturated across rule deltas.

    ``pds`` is the baseline system; ``initial`` / ``target`` are the
    ``(state, symbol)`` endpoints of the reachability question (the
    compiled query's ``(START, BOTTOM)`` → ``(ACCEPT, BOTTOM)``).
    ``method`` selects the saturation direction. The constructor runs
    one full (never early-terminated, unreduced) saturation; afterwards
    :meth:`retarget` / :meth:`apply_delta` repair the automaton to any
    nearby rule set and :meth:`accept` answers the question from the
    repaired fixpoint.
    """

    def __init__(
        self,
        pds: PushdownSystem,
        semiring: Semiring,
        initial: Tuple[State, Symbol],
        target: Tuple[State, Symbol],
        method: str = "poststar",
        max_steps: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> None:
        if method not in ("poststar", "prestar"):
            raise PdaError(f"unknown incremental method {method!r}")
        self.method = method
        self.semiring = semiring
        self.initial = initial
        self.target = target
        self.max_steps = max_steps
        self.stats = IncrementalStats()
        #: True after an interrupted repair left the automaton torn;
        #: every public entry point then refuses until rebuilt.
        self.poisoned = False

        self._states = pds.state_table
        self._symbols = pds.symbol_table
        # Own, mutable rule store (the baseline system is shared and
        # immutable): symbolic multiset + live Rule objects per spec.
        self._current_specs: Counter = Counter()
        self._rules_by_spec: Dict[RuleSpec, List[Rule]] = {}
        # Saturation-direction rule indexes, all maintained on delta:
        self._by_head: Dict[int, List[Rule]] = {}
        self._swap_by_result: Dict[int, List[Rule]] = {}
        self._push_by_result: Dict[int, List[Rule]] = {}
        self._push_by_below: Dict[int, List[Rule]] = {}
        self._pop_by_to: Dict[int, List[Rule]] = {}
        # Integer-diff store, active when the baseline carries a spec-id
        # stream (shared spec table) and numpy is importable: live Rule
        # objects per spec id plus a dense multiplicity vector of the
        # *current* rule multiset, indexed by spec id.
        if pds.spec_table is not None and _np is None:
            # The baseline *wants* the fast integer diff but cannot have
            # it — say so (symbolic diffs are correct, just slower).
            if obs.enabled():
                obs.add("pda.incremental.fast_diff_unavailable")
            warnings.warn(
                "numpy is not importable; the incremental core is using "
                "symbolic rule diffs instead of the fast integer diff",
                NumpyFallbackWarning,
                stacklevel=3,
            )
        self._spec_table = pds.spec_table if _np is not None else None
        self._rules_by_sid: Optional[Dict[int, List[Rule]]] = (
            {} if self._spec_table is not None else None
        )
        self._current_counts: Optional[Any] = None
        rules_view = pds.rule_sequence()
        if self._rules_by_sid is not None:
            by_sid = self._rules_by_sid
            for sid, rule in zip(pds.spec_ids, rules_view):
                bucket = by_sid.get(sid)
                if bucket is None:
                    by_sid[sid] = bucket = []
                bucket.append(rule)
            self._current_counts = _np.bincount(
                _np.frombuffer(pds.spec_ids, dtype=_np.int64)
                if len(pds.spec_ids)
                else _np.zeros(0, dtype=_np.int64),
                minlength=len(self._spec_table),
            )
        for rule in rules_view:
            self._rules_by_spec.setdefault(rule_spec(rule), []).append(rule)
            self._index_rule(rule)
        self._current_specs = Counter(
            {spec: len(bucket) for spec, bucket in self._rules_by_spec.items()}
        )
        self._baseline_specs = Counter(self._current_specs)

        # Reverse dependency indexes over the witness DAG.
        self._rule_deps: Dict[Rule, Dict[int, None]] = {}
        self._key_deps: Dict[int, Dict[int, None]] = {}
        self._eps_by_source: Dict[int, Dict[int, None]] = {}
        #: packed push head → interned mid-state id (post* loop cache).
        self._mid_ids: Dict[int, int] = {}
        self._reopened = 0
        self._recomputed = 0

        # The initial/target automaton of the *_single shape.
        if method == "poststar":
            anchor_state, anchor_symbol = initial
        else:
            anchor_state, anchor_symbol = target
        final = ("__final__", anchor_state)
        saturate = poststar if method == "poststar" else prestar
        result = saturate(
            pds,
            semiring,
            [(anchor_state, anchor_symbol, final)],
            [final],
            target=None,  # full saturation: the automaton must be reusable
            max_steps=max_steps,
            deadline=deadline,
        )
        self._automaton: IntPAutomaton = result.automaton
        self.baseline_iterations = result.iterations
        self._init_keys: Dict[int, Any] = {
            pack_key(
                self._states.intern(anchor_state),
                self._symbols.intern(anchor_symbol),
                self._states.intern(final),
            ): semiring.one
        }
        for key, witness in self._automaton.witnesses.items():
            self._register_deps(key, witness)
        for key in self._automaton.weights:
            if (key >> SHIFT) & MASK == EPSILON_ID:
                self._eps_by_source.setdefault(key >> (2 * SHIFT), {})[
                    key & MASK
                ] = None

    # ------------------------------------------------------------------
    # rule store
    # ------------------------------------------------------------------
    def _index_rule(self, rule: Rule) -> None:
        self._by_head.setdefault((rule.from_id << SHIFT) | rule.pop_id, []).append(rule)
        push_ids = rule.push_ids
        if not push_ids:
            self._pop_by_to.setdefault(rule.to_id, []).append(rule)
        elif len(push_ids) == 1:
            self._swap_by_result.setdefault(
                (rule.to_id << SHIFT) | push_ids[0], []
            ).append(rule)
        else:
            self._push_by_result.setdefault(
                (rule.to_id << SHIFT) | push_ids[0], []
            ).append(rule)
            self._push_by_below.setdefault(push_ids[1], []).append(rule)

    def _unindex_rule(self, rule: Rule) -> None:
        def drop(index: Dict[int, List[Rule]], key: int) -> None:
            bucket = index.get(key)
            if bucket is not None:
                bucket.remove(rule)
                if not bucket:
                    del index[key]

        drop(self._by_head, (rule.from_id << SHIFT) | rule.pop_id)
        push_ids = rule.push_ids
        if not push_ids:
            drop(self._pop_by_to, rule.to_id)
        elif len(push_ids) == 1:
            drop(self._swap_by_result, (rule.to_id << SHIFT) | push_ids[0])
        else:
            drop(self._push_by_result, (rule.to_id << SHIFT) | push_ids[0])
            drop(self._push_by_below, push_ids[1])

    def _make_rule(self, spec: RuleSpec) -> Rule:
        from_state, pop, to_state, push, weight, tag = spec
        rule = Rule(from_state, pop, to_state, push, weight, tag)
        rule.from_id = self._states.intern(from_state)
        rule.pop_id = self._symbols.intern(pop)
        rule.to_id = self._states.intern(to_state)
        rule.push_ids = tuple(self._symbols.intern(s) for s in push)
        return rule

    def _sid_of(self, rule: Rule) -> int:
        return self._spec_table.intern(
            (rule.from_id, rule.pop_id, rule.to_id, rule.push_ids, rule.weight)
        )

    def _adopt_rule(self, rule: Rule) -> None:
        """Full bookkeeping for one rule entering the current set."""
        spec = rule_spec(rule)
        self._rules_by_spec.setdefault(spec, []).append(rule)
        self._current_specs[spec] += 1
        self._index_rule(rule)
        if self._rules_by_sid is not None:
            sid = self._sid_of(rule)
            self._rules_by_sid.setdefault(sid, []).append(rule)
            counts = self._current_counts
            if sid >= len(counts):
                counts = _np.concatenate(
                    [counts, _np.zeros(sid + 1 - len(counts), dtype=counts.dtype)]
                )
                self._current_counts = counts
            counts[sid] += 1

    def _forget_rule(self, rule: Rule) -> None:
        """Full bookkeeping for one (currently held) rule leaving."""
        spec = rule_spec(rule)
        bucket = self._rules_by_spec[spec]
        bucket.remove(rule)
        if not bucket:
            del self._rules_by_spec[spec]
        self._current_specs[spec] -= 1
        if not self._current_specs[spec]:
            del self._current_specs[spec]
        self._unindex_rule(rule)
        if self._rules_by_sid is not None:
            sid = self._sid_of(rule)
            sid_bucket = self._rules_by_sid[sid]
            sid_bucket.remove(rule)
            if not sid_bucket:
                del self._rules_by_sid[sid]
            self._current_counts[sid] -= 1

    # ------------------------------------------------------------------
    # dependency bookkeeping
    # ------------------------------------------------------------------
    @staticmethod
    def _witness_deps(witness: Tuple[Any, ...]) -> Tuple[List[Rule], List[int]]:
        """Premise rules and transition keys a witness references.

        Shape-agnostic over both directions' witness tuples: post*'s
        ``("step"/"eps"/"push-head"/"push-tail", …)`` and pre*'s
        ``("rule", rule, partners)``. ``("init",)`` has no premises.
        """
        rules: List[Rule] = []
        keys: List[int] = []
        for part in witness[1:]:
            if isinstance(part, Rule):
                rules.append(part)
            elif isinstance(part, int):
                keys.append(part)
            elif isinstance(part, tuple):
                keys.extend(part)
        return rules, keys

    def _register_deps(self, key: int, witness: Tuple[Any, ...]) -> None:
        rules, keys = self._witness_deps(witness)
        for rule in rules:
            self._rule_deps.setdefault(rule, {})[key] = None
        for premise in keys:
            self._key_deps.setdefault(premise, {})[key] = None

    def _unregister_deps(self, key: int, witness: Tuple[Any, ...]) -> None:
        rules, keys = self._witness_deps(witness)
        for rule in rules:
            bucket = self._rule_deps.get(rule)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del self._rule_deps[rule]
        for premise in keys:
            bucket = self._key_deps.get(premise)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del self._key_deps[premise]

    # ------------------------------------------------------------------
    # repair relax: like IntPAutomaton.relax, plus re-open + dep upkeep
    # ------------------------------------------------------------------
    def _relax(self, key: int, weight: Any, witness: Tuple[Any, ...]) -> bool:
        automaton = self._automaton
        semiring = self.semiring
        if semiring.is_zero(weight):
            return False
        current = automaton.weights.get(key)
        if current is not None and not semiring.less(weight, current):
            return False
        finalized = automaton._finalized
        if key in finalized:
            # An added rule improved an already-finalized transition;
            # un-finalize and let the worklist repropagate. Monotone
            # extend keeps the Dijkstra invariant valid for the rest.
            finalized.discard(key)
            self._reopened += 1
        old = automaton.witnesses.get(key)
        if old is not None:
            self._unregister_deps(key, old)
        self._register_deps(key, witness)
        automaton.weights[key] = weight
        automaton.witnesses[key] = witness
        automaton.relaxations += 1
        target = key & MASK
        head = key >> SHIFT
        symbol = head & MASK
        source = head >> SHIFT
        if symbol == EPSILON_ID:
            automaton.eps_by_target.setdefault(target, {})[source] = None
            self._eps_by_source.setdefault(source, {})[target] = None
        else:
            automaton.out_edges.setdefault(source, {}).setdefault(symbol, {})[
                target
            ] = None
        automaton._counter += 1
        heapq.heappush(
            automaton._heap, (_heap_key(weight), automaton._counter, key)
        )
        self._recomputed += 1
        return True

    def _delete_key(self, key: int) -> None:
        automaton = self._automaton
        automaton.weights.pop(key)
        witness = automaton.witnesses.pop(key)
        self._unregister_deps(key, witness)
        automaton._finalized.discard(key)
        target = key & MASK
        head = key >> SHIFT
        symbol = head & MASK
        source = head >> SHIFT
        if symbol == EPSILON_ID:
            bucket = automaton.eps_by_target.get(target)
            if bucket is not None:
                bucket.pop(source, None)
                if not bucket:
                    del automaton.eps_by_target[target]
            bucket = self._eps_by_source.get(source)
            if bucket is not None:
                bucket.pop(target, None)
                if not bucket:
                    del self._eps_by_source[source]
        else:
            row = automaton.out_edges.get(source)
            if row is not None:
                targets = row.get(symbol)
                if targets is not None:
                    targets.pop(target, None)
                    if not targets:
                        del row[symbol]
                        if not row:
                            del automaton.out_edges[source]

    # ------------------------------------------------------------------
    # public delta API
    # ------------------------------------------------------------------
    def retarget(
        self,
        variant: Union[PushdownSystem, Sequence[Rule]],
        deadline: Optional[float] = None,
    ) -> DeltaReport:
        """Repair the automaton to match ``variant``'s rule set.

        ``variant`` may be a whole system (typically an independently
        compiled variant of the same query) or a bare rule sequence; it
        is diffed against the *current* rule set, so consecutive sweep
        variants pay only for their mutual delta. When the variant was
        compiled over the solver's own shared tables (including the
        spec table) the diff is a flat integer bincount subtraction;
        otherwise it falls back to the symbolic multiset diff.
        """
        if (
            self._rules_by_sid is not None
            and isinstance(variant, PushdownSystem)
            and variant.spec_table is self._spec_table
            and variant.state_table is self._states
            and variant.symbol_table is self._symbols
            and variant.spec_ids is not None
        ):
            removed_rules, added_rules = self._diff_fast(variant)
            return self._apply_rule_delta(removed_rules, added_rules, deadline)
        rules = variant.rules if isinstance(variant, PushdownSystem) else variant
        target_specs = Counter(rule_spec(r) for r in rules)
        removed = self._current_specs - target_specs
        added = target_specs - self._current_specs
        return self.apply_delta(
            list(removed.elements()), list(added.elements()), deadline=deadline
        )

    def _diff_fast(
        self, variant: PushdownSystem
    ) -> Tuple[List[Rule], List[Rule]]:
        """Integer diff current → variant over shared spec-id streams.

        Returns (removed, added) as resolved Rule objects: removals are
        taken from the tail of the per-sid bucket (deterministic), and
        additions are the variant's *own* rule objects, found by their
        positions in its spec-id stream — no full-rule scan, no tuple
        hashing anywhere on this path.
        """
        stream = variant.spec_ids
        var_sids = (
            _np.frombuffer(stream, dtype=_np.int64)
            if len(stream)
            else _np.zeros(0, dtype=_np.int64)
        )
        size = max(len(self._spec_table), len(self._current_counts))
        var_counts = _np.bincount(var_sids, minlength=size)
        cur_counts = self._current_counts
        if len(cur_counts) < len(var_counts):
            cur_counts = _np.concatenate(
                [
                    cur_counts,
                    _np.zeros(len(var_counts) - len(cur_counts), dtype=cur_counts.dtype),
                ]
            )
            self._current_counts = cur_counts
        delta = var_counts - cur_counts
        removed_rules: List[Rule] = []
        for sid in _np.nonzero(delta < 0)[0].tolist():
            bucket = self._rules_by_sid[sid]
            removed_rules.extend(bucket[int(delta[sid]) :])
        added_sids = _np.nonzero(delta > 0)[0]
        added_rules: List[Rule] = []
        if len(added_sids):
            need = {int(sid): int(delta[sid]) for sid in added_sids.tolist()}
            variant_rules = variant.rule_sequence()
            for index in _np.nonzero(_np.isin(var_sids, added_sids))[0].tolist():
                sid = int(var_sids[index])
                if need[sid] > 0:
                    need[sid] -= 1
                    added_rules.append(variant_rules[index])
        return removed_rules, added_rules

    def revert(self, deadline: Optional[float] = None) -> DeltaReport:
        """Repair back to the baseline rule set."""
        removed = self._current_specs - self._baseline_specs
        added = self._baseline_specs - self._current_specs
        return self.apply_delta(
            list(removed.elements()), list(added.elements()), deadline=deadline
        )

    def apply_delta(
        self,
        removed_specs: Sequence[RuleSpec],
        added_specs: Sequence[RuleSpec],
        deadline: Optional[float] = None,
    ) -> DeltaReport:
        """Retract ``removed_specs``, add ``added_specs``, re-saturate.

        Raises :class:`~repro.errors.PdaError` when a removed spec is
        not present. An exception mid-repair (deadline, step budget)
        poisons the solver — the automaton is torn — and every later
        call refuses until the owner rebuilds it.
        """
        if self.poisoned:
            raise PdaError("incremental solver is poisoned by an aborted repair")
        removed_rules: List[Rule] = []
        for spec, count in Counter(removed_specs).items():
            bucket = self._rules_by_spec.get(spec, [])
            if len(bucket) < count:
                raise PdaError(f"cannot retract unknown rule {spec!r}")
            removed_rules.extend(bucket[len(bucket) - count :])
        added_rules = [self._make_rule(spec) for spec in added_specs]
        return self._apply_rule_delta(removed_rules, added_rules, deadline)

    def _apply_rule_delta(
        self,
        removed_rules: List[Rule],
        added_rules: List[Rule],
        deadline: Optional[float],
    ) -> DeltaReport:
        """Shared delta engine: bookkeeping, delete, re-seed, repair."""
        if self.poisoned:
            raise PdaError("incremental solver is poisoned by an aborted repair")
        started = time.perf_counter()
        report = DeltaReport(
            rules_removed=len(removed_rules), rules_added=len(added_rules)
        )
        before = self._automaton.transition_count()
        self._reopened = 0
        self._recomputed = 0
        try:
            for rule in removed_rules:
                self._forget_rule(rule)
            for rule in added_rules:
                self._adopt_rule(rule)

            deleted = self._delete_phase(removed_rules)
            report.invalidated = len(deleted)
            for key in deleted:
                self._rederive(key)
            for rule in added_rules:
                self._seed_added_rule(rule)
            report.repair_iterations = self._repair(deadline)
        except Exception:
            self.poisoned = True
            raise
        report.recomputed = self._recomputed
        report.reopened = self._reopened
        report.reused = before - report.invalidated
        report.elapsed_seconds = time.perf_counter() - started
        self.stats.deltas_applied += 1
        self.stats.invalidated += report.invalidated
        self.stats.recomputed += report.recomputed
        self.stats.reused += report.reused
        self.stats.reports.append(report)
        if obs.enabled():
            obs.add("pda.incremental.deltas")
            obs.add("pda.incremental.invalidated", report.invalidated)
            obs.add("pda.incremental.recomputed", report.recomputed)
            obs.add("pda.incremental.reused", report.reused)
            obs.gauge("pda.incremental.reuse_ratio", report.reuse_ratio)
        return report

    # ------------------------------------------------------------------
    # phase 1: dirty closure + deletion
    # ------------------------------------------------------------------
    def _delete_phase(self, removed_rules: Sequence[Rule]) -> List[int]:
        automaton = self._automaton
        weights = automaton.weights
        dirty: Dict[int, None] = {}
        queue: deque = deque()

        def mark(key: int) -> None:
            if key not in dirty and key in weights:
                dirty[key] = None
                queue.append(key)

        for rule in removed_rules:
            for key in list(self._rule_deps.get(rule, ())):
                mark(key)
            self._rule_deps.pop(rule, None)

        deleted: List[int] = []
        post = self.method == "poststar"
        while queue:
            key = queue.popleft()
            for dependent in list(self._key_deps.get(key, ())):
                mark(dependent)
            self._delete_key(key)
            deleted.append(key)
            if post and (key >> SHIFT) & MASK != EPSILON_ID:
                # post*'s push-head transitions record only their rule,
                # not the popped premise that triggered them: when the
                # last transition with a push rule's head disappears,
                # the rule's push-head conclusion loses its implicit
                # existential premise and must be dirtied explicitly.
                head = key >> SHIFT
                source = head >> SHIFT
                row = automaton.out_edges.get(source)
                if row is None or (head & MASK) not in row:
                    for rule in self._by_head.get(head, ()):
                        if len(rule.push_ids) == 2:
                            mid = self._states.id_of(
                                (_MID, rule.to_state, rule.push[0])
                            )
                            if mid is not None:
                                mark(
                                    pack_key(rule.to_id, rule.push_ids[0], mid)
                                )
        return deleted

    # ------------------------------------------------------------------
    # phase 2: re-seed deleted conclusions and added rules
    # ------------------------------------------------------------------
    def _rederive(self, key: int) -> None:
        """Re-relax ``key`` from every surviving one-step derivation."""
        init_weight = self._init_keys.get(key)
        if init_weight is not None:
            self._relax(key, init_weight, ("init",))
        if self.method == "poststar":
            self._rederive_post(key)
        else:
            self._rederive_pre(key)

    def _rederive_post(self, key: int) -> None:
        weights = self._automaton.weights
        out_edges = self._automaton.out_edges
        extend = self.semiring.extend
        relax = self._relax
        states = self._states
        target = key & MASK
        head = key >> SHIFT
        symbol = head & MASK
        source = head >> SHIFT
        if symbol == EPSILON_ID:
            # Only pop rules conclude ε-transitions.
            for rule in self._pop_by_to.get(source, ()):
                premise = pack_key(rule.from_id, rule.pop_id, target)
                weight = weights.get(premise)
                if weight is not None:
                    relax(key, extend(weight, rule.weight), ("step", rule, premise))
            return
        for rule in self._swap_by_result.get(head, ()):
            premise = pack_key(rule.from_id, rule.pop_id, target)
            weight = weights.get(premise)
            if weight is not None:
                relax(key, extend(weight, rule.weight), ("step", rule, premise))
        resolved_target = states.resolve(target)
        if (
            isinstance(resolved_target, tuple)
            and len(resolved_target) == 3
            and resolved_target[0] == _MID
        ):
            # Push-head conclusion (p', γ1, q_{p',γ1}): justified by any
            # push rule with that result head that can fire at all.
            for rule in self._push_by_result.get(head, ()):
                if states.id_of((_MID, rule.to_state, rule.push[0])) != target:
                    continue
                row = out_edges.get(rule.from_id)
                if row and row.get(rule.pop_id):
                    relax(key, self.semiring.one, ("push-head", rule))
        resolved_source = states.resolve(source)
        if (
            isinstance(resolved_source, tuple)
            and len(resolved_source) == 3
            and resolved_source[0] == _MID
        ):
            # Push-tail conclusion (q_{p',γ1}, γ2, q): premise is the
            # popped transition the push rule fired on.
            _, mid_to, mid_top = resolved_source
            to_id = states.id_of(mid_to)
            top_id = self._symbols.id_of(mid_top)
            if to_id is not None and top_id is not None:
                for rule in self._push_by_result.get((to_id << SHIFT) | top_id, ()):
                    if rule.push_ids[1] != symbol:
                        continue
                    premise = pack_key(rule.from_id, rule.pop_id, target)
                    weight = weights.get(premise)
                    if weight is not None:
                        relax(
                            key,
                            extend(weight, rule.weight),
                            ("push-tail", rule, premise),
                        )
        for eps_target in self._eps_by_source.get(source, ()):
            eps_key = pack_key(source, EPSILON_ID, eps_target)
            partner = pack_key(eps_target, symbol, target)
            partner_weight = weights.get(partner)
            eps_weight = weights.get(eps_key)
            if partner_weight is not None and eps_weight is not None:
                relax(
                    key,
                    extend(eps_weight, partner_weight),
                    ("eps", eps_key, partner),
                )

    def _rederive_pre(self, key: int) -> None:
        weights = self._automaton.weights
        out_edges = self._automaton.out_edges
        extend = self.semiring.extend
        relax = self._relax
        target = key & MASK
        head = key >> SHIFT
        for rule in self._by_head.get(head, ()):
            push_ids = rule.push_ids
            if not push_ids:
                if rule.to_id == target:
                    relax(key, rule.weight, ("rule", rule, ()))
            elif len(push_ids) == 1:
                partner = pack_key(rule.to_id, push_ids[0], target)
                weight = weights.get(partner)
                if weight is not None:
                    relax(key, extend(rule.weight, weight), ("rule", rule, (partner,)))
            else:
                row = out_edges.get(rule.to_id)
                mids = row.get(push_ids[0]) if row is not None else None
                if not mids:
                    continue
                for middle in list(mids):
                    first = pack_key(rule.to_id, push_ids[0], middle)
                    second = pack_key(middle, push_ids[1], target)
                    second_weight = weights.get(second)
                    if second_weight is None:
                        continue
                    relax(
                        key,
                        extend(rule.weight, extend(weights[first], second_weight)),
                        ("rule", rule, (first, second)),
                    )

    def _seed_added_rule(self, rule: Rule) -> None:
        """Apply a freshly added rule to every surviving matching fact."""
        automaton = self._automaton
        weights = automaton.weights
        out_edges = automaton.out_edges
        extend = self.semiring.extend
        relax = self._relax
        push_ids = rule.push_ids
        if self.method == "poststar":
            row = out_edges.get(rule.from_id)
            targets = row.get(rule.pop_id) if row is not None else None
            if not targets:
                return
            for target in list(targets):
                premise = pack_key(rule.from_id, rule.pop_id, target)
                weight = weights[premise]
                extended = extend(weight, rule.weight)
                if len(push_ids) == 1:
                    relax(
                        pack_key(rule.to_id, push_ids[0], target),
                        extended,
                        ("step", rule, premise),
                    )
                elif not push_ids:
                    relax(
                        pack_key(rule.to_id, EPSILON_ID, target),
                        extended,
                        ("step", rule, premise),
                    )
                else:
                    middle = self._mid_id(rule)
                    relax(
                        pack_key(rule.to_id, push_ids[0], middle),
                        self.semiring.one,
                        ("push-head", rule),
                    )
                    relax(
                        pack_key(middle, push_ids[1], target),
                        extended,
                        ("push-tail", rule, premise),
                    )
            return
        # pre*
        if not push_ids:
            relax(
                pack_key(rule.from_id, rule.pop_id, rule.to_id),
                rule.weight,
                ("rule", rule, ()),
            )
            return
        row = out_edges.get(rule.to_id)
        firsts = row.get(push_ids[0]) if row is not None else None
        if not firsts:
            return
        if len(push_ids) == 1:
            for target in list(firsts):
                partner = pack_key(rule.to_id, push_ids[0], target)
                relax(
                    pack_key(rule.from_id, rule.pop_id, target),
                    extend(rule.weight, weights[partner]),
                    ("rule", rule, (partner,)),
                )
            return
        for middle in list(firsts):
            first = pack_key(rule.to_id, push_ids[0], middle)
            middle_row = out_edges.get(middle)
            seconds = middle_row.get(push_ids[1]) if middle_row is not None else None
            if not seconds:
                continue
            first_weight = weights[first]
            for target in list(seconds):
                second = pack_key(middle, push_ids[1], target)
                relax(
                    pack_key(rule.from_id, rule.pop_id, target),
                    extend(rule.weight, extend(first_weight, weights[second])),
                    ("rule", rule, (first, second)),
                )

    def _mid_id(self, rule: Rule) -> int:
        push_head = (rule.to_id << SHIFT) | rule.push_ids[0]
        middle = self._mid_ids.get(push_head)
        if middle is None:
            middle = self._states.intern((_MID, rule.to_state, rule.push[0]))
            self._mid_ids[push_head] = middle
        return middle

    # ------------------------------------------------------------------
    # phase 3: the repair worklist (same body as the scratch loops)
    # ------------------------------------------------------------------
    def _repair(self, deadline: Optional[float]) -> int:
        if self.method == "poststar":
            return self._repair_post(deadline)
        return self._repair_pre(deadline)

    def _check_budgets(self, iterations: int, deadline: Optional[float]) -> None:
        from repro.errors import VerificationTimeout

        if (
            deadline is not None
            and iterations % 512 <= 1
            and time.perf_counter() > deadline
        ):
            raise VerificationTimeout("incremental repair exceeded its deadline")
        if self.max_steps is not None and iterations > self.max_steps:
            raise PdaError(
                f"incremental repair exceeded the step budget of {self.max_steps}"
            )

    def _repair_post(self, deadline: Optional[float]) -> int:
        automaton = self._automaton
        semiring = self.semiring
        extend = semiring.extend
        one = semiring.one
        relax = self._relax
        out_edges = automaton.out_edges
        eps_by_target = automaton.eps_by_target
        weights = automaton.weights
        by_head = self._by_head
        iterations = 0
        while True:
            popped = automaton.pop()
            if popped is None:
                return iterations
            iterations += 1
            self._check_budgets(iterations, deadline)
            key, weight = popped
            target_id = key & MASK
            head = key >> SHIFT
            symbol_id = head & MASK
            source_id = head >> SHIFT

            if symbol_id == EPSILON_ID:
                edges = out_edges.get(target_id)
                if edges is not None:
                    for out_symbol, out_targets in list(edges.items()):
                        for out_target in list(out_targets):
                            partner = pack_key(target_id, out_symbol, out_target)
                            relax(
                                pack_key(source_id, out_symbol, out_target),
                                extend(weight, weights[partner]),
                                ("eps", key, partner),
                            )
                continue

            rules = by_head.get(head)
            if rules is not None:
                for rule in rules:
                    extended = extend(weight, rule.weight)
                    push_ids = rule.push_ids
                    if len(push_ids) == 1:
                        relax(
                            pack_key(rule.to_id, push_ids[0], target_id),
                            extended,
                            ("step", rule, key),
                        )
                    elif not push_ids:
                        relax(
                            pack_key(rule.to_id, EPSILON_ID, target_id),
                            extended,
                            ("step", rule, key),
                        )
                    else:
                        middle = self._mid_id(rule)
                        relax(
                            pack_key(rule.to_id, push_ids[0], middle),
                            one,
                            ("push-head", rule),
                        )
                        relax(
                            pack_key(middle, push_ids[1], target_id),
                            extended,
                            ("push-tail", rule, key),
                        )

            eps_sources = eps_by_target.get(source_id)
            if eps_sources is not None:
                for eps_source in list(eps_sources):
                    eps_key = pack_key(eps_source, EPSILON_ID, source_id)
                    relax(
                        pack_key(eps_source, symbol_id, target_id),
                        extend(weights[eps_key], weight),
                        ("eps", eps_key, key),
                    )

    def _repair_pre(self, deadline: Optional[float]) -> int:
        automaton = self._automaton
        extend = self.semiring.extend
        relax = self._relax
        out_edges = automaton.out_edges
        weights = automaton.weights
        iterations = 0
        while True:
            popped = automaton.pop()
            if popped is None:
                return iterations
            iterations += 1
            self._check_budgets(iterations, deadline)
            key, weight = popped
            target_id = key & MASK
            head = key >> SHIFT
            symbol_id = head & MASK
            source_id = head >> SHIFT

            rules = self._swap_by_result.get(head)
            if rules is not None:
                for rule in rules:
                    relax(
                        pack_key(rule.from_id, rule.pop_id, target_id),
                        extend(rule.weight, weight),
                        ("rule", rule, (key,)),
                    )

            rules = self._push_by_result.get(head)
            if rules is not None:
                target_edges = out_edges.get(target_id)
                for rule in rules:
                    below = rule.push_ids[1]
                    q2_set = (
                        target_edges.get(below) if target_edges is not None else None
                    )
                    if q2_set is None:
                        continue
                    for q2 in list(q2_set):
                        partner = pack_key(target_id, below, q2)
                        relax(
                            pack_key(rule.from_id, rule.pop_id, q2),
                            extend(rule.weight, extend(weight, weights[partner])),
                            ("rule", rule, (key, partner)),
                        )

            rules = self._push_by_below.get(symbol_id)
            if rules is not None:
                for rule in rules:
                    partner = pack_key(rule.to_id, rule.push_ids[0], source_id)
                    head_weight = weights.get(partner)
                    if head_weight is None:
                        continue
                    relax(
                        pack_key(rule.from_id, rule.pop_id, target_id),
                        extend(rule.weight, extend(head_weight, weight)),
                        ("rule", rule, (partner, key)),
                    )

    # ------------------------------------------------------------------
    # answers and oracles
    # ------------------------------------------------------------------
    @property
    def automaton(self) -> IntPAutomaton:
        return self._automaton

    def accept(self) -> Tuple[Any, Optional[Tuple[int, ...]]]:
        """Weight and packed path of the reachability question."""
        if self.poisoned:
            raise PdaError("incremental solver is poisoned by an aborted repair")
        if self.method == "poststar":
            state, symbol = self.target
        else:
            state, symbol = self.initial
        return self._automaton.accept_weight(state, (symbol,))

    def reachable(self) -> Tuple[bool, Any]:
        """Convenience: (is the target reachable, minimal weight)."""
        weight, _ = self.accept()
        return not self.semiring.is_zero(weight), weight

    def witness_run(self) -> Optional[Tuple[Rule, ...]]:
        """A valid minimal-weight rule run from the repaired automaton.

        The run replays correctly but its equal-weight tie-breaking
        depends on repair order — callers needing the scratch-identical
        trace re-solve the variant with the interned core instead.
        """
        from repro.pda.witness import (
            reconstruct_poststar_run,
            reconstruct_prestar_run,
        )

        weight, path = self.accept()
        if self.semiring.is_zero(weight) or path is None:
            return None
        if self.method == "poststar":
            return reconstruct_poststar_run(self._automaton, path)
        return reconstruct_prestar_run(self._automaton, path)

    def weight_map(self) -> Dict[Tuple[Any, Any, Any], Any]:
        """The full fixpoint, resolved to symbolic transition triples.

        Saturation fixpoints are unique regardless of derivation order,
        so this map — unlike witnesses — must match a from-scratch
        saturation of the current rule set exactly. The differential
        harness leans on that.
        """
        resolve_state = self._states.resolve
        resolve_symbol = self._symbols.resolve
        result: Dict[Tuple[Any, Any, Any], Any] = {}
        for key, weight in self._automaton.weights.items():
            target = key & MASK
            head = key >> SHIFT
            symbol_id = head & MASK
            symbol = EPSILON if symbol_id == EPSILON_ID else resolve_symbol(symbol_id)
            result[(resolve_state(head >> SHIFT), symbol, resolve_state(target))] = (
                weight
            )
        return result

    def digest(self) -> str:
        """Canonical SHA-256 of the symbolic weight map.

        Two solvers over the same rule multiset must produce identical
        digests no matter which delta sequence got them there — the
        commutativity and revert-idempotence properties pin this.
        """
        lines = sorted(
            f"{source!r}|{symbol!r}|{target!r}|{weight!r}"
            for (source, symbol, target), weight in self.weight_map().items()
        )
        return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        return (
            f"IncrementalSolver(method={self.method!r}, "
            f"rules={sum(self._current_specs.values())}, "
            f"transitions={self._automaton.transition_count()}, "
            f"deltas={self.stats.deltas_applied})"
        )
