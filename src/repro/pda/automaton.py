"""Weighted P-automata: the saturation workspace and result object.

A *P-automaton* is an NFA over the stack alphabet whose states include
the control states of a pushdown system; it represents a regular set of
configurations: ``⟨p, γ1…γn⟩`` is accepted iff the automaton has a path
``p --γ1--> … --γn--> q`` ending in a final state. The saturation
procedures (:mod:`repro.pda.prestar`, :mod:`repro.pda.poststar`) grow
such an automaton until it represents ``pre*`` / ``post*`` of the
initial configuration set.

Weighted transitions carry a semiring weight and a *witness* — a small
tuple describing how the transition arose, from which
:mod:`repro.pda.witness` reconstructs actual PDS rule sequences.

Two implementations share the Dijkstra-style worklist design
(:meth:`relax` inserts/improves transitions, :meth:`pop` finalizes the
best pending one):

* :class:`WeightedPAutomaton` — transition keys are ``(source, symbol,
  target)`` tuples over arbitrary hashables. This is the reference
  (tuple) core, kept as the differential oracle and benchmark baseline.
* :class:`IntPAutomaton` — transition keys are single packed ints over
  the dense ids of a :class:`~repro.pda.intern.SymbolTable` pair; the
  symbolic values only reappear at the acceptance boundary.

Successor sets and ε-source sets are stored as insertion-ordered dicts
(value None) rather than sets in both cores: iteration order then
depends only on relaxation order, never on hash seeds, which is what
makes equal-weight witness tie-breaking — and therefore traces —
reproducible across processes.
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import PdaError
from repro.pda.intern import EPSILON, EPSILON_ID, MASK, SHIFT, SymbolTable
from repro.pda.semiring import Semiring

__all__ = [
    "EPSILON",
    "Key",
    "WeightedPAutomaton",
    "IntPAutomaton",
]

State = Hashable
Symbol = Hashable

#: Transition key: (source, symbol, target). ``symbol`` may be EPSILON.
Key = Tuple[State, Any, State]


def _heap_key(weight: Any) -> Any:
    """Total-order key for the priority queue; smaller = better.

    Booleans: True (reachable) sorts before False. Numbers and tuples
    order naturally.
    """
    if weight is True or weight is False:
        return 0 if weight else 1
    return weight


class WeightedPAutomaton:
    """A weighted P-automaton plus the saturation worklist state."""

    def __init__(self, semiring: Semiring, final_states: Iterable[State]) -> None:
        self.semiring = semiring
        self.final_states: FrozenSet[State] = frozenset(final_states)
        #: Best known weight per transition key.
        self.weights: Dict[Key, Any] = {}
        #: Witness (provenance) tuple per transition key.
        self.witnesses: Dict[Key, Tuple[Any, ...]] = {}
        #: Non-ε out-edges per state: symbol -> ordered target set
        #: (a dict with None values, keyed in insertion order).
        self.out_edges: Dict[State, Dict[Any, Dict[State, None]]] = {}
        #: ε-transition sources per target state (post* bookkeeping),
        #: insertion-ordered like ``out_edges``.
        self.eps_by_target: Dict[State, Dict[State, None]] = {}
        self._finalized: Set[Key] = set()
        self._heap: List[Tuple[Any, int, Key]] = []
        self._counter = 0
        #: Number of relaxations that actually improved a weight.
        self.relaxations = 0

    # ------------------------------------------------------------------
    # worklist
    # ------------------------------------------------------------------
    def relax(self, key: Key, weight: Any, witness: Tuple[Any, ...]) -> bool:
        """Insert or improve a transition; returns True when it changed."""
        if self.semiring.is_zero(weight):
            return False
        current = self.weights.get(key)
        if current is not None and not self.semiring.less(weight, current):
            return False
        if key in self._finalized:
            # Monotone weights guarantee finalized transitions are optimal.
            raise PdaError(f"non-monotone weight improvement on finalized {key}")
        self.weights[key] = weight
        self.witnesses[key] = witness
        self.relaxations += 1
        source, symbol, target = key
        if symbol is EPSILON:
            self.eps_by_target.setdefault(target, {})[source] = None
        else:
            self.out_edges.setdefault(source, {}).setdefault(symbol, {})[target] = None
        self._counter += 1
        heapq.heappush(self._heap, (_heap_key(weight), self._counter, key))
        return True

    def pop(self) -> Optional[Tuple[Key, Any]]:
        """Finalize and return the best pending transition, or None."""
        while self._heap:
            _, _, key = heapq.heappop(self._heap)
            if key in self._finalized:
                continue
            weight = self.weights[key]
            self._finalized.add(key)
            return key, weight
        return None

    def is_finalized(self, key: Key) -> bool:
        """Has this transition's weight been fixed by a pop?"""
        return key in self._finalized

    # ------------------------------------------------------------------
    # acceptance
    # ------------------------------------------------------------------
    def transition_weight(self, key: Key) -> Any:
        """Best known weight of one transition (zero if absent)."""
        return self.weights.get(key, self.semiring.zero)

    def targets(self, state: State, symbol: Any) -> FrozenSet[State]:
        """Non-ε successors of ``state`` under ``symbol``."""
        return frozenset(self.out_edges.get(state, {}).get(symbol, ()))

    def iter_targets(self, state: State, symbol: Any) -> Tuple[State, ...]:
        """Like :meth:`targets`, but in deterministic insertion order."""
        return tuple(self.out_edges.get(state, {}).get(symbol, ()))

    def accept_weight(
        self, state: State, stack: Tuple[Any, ...]
    ) -> Tuple[Any, Optional[Tuple[Key, ...]]]:
        """Minimal weight of an accepting path for ``⟨state, stack⟩``.

        Returns ``(weight, path)`` where ``path`` is the transition-key
        sequence realizing it, or ``(zero, None)`` when the configuration
        is not accepted. Stacks must be non-empty (the encodings in this
        library always keep a bottom marker on the stack).
        """
        if not stack:
            raise PdaError("empty-stack acceptance is not supported")
        semiring = self.semiring
        # Dijkstra over (automaton state, stack position).
        start = (state, 0)
        best: Dict[Tuple[State, int], Any] = {start: semiring.one}
        back: Dict[Tuple[State, int], Tuple[Tuple[State, int], Key]] = {}
        heap: List[Tuple[Any, int, Tuple[State, int]]] = [
            (_heap_key(semiring.one), 0, start)
        ]
        counter = 0
        done: Set[Tuple[State, int]] = set()
        goal: Optional[Tuple[State, int]] = None
        while heap:
            _, _, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            current_state, position = node
            if position == len(stack):
                if current_state in self.final_states:
                    goal = node
                    break
                continue
            symbol = stack[position]
            for target in self.iter_targets(current_state, symbol):
                key = (current_state, symbol, target)
                weight = semiring.extend(best[node], self.weights[key])
                successor = (target, position + 1)
                known = best.get(successor)
                if known is None or semiring.less(weight, known):
                    best[successor] = weight
                    back[successor] = (node, key)
                    counter += 1
                    heapq.heappush(heap, (_heap_key(weight), counter, successor))
        if goal is None:
            return semiring.zero, None
        path: List[Key] = []
        node = goal
        while node != start:
            node, key = back[node]
            path.append(key)
        path.reverse()
        return best[goal], tuple(path)

    def accepts(self, state: State, stack: Tuple[Any, ...]) -> bool:
        """Boolean acceptance of a configuration."""
        weight, _ = self.accept_weight(state, stack)
        return not self.semiring.is_zero(weight)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def transition_count(self) -> int:
        """Number of distinct transitions (including ε ones)."""
        return len(self.weights)

    def __repr__(self) -> str:
        return (
            f"WeightedPAutomaton(transitions={len(self.weights)}, "
            f"finalized={len(self._finalized)})"
        )


class IntPAutomaton:
    """The interned core's P-automaton: packed-int transition keys.

    A transition ``(source, symbol, target)`` is one int,
    ``(source_id << 42) | (symbol_id << 21) | target_id``, over the ids
    of the pushdown system's shared symbol tables; ε-transitions are the
    keys whose symbol field is :data:`~repro.pda.intern.EPSILON_ID`.
    The worklist, weight map and witness map therefore hash nothing but
    machine ints on the hot path. Acceptance queries take *symbolic*
    states and stacks and translate at the boundary, so callers (the
    solver, tests, the Moped trace pass) are agnostic to which core
    produced the automaton; the returned path keys stay packed, which is
    what :mod:`repro.pda.witness` consumes.
    """

    __slots__ = (
        "semiring",
        "state_table",
        "symbol_table",
        "final_ids",
        "weights",
        "witnesses",
        "out_edges",
        "eps_by_target",
        "_finalized",
        "_heap",
        "_counter",
        "relaxations",
    )

    def __init__(
        self,
        semiring: Semiring,
        state_table: SymbolTable,
        symbol_table: SymbolTable,
        final_ids: Iterable[int],
    ) -> None:
        self.semiring = semiring
        self.state_table = state_table
        self.symbol_table = symbol_table
        self.final_ids: Set[int] = set(final_ids)
        #: Best known weight per packed transition key.
        self.weights: Dict[int, Any] = {}
        #: Witness (provenance) tuple per packed transition key.
        self.witnesses: Dict[int, Tuple[Any, ...]] = {}
        #: source id → symbol id → ordered target-id set (dict of None).
        self.out_edges: Dict[int, Dict[int, Dict[int, None]]] = {}
        #: target id → ordered ε-source-id set (dict of None).
        self.eps_by_target: Dict[int, Dict[int, None]] = {}
        self._finalized: Set[int] = set()
        self._heap: List[Tuple[Any, int, int]] = []
        self._counter = 0
        #: Number of relaxations that actually improved a weight.
        self.relaxations = 0

    # ------------------------------------------------------------------
    # worklist
    # ------------------------------------------------------------------
    def relax(self, key: int, weight: Any, witness: Tuple[Any, ...]) -> bool:
        """Insert or improve a packed transition; True when it changed."""
        semiring = self.semiring
        if semiring.is_zero(weight):
            return False
        current = self.weights.get(key)
        if current is not None and not semiring.less(weight, current):
            return False
        if key in self._finalized:
            # Monotone weights guarantee finalized transitions are optimal.
            raise PdaError(
                f"non-monotone weight improvement on finalized {self.resolve_key(key)}"
            )
        self.weights[key] = weight
        self.witnesses[key] = witness
        self.relaxations += 1
        target = key & MASK
        head = key >> SHIFT
        symbol = head & MASK
        source = head >> SHIFT
        if symbol == EPSILON_ID:
            self.eps_by_target.setdefault(target, {})[source] = None
        else:
            self.out_edges.setdefault(source, {}).setdefault(symbol, {})[target] = None
        self._counter += 1
        heapq.heappush(self._heap, (_heap_key(weight), self._counter, key))
        return True

    def pop(self) -> Optional[Tuple[int, Any]]:
        """Finalize and return the best pending transition, or None."""
        finalized = self._finalized
        heap = self._heap
        while heap:
            _, _, key = heapq.heappop(heap)
            if key in finalized:
                continue
            finalized.add(key)
            return key, self.weights[key]
        return None

    def is_finalized(self, key: int) -> bool:
        """Has this transition's weight been fixed by a pop?"""
        return key in self._finalized

    # ------------------------------------------------------------------
    # boundary helpers
    # ------------------------------------------------------------------
    def resolve_key(self, key: int) -> Key:
        """The symbolic ``(source, symbol, target)`` behind a packed key."""
        target = key & MASK
        head = key >> SHIFT
        symbol_id = head & MASK
        return (
            self.state_table.resolve(head >> SHIFT),
            EPSILON if symbol_id == EPSILON_ID else self.symbol_table.resolve(symbol_id),
            self.state_table.resolve(target),
        )

    @property
    def final_states(self) -> FrozenSet[State]:
        """The final states, resolved to their symbolic values."""
        resolve = self.state_table.resolve
        return frozenset(resolve(i) for i in self.final_ids)

    # ------------------------------------------------------------------
    # acceptance (symbolic in, packed path out)
    # ------------------------------------------------------------------
    def transition_weight(self, key: int) -> Any:
        """Best known weight of one packed transition (zero if absent)."""
        return self.weights.get(key, self.semiring.zero)

    def targets(self, state: State, symbol: Any) -> FrozenSet[State]:
        """Non-ε successors of ``state`` under ``symbol`` (symbolic)."""
        source = self.state_table.id_of(state)
        symbol_id = self.symbol_table.id_of(symbol)
        if source is None or symbol_id is None or symbol_id == EPSILON_ID:
            return frozenset()
        resolve = self.state_table.resolve
        return frozenset(
            resolve(t) for t in self.out_edges.get(source, {}).get(symbol_id, ())
        )

    def accept_weight(
        self, state: State, stack: Tuple[Any, ...]
    ) -> Tuple[Any, Optional[Tuple[int, ...]]]:
        """Minimal weight of an accepting path for ``⟨state, stack⟩``.

        Arguments are symbolic; the returned path is a sequence of
        *packed* keys (what the witness reconstruction consumes), or
        ``(zero, None)`` when the configuration is not accepted.
        """
        if not stack:
            raise PdaError("empty-stack acceptance is not supported")
        semiring = self.semiring
        state_id = self.state_table.id_of(state)
        if state_id is None:
            return semiring.zero, None
        symbol_ids: List[int] = []
        for symbol in stack:
            symbol_id = self.symbol_table.id_of(symbol)
            if symbol_id is None:
                return semiring.zero, None
            symbol_ids.append(symbol_id)
        length = len(symbol_ids)
        # Dijkstra over (automaton state id, stack position).
        start = (state_id, 0)
        best: Dict[Tuple[int, int], Any] = {start: semiring.one}
        back: Dict[Tuple[int, int], Tuple[Tuple[int, int], int]] = {}
        heap: List[Tuple[Any, int, Tuple[int, int]]] = [
            (_heap_key(semiring.one), 0, start)
        ]
        counter = 0
        done: Set[Tuple[int, int]] = set()
        goal: Optional[Tuple[int, int]] = None
        final_ids = self.final_ids
        out_edges = self.out_edges
        weights = self.weights
        while heap:
            _, _, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            current_id, position = node
            if position == length:
                if current_id in final_ids:
                    goal = node
                    break
                continue
            symbol_id = symbol_ids[position]
            for target in out_edges.get(current_id, {}).get(symbol_id, ()):
                key = (((current_id << SHIFT) | symbol_id) << SHIFT) | target
                weight = semiring.extend(best[node], weights[key])
                successor = (target, position + 1)
                known = best.get(successor)
                if known is None or semiring.less(weight, known):
                    best[successor] = weight
                    back[successor] = (node, key)
                    counter += 1
                    heapq.heappush(heap, (_heap_key(weight), counter, successor))
        if goal is None:
            return semiring.zero, None
        path: List[int] = []
        node = goal
        while node != start:
            node, key = back[node]
            path.append(key)
        path.reverse()
        return best[goal], tuple(path)

    def accepts(self, state: State, stack: Tuple[Any, ...]) -> bool:
        """Boolean acceptance of a configuration."""
        weight, _ = self.accept_weight(state, stack)
        return not self.semiring.is_zero(weight)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def transition_count(self) -> int:
        """Number of distinct transitions (including ε ones)."""
        return len(self.weights)

    def __repr__(self) -> str:
        return (
            f"IntPAutomaton(transitions={len(self.weights)}, "
            f"finalized={len(self._finalized)})"
        )
