"""Weighted P-automata: the saturation workspace and result object.

A *P-automaton* is an NFA over the stack alphabet whose states include
the control states of a pushdown system; it represents a regular set of
configurations: ``⟨p, γ1…γn⟩`` is accepted iff the automaton has a path
``p --γ1--> … --γn--> q`` ending in a final state. The saturation
procedures (:mod:`repro.pda.prestar`, :mod:`repro.pda.poststar`) grow
such an automaton until it represents ``pre*`` / ``post*`` of the
initial configuration set.

Weighted transitions carry a semiring weight and a *witness* — a small
tuple describing how the transition arose, from which
:mod:`repro.pda.witness` reconstructs actual PDS rule sequences.

The class also implements the Dijkstra-style worklist shared by both
saturators: :meth:`relax` inserts/improves transitions, :meth:`pop`
finalizes the best pending one.
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import PdaError
from repro.pda.semiring import Semiring

State = Hashable
Symbol = Hashable

#: Transition key: (source, symbol, target). ``symbol`` may be EPSILON.
Key = Tuple[State, Any, State]


class _Epsilon:
    """Singleton ε marker for post*'s intermediate transitions."""

    _instance: Optional["_Epsilon"] = None

    def __new__(cls) -> "_Epsilon":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ε"


EPSILON = _Epsilon()


def _heap_key(weight: Any) -> Any:
    """Total-order key for the priority queue; smaller = better.

    Booleans: True (reachable) sorts before False. Numbers and tuples
    order naturally.
    """
    if weight is True or weight is False:
        return 0 if weight else 1
    return weight


class WeightedPAutomaton:
    """A weighted P-automaton plus the saturation worklist state."""

    def __init__(self, semiring: Semiring, final_states: Iterable[State]) -> None:
        self.semiring = semiring
        self.final_states: FrozenSet[State] = frozenset(final_states)
        #: Best known weight per transition key.
        self.weights: Dict[Key, Any] = {}
        #: Witness (provenance) tuple per transition key.
        self.witnesses: Dict[Key, Tuple[Any, ...]] = {}
        #: Non-ε out-edges per state: symbol -> set of targets.
        self.out_edges: Dict[State, Dict[Any, Set[State]]] = {}
        #: ε-transition sources per target state (post* bookkeeping).
        self.eps_by_target: Dict[State, Set[State]] = {}
        self._finalized: Set[Key] = set()
        self._heap: List[Tuple[Any, int, Key]] = []
        self._counter = 0
        #: Number of relaxations that actually improved a weight.
        self.relaxations = 0

    # ------------------------------------------------------------------
    # worklist
    # ------------------------------------------------------------------
    def relax(self, key: Key, weight: Any, witness: Tuple[Any, ...]) -> bool:
        """Insert or improve a transition; returns True when it changed."""
        if self.semiring.is_zero(weight):
            return False
        current = self.weights.get(key)
        if current is not None and not self.semiring.less(weight, current):
            return False
        if key in self._finalized:
            # Monotone weights guarantee finalized transitions are optimal.
            raise PdaError(f"non-monotone weight improvement on finalized {key}")
        self.weights[key] = weight
        self.witnesses[key] = witness
        self.relaxations += 1
        source, symbol, target = key
        if symbol is EPSILON:
            self.eps_by_target.setdefault(target, set()).add(source)
        else:
            self.out_edges.setdefault(source, {}).setdefault(symbol, set()).add(target)
        self._counter += 1
        heapq.heappush(self._heap, (_heap_key(weight), self._counter, key))
        return True

    def pop(self) -> Optional[Tuple[Key, Any]]:
        """Finalize and return the best pending transition, or None."""
        while self._heap:
            _, _, key = heapq.heappop(self._heap)
            if key in self._finalized:
                continue
            weight = self.weights[key]
            self._finalized.add(key)
            return key, weight
        return None

    def is_finalized(self, key: Key) -> bool:
        """Has this transition's weight been fixed by a pop?"""
        return key in self._finalized

    # ------------------------------------------------------------------
    # acceptance
    # ------------------------------------------------------------------
    def transition_weight(self, key: Key) -> Any:
        """Best known weight of one transition (zero if absent)."""
        return self.weights.get(key, self.semiring.zero)

    def targets(self, state: State, symbol: Any) -> FrozenSet[State]:
        """Non-ε successors of ``state`` under ``symbol``."""
        return frozenset(self.out_edges.get(state, {}).get(symbol, ()))

    def accept_weight(
        self, state: State, stack: Tuple[Any, ...]
    ) -> Tuple[Any, Optional[Tuple[Key, ...]]]:
        """Minimal weight of an accepting path for ``⟨state, stack⟩``.

        Returns ``(weight, path)`` where ``path`` is the transition-key
        sequence realizing it, or ``(zero, None)`` when the configuration
        is not accepted. Stacks must be non-empty (the encodings in this
        library always keep a bottom marker on the stack).
        """
        if not stack:
            raise PdaError("empty-stack acceptance is not supported")
        semiring = self.semiring
        # Dijkstra over (automaton state, stack position).
        start = (state, 0)
        best: Dict[Tuple[State, int], Any] = {start: semiring.one}
        back: Dict[Tuple[State, int], Tuple[Tuple[State, int], Key]] = {}
        heap: List[Tuple[Any, int, Tuple[State, int]]] = [
            (_heap_key(semiring.one), 0, start)
        ]
        counter = 0
        done: Set[Tuple[State, int]] = set()
        goal: Optional[Tuple[State, int]] = None
        while heap:
            _, _, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            current_state, position = node
            if position == len(stack):
                if current_state in self.final_states:
                    goal = node
                    break
                continue
            symbol = stack[position]
            for target in self.targets(current_state, symbol):
                key = (current_state, symbol, target)
                weight = semiring.extend(best[node], self.weights[key])
                successor = (target, position + 1)
                known = best.get(successor)
                if known is None or semiring.less(weight, known):
                    best[successor] = weight
                    back[successor] = (node, key)
                    counter += 1
                    heapq.heappush(heap, (_heap_key(weight), counter, successor))
        if goal is None:
            return semiring.zero, None
        path: List[Key] = []
        node = goal
        while node != start:
            node, key = back[node]
            path.append(key)
        path.reverse()
        return best[goal], tuple(path)

    def accepts(self, state: State, stack: Tuple[Any, ...]) -> bool:
        """Boolean acceptance of a configuration."""
        weight, _ = self.accept_weight(state, stack)
        return not self.semiring.is_zero(weight)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def transition_count(self) -> int:
        """Number of distinct transitions (including ε ones)."""
        return len(self.weights)

    def __repr__(self) -> str:
        return (
            f"WeightedPAutomaton(transitions={len(self.weights)}, "
            f"finalized={len(self._finalized)})"
        )
