"""Frontier-batched (vectorized) saturation core — ``core="vectorized"``.

The interned core (:mod:`repro.pda.poststar` / :mod:`repro.pda.prestar`)
still finalizes one transition per interpreted-Python loop iteration.
This module batches that worklist: automaton transitions live in a
*sorted* numpy ``int64`` array of the existing packed keys
``(source << 21 | symbol) << 21 | target``, rule heads become CSR-style
sorted arrays joined against the frontier with ``searchsorted``, and the
whole frontier of changed transitions is processed one *generation* at a
time with vectorized joins and masks. Weighted queries run as a
vectorized semiring min-relaxation (chaotic-iteration Bellman–Ford):
candidate weights are lexicographically min-reduced per key, compared
against the table, and any key whose weight *improves* re-enters the
frontier ("reopen on improvement").

Soundness story (see DESIGN.md): saturation computes the least fixpoint
of a monotone operator over a bounded semiring, and that fixpoint is
*unique* — independent of relaxation order, batching, or frontier
chunking. A full (non-early-terminated) vectorized saturation therefore
produces the exact same weight map as the interned core's
Dijkstra-ordered loop, which makes :func:`automaton_digest` equality the
differential oracle. What is *not* order-independent is equal-weight
witness tie-breaking, so (like the incremental core) the vectorized
solve path answers verdict/weight from its own fixpoint and re-solves
with the interned core only when a witness trace is actually wanted.

The §4.2 reductions run here as bit-packed array fixpoints: the
top-of-stack masks of :func:`repro.pda.reductions._analyze_masks` become
``uint64`` bitset matrices updated with ``np.bitwise_or.at``, reaching
the identical least fixpoint and hence keeping the identical rule list.

Everything degrades cleanly without numpy (or on weights the codecs
cannot represent): :func:`unsupported_reason` names the reason, and the
solver falls back to the interned core with a
:class:`~repro.errors.NumpyFallbackWarning` plus an obs counter — never
silently.
"""

from __future__ import annotations

import hashlib
import time
import warnings
import weakref
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

try:  # pragma: no cover - numpy is present in the dev image
    import numpy as np
except Exception:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro import obs
from repro.errors import NumpyFallbackWarning, PdaError, VerificationTimeout
from repro.pda.automaton import IntPAutomaton
from repro.pda.intern import EPSILON_ID, MASK, SHIFT
from repro.pda.poststar import _MID
from repro.pda.reductions import ReductionReport
from repro.pda.semiring import (
    BooleanSemiring,
    MinPlusSemiring,
    MinPlusVectorSemiring,
    Semiring,
)
from repro.pda.system import PushdownSystem

State = Hashable

#: Mask of the low (symbol, target) fields of a packed key.
_LOW42 = (1 << (2 * SHIFT)) - 1

#: Rule weights beyond this magnitude fall back to the interned core —
#: keeps every relaxation sum far away from int64 overflow.
_WEIGHT_CAP = 1 << 40

_POP, _SWAP, _PUSH = 0, 1, 2


def available() -> bool:
    """Is the numpy backing for this core importable?"""
    return np is not None


def fallback(reason: str) -> None:
    """Record (warning + obs counter) one fallback to the interned core."""
    if obs.enabled():
        obs.add("pda.vectorized.fallbacks")
    warnings.warn(
        f"vectorized core unavailable ({reason}); "
        "falling back to the interned core",
        NumpyFallbackWarning,
        stacklevel=3,
    )


# ----------------------------------------------------------------------
# weight codecs
# ----------------------------------------------------------------------


class _Codec:
    """Encodes semiring weights as fixed-arity rows of ``int64``.

    ``arity == 0`` is pure set mode (the boolean semiring: every stored
    weight is ``True``, so no weight columns exist at all).
    """

    __slots__ = ("arity", "key")

    def __init__(self, arity: int, key: Tuple[Any, ...]) -> None:
        self.arity = arity
        self.key = key

    def encode_rules(self, weights: Sequence[Any]) -> Optional[Tuple[Any, Any]]:
        """``(rows, keep_mask)`` for the rule weights, or None when some
        weight is not representable (the caller then falls back)."""
        raise NotImplementedError

    def decode(self, row: Any) -> Any:
        raise NotImplementedError


class _BoolCodec(_Codec):
    def __init__(self) -> None:
        super().__init__(0, ("bool",))

    def encode_rules(self, weights: Sequence[Any]) -> Optional[Tuple[Any, Any]]:
        keep = None
        for index, weight in enumerate(weights):
            if weight is True:
                continue
            if weight is False:
                # Zero-weight rules can never relax anything: drop them.
                if keep is None:
                    keep = np.ones(len(weights), dtype=bool)
                keep[index] = False
            else:
                return None
        return None, keep

    def decode(self, row: Any) -> Any:
        return True


class _ScalarCodec(_Codec):
    def __init__(self) -> None:
        super().__init__(1, ("scalar",))

    def encode_rules(self, weights: Sequence[Any]) -> Optional[Tuple[Any, Any]]:
        try:
            rows = np.array(list(weights), dtype=object)
            rows = rows.astype(np.int64, casting="unsafe")
        except (TypeError, ValueError, OverflowError):
            return None
        for weight in weights:
            if not isinstance(weight, int) or isinstance(weight, bool):
                return None
        if rows.size and int(np.abs(rows).max()) > _WEIGHT_CAP:
            return None
        return rows.reshape(-1, 1), None

    def decode(self, row: Any) -> Any:
        return int(row[0])


class _VectorCodec(_Codec):
    def __init__(self, arity: int) -> None:
        super().__init__(arity, ("vector", arity))

    def encode_rules(self, weights: Sequence[Any]) -> Optional[Tuple[Any, Any]]:
        arity = self.arity
        for weight in weights:
            if not isinstance(weight, tuple) or len(weight) != arity:
                return None
            for part in weight:
                if not isinstance(part, int) or isinstance(part, bool):
                    return None
        rows = np.array(list(weights), dtype=np.int64).reshape(-1, arity)
        if rows.size and int(np.abs(rows).max()) > _WEIGHT_CAP:
            return None
        return rows, None

    def decode(self, row: Any) -> Any:
        return tuple(int(part) for part in row)


def _codec_for(semiring: Semiring) -> Optional[_Codec]:
    if isinstance(semiring, BooleanSemiring):
        return _BoolCodec()
    if isinstance(semiring, MinPlusVectorSemiring):
        return _VectorCodec(semiring.arity)
    if isinstance(semiring, MinPlusSemiring):  # includes NegLogProbSemiring
        return _ScalarCodec()
    return None


# ----------------------------------------------------------------------
# cached array views of a pushdown system
# ----------------------------------------------------------------------


class _RuleArrays:
    """Columnar view of a system's rule list (plus per-codec weights)."""

    __slots__ = (
        "count",
        "from_ids",
        "pop_ids",
        "to_ids",
        "kinds",
        "p0",
        "p1",
        "weight_values",
        "_encoded",
    )

    def __init__(self, pds: PushdownSystem) -> None:
        rules = pds.rule_sequence()
        n = len(rules)
        self.count = n
        self.from_ids = np.fromiter((r.from_id for r in rules), np.int64, n)
        self.pop_ids = np.fromiter((r.pop_id for r in rules), np.int64, n)
        self.to_ids = np.fromiter((r.to_id for r in rules), np.int64, n)
        self.kinds = np.fromiter((len(r.push_ids) for r in rules), np.int64, n)
        self.p0 = np.fromiter(
            (r.push_ids[0] if r.push_ids else 0 for r in rules), np.int64, n
        )
        self.p1 = np.fromiter(
            (r.push_ids[1] if len(r.push_ids) == 2 else 0 for r in rules),
            np.int64,
            n,
        )
        self.weight_values: List[Any] = [r.weight for r in rules]
        #: codec key → (rows, keep_mask) | None (unencodable).
        self._encoded: Dict[Tuple[Any, ...], Any] = {}

    def encoded(self, codec: _Codec) -> Optional[Tuple[Any, Any]]:
        cached = self._encoded.get(codec.key, _MISSING)
        if cached is _MISSING:
            cached = codec.encode_rules(self.weight_values)
            self._encoded[codec.key] = cached
        return cached


_MISSING = object()

_ARRAY_CACHE: "weakref.WeakKeyDictionary[PushdownSystem, _RuleArrays]" = (
    weakref.WeakKeyDictionary()
)


def _rule_arrays(pds: PushdownSystem) -> _RuleArrays:
    cached = _ARRAY_CACHE.get(pds)
    if cached is None or cached.count != pds.rule_count():
        cached = _RuleArrays(pds)
        _ARRAY_CACHE[pds] = cached
    return cached


def unsupported_reason(pds: PushdownSystem, semiring: Semiring) -> Optional[str]:
    """Why this solve cannot run vectorized (None = it can)."""
    if np is None:
        return "numpy is not importable"
    codec = _codec_for(semiring)
    if codec is None:
        return f"no vectorized codec for {type(semiring).__name__}"
    if _rule_arrays(pds).encoded(codec) is None:
        return "rule weights are not representable as small integers"
    return None


# ----------------------------------------------------------------------
# §4.2 reductions as bit-packed array fixpoints
# ----------------------------------------------------------------------


def _tops_fixpoint(
    from_ids: Any,
    pop_ids: Any,
    to_ids: Any,
    kinds: Any,
    p0: Any,
    p1: Any,
    n_states: int,
    n_words: int,
    initial_sid: int,
    initial_yid: int,
) -> Tuple[Any, Any]:
    """The top-of-stack / below-set least fixpoint over bitset matrices.

    ``T[s]`` / ``B[s]`` are ``uint64`` bitset rows over symbol ids —
    the array twin of the Python-int masks in
    :func:`repro.pda.reductions._analyze_masks`. Monotone transfers over
    a finite lattice have a unique least fixpoint, so any fair iteration
    order (here: a batched worklist of changed states) lands on exactly
    the masks the scalar version computes.
    """
    tops = np.zeros((n_states, n_words), dtype=np.uint64)
    below = np.zeros((n_states, n_words), dtype=np.uint64)
    tops[initial_sid, initial_yid >> 6] = np.uint64(1 << (initial_yid & 63))

    order = np.argsort(from_ids, kind="stable")
    sorted_from = from_ids[order]
    unique_from, starts = np.unique(sorted_from, return_index=True)
    ends = np.append(starts[1:], len(sorted_from))

    pop_word = pop_ids >> 6
    pop_bit = (np.uint64(1) << (pop_ids & 63).astype(np.uint64))
    p0_word = p0 >> 6
    p0_bit = (np.uint64(1) << (p0 & 63).astype(np.uint64))
    p1_word = p1 >> 6
    p1_bit = (np.uint64(1) << (p1 & 63).astype(np.uint64))

    changed = np.array([initial_sid], dtype=np.int64)
    while changed.size:
        pos = np.searchsorted(unique_from, changed)
        pos_c = np.minimum(pos, max(len(unique_from) - 1, 0))
        has_rules = (
            (pos < len(unique_from)) & (unique_from[pos_c] == changed)
            if len(unique_from)
            else np.zeros(len(changed), dtype=bool)
        )
        if not has_rules.any():
            break
        row_starts = starts[pos_c[has_rules]]
        row_ends = ends[pos_c[has_rules]]
        counts = row_ends - row_starts
        total = int(counts.sum())
        base = np.repeat(row_starts, counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        ridx = order[base + offsets]
        active = (tops[from_ids[ridx], pop_word[ridx]] & pop_bit[ridx]) != 0
        ridx = ridx[active]
        if not ridx.size:
            break
        targets = to_ids[ridx]
        candidates = np.unique(targets)
        snap_tops = tops[candidates].copy()
        snap_below = below[candidates].copy()

        rule_kinds = kinds[ridx]
        nonpop = ridx[rule_kinds != _POP]
        if nonpop.size:
            to_np = to_ids[nonpop]
            np.bitwise_or.at(tops, (to_np, p0_word[nonpop]), p0_bit[nonpop])
            np.bitwise_or.at(below, to_np, below[from_ids[nonpop]])
            push = nonpop[kinds[nonpop] == _PUSH]
            if push.size:
                np.bitwise_or.at(
                    below, (to_ids[push], p1_word[push]), p1_bit[push]
                )
        pops = ridx[rule_kinds == _POP]
        if pops.size:
            source_below = below[from_ids[pops]]
            np.bitwise_or.at(tops, to_ids[pops], source_below)
            np.bitwise_or.at(below, to_ids[pops], source_below)

        row_changed = np.any(tops[candidates] != snap_tops, axis=1) | np.any(
            below[candidates] != snap_below, axis=1
        )
        changed = candidates[row_changed]
    return tops, below


def _coreachable_array(
    from_ids: Any, to_ids: Any, target_sid: int, n_states: int
) -> Any:
    """Bool array over state ids: can ``target_sid`` be reached from here
    in the rule graph? (The array twin of ``_coreachable_ids``.)"""
    reached = np.zeros(n_states, dtype=bool)
    if target_sid < n_states:
        reached[target_sid] = True
    order = np.argsort(to_ids, kind="stable")
    sorted_to = to_ids[order]
    unique_to, starts = np.unique(sorted_to, return_index=True)
    ends = np.append(starts[1:], len(sorted_to))
    frontier = np.array([target_sid], dtype=np.int64)
    while frontier.size:
        pos = np.searchsorted(unique_to, frontier)
        pos_c = np.minimum(pos, max(len(unique_to) - 1, 0))
        has = (
            (pos < len(unique_to)) & (unique_to[pos_c] == frontier)
            if len(unique_to)
            else np.zeros(len(frontier), dtype=bool)
        )
        if not has.any():
            break
        row_starts = starts[pos_c[has]]
        counts = ends[pos_c[has]] - row_starts
        total = int(counts.sum())
        base = np.repeat(row_starts, counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        predecessors = from_ids[order[base + offsets]]
        fresh = np.unique(predecessors[~reached[predecessors]])
        reached[fresh] = True
        frontier = fresh
    return reached


def reduce_rule_indices(
    pds: PushdownSystem,
    initial_state: State,
    initial_symbol: Any,
    target_state: Optional[State] = None,
    passes: int = 2,
) -> Tuple[Any, ReductionReport]:
    """The §4.2 reduction pipeline, returning *kept rule indices*.

    Mirrors :func:`repro.pda.reductions.reduce_pushdown` exactly — same
    analysis fixpoint, same pruning predicate, same coreachability
    filter, same pass structure — but never materializes the reduced
    :class:`PushdownSystem`: the saturation kernels consume the index
    array directly.
    """
    initial_sid = pds.state_table.intern(initial_state)
    initial_yid = pds.symbol_table.intern(initial_symbol)
    target_sid = (
        pds.state_table.intern(target_state) if target_state is not None else None
    )
    arrays = _rule_arrays(pds)
    n_states = int(
        max(
            arrays.from_ids.max(initial=0),
            arrays.to_ids.max(initial=0),
            initial_sid,
            target_sid if target_sid is not None else 0,
        )
    ) + 1
    n_symbols = int(
        max(
            arrays.pop_ids.max(initial=0),
            arrays.p0.max(initial=0),
            arrays.p1.max(initial=0),
            initial_yid,
        )
    ) + 1
    n_words = max(1, (n_symbols + 63) >> 6)

    kept = np.arange(arrays.count, dtype=np.int64)
    for _ in range(max(1, passes)):
        from_k = arrays.from_ids[kept]
        pop_k = arrays.pop_ids[kept]
        tops, _ = _tops_fixpoint(
            from_k,
            pop_k,
            arrays.to_ids[kept],
            arrays.kinds[kept],
            arrays.p0[kept],
            arrays.p1[kept],
            n_states,
            n_words,
            initial_sid,
            initial_yid,
        )
        may_fire = (
            tops[from_k, pop_k >> 6]
            & (np.uint64(1) << (pop_k & 63).astype(np.uint64))
        ) != 0
        new_kept = kept[may_fire]
        if target_sid is not None:
            reached = _coreachable_array(
                arrays.from_ids[new_kept],
                arrays.to_ids[new_kept],
                target_sid,
                n_states,
            )
            to_new = arrays.to_ids[new_kept]
            new_kept = new_kept[reached[to_new] | (to_new == target_sid)]
        if len(new_kept) == len(kept):
            break
        kept = new_kept

    states_after = len(
        np.unique(
            np.concatenate([arrays.from_ids[kept], arrays.to_ids[kept]])
        )
    ) if kept.size else 0
    report = ReductionReport(
        rules_before=arrays.count,
        rules_after=int(len(kept)),
        states_before=pds.state_count(),
        states_after=states_after,
    )
    return kept, report


# ----------------------------------------------------------------------
# the transition table (sorted packed keys + weight rows)
# ----------------------------------------------------------------------


def _lex_less(a: Any, b: Any) -> Any:
    """Row-wise lexicographic ``a < b`` over int64 matrices."""
    arity = a.shape[1]
    less = np.zeros(len(a), dtype=bool)
    decided = np.zeros(len(a), dtype=bool)
    for j in range(arity):
        column_a = a[:, j]
        column_b = b[:, j]
        lt = column_a < column_b
        gt = column_a > column_b
        less |= ~decided & lt
        decided |= lt | gt
    return less


def _dedupe(keys: Any, rows: Optional[Any]) -> Tuple[Any, Optional[Any]]:
    """Unique keys, keeping the lexicographically minimal row per key."""
    if rows is None:
        return np.unique(keys), None
    columns = tuple(
        rows[:, j] for j in range(rows.shape[1] - 1, -1, -1)
    ) + (keys,)
    order = np.lexsort(columns)
    sorted_keys = keys[order]
    sorted_rows = rows[order]
    first = np.empty(len(sorted_keys), dtype=bool)
    first[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=first[1:])
    return sorted_keys[first], sorted_rows[first]


class _Table:
    """Sorted packed-key transition store with min-relaxation merge."""

    __slots__ = ("arity", "keys", "rows")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.keys = np.empty(0, dtype=np.int64)
        self.rows = (
            np.empty((0, arity), dtype=np.int64) if arity else None
        )

    def merge(
        self, candidate_keys: Any, candidate_rows: Optional[Any]
    ) -> Tuple[Any, Optional[Any], Any]:
        """Apply candidates; returns ``(changed_keys, changed_rows,
        new_keys)`` — the reopen set (new + strictly improved) and the
        subset that was newly inserted (for index maintenance)."""
        candidate_keys, candidate_rows = _dedupe(candidate_keys, candidate_rows)
        keys = self.keys
        n = len(keys)
        pos = np.searchsorted(keys, candidate_keys)
        if n:
            pos_c = np.minimum(pos, n - 1)
            found = keys[pos_c] == candidate_keys
        else:
            found = np.zeros(len(candidate_keys), dtype=bool)

        if self.arity:
            found_idx = np.nonzero(found)[0]
            if found_idx.size:
                found_pos = pos[found_idx]
                better = _lex_less(
                    candidate_rows[found_idx], self.rows[found_pos]
                )
                improved_idx = found_idx[better]
                if improved_idx.size:
                    self.rows[found_pos[better]] = candidate_rows[improved_idx]
                improved_keys = candidate_keys[improved_idx]
                improved_rows = candidate_rows[improved_idx]
            else:
                improved_keys = np.empty(0, dtype=np.int64)
                improved_rows = np.empty((0, self.arity), dtype=np.int64)
        else:
            improved_keys = np.empty(0, dtype=np.int64)
            improved_rows = None

        fresh = ~found
        new_keys = candidate_keys[fresh]
        if new_keys.size:
            insert_at = pos[fresh]
            self.keys = np.insert(keys, insert_at, new_keys)
            if self.arity:
                self.rows = np.insert(
                    self.rows, insert_at, candidate_rows[fresh], axis=0
                )
        if self.arity:
            changed_keys = np.concatenate([improved_keys, new_keys])
            changed_rows = np.concatenate(
                [improved_rows, candidate_rows[fresh]]
            )
            return changed_keys, changed_rows, new_keys
        return new_keys, None, new_keys

    def lookup_rows(self, keys: Any) -> Optional[Any]:
        """Weight rows of keys that are guaranteed present."""
        if self.arity == 0:
            return None
        return self.rows[np.searchsorted(self.keys, keys)]

    def contains(self, key: int) -> bool:
        pos = int(np.searchsorted(self.keys, key))
        return pos < len(self.keys) and int(self.keys[pos]) == key


def _expand_ranges(starts: Any, ends: Any) -> Tuple[Any, Any]:
    """CSR pair expansion: per-query element indices plus query ids.

    Returns ``(query_rep, element_index)`` where query ``i`` contributes
    ``ends[i] - starts[i]`` consecutive elements.
    """
    counts = ends - starts
    total = int(counts.sum())
    if not total:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    query_rep = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    base = np.repeat(starts, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return query_rep, base + offsets


class _HeadIndex:
    """Sorted-unique join index: packed head value → element indices."""

    __slots__ = ("values", "starts", "ends", "order")

    def __init__(self, values: Any) -> None:
        self.order = np.argsort(values, kind="stable")
        sorted_values = values[self.order]
        self.values, self.starts = np.unique(sorted_values, return_index=True)
        self.ends = np.append(self.starts[1:], len(sorted_values))

    def join(self, probes: Any) -> Tuple[Any, Any]:
        """``(probe_rep, element_index)`` pairs for matching probes."""
        n = len(self.values)
        if not n or not len(probes):
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        pos = np.searchsorted(self.values, probes)
        pos_c = np.minimum(pos, n - 1)
        match = (pos < n) & (self.values[pos_c] == probes)
        probe_idx = np.nonzero(match)[0]
        if not probe_idx.size:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        query_rep, element = _expand_ranges(
            self.starts[pos_c[probe_idx]], self.ends[pos_c[probe_idx]]
        )
        return probe_idx[query_rep], self.order[element]


# ----------------------------------------------------------------------
# saturation results
# ----------------------------------------------------------------------


class VectorSaturationResult:
    """Array-form saturation outcome; materializes the automaton lazily.

    The solve path only ever needs single-symbol acceptance
    (:meth:`head_weight`), which reads the arrays directly; tests and
    digest oracles that want the full :class:`IntPAutomaton` pay the
    materialization cost on first access.
    """

    __slots__ = (
        "semiring",
        "state_table",
        "symbol_table",
        "final_ids",
        "keys",
        "rows",
        "iterations",
        "generations",
        "early_terminated",
        "_codec",
        "_automaton",
    )

    def __init__(
        self,
        semiring: Semiring,
        codec: _Codec,
        state_table: Any,
        symbol_table: Any,
        final_ids: Sequence[int],
        table: _Table,
        iterations: int,
        generations: int,
        early_terminated: bool,
    ) -> None:
        self.semiring = semiring
        self._codec = codec
        self.state_table = state_table
        self.symbol_table = symbol_table
        self.final_ids = list(final_ids)
        self.keys = table.keys
        self.rows = table.rows
        self.iterations = iterations
        self.generations = generations
        self.early_terminated = early_terminated
        self._automaton: Optional[IntPAutomaton] = None

    @property
    def transition_count(self) -> int:
        return int(len(self.keys))

    def head_weight(self, state: State, symbol: Any) -> Any:
        """Acceptance weight of the one-symbol stack ``⟨state, symbol⟩``.

        Equals ``automaton.accept_weight(state, (symbol,))[0]`` — the min
        over final states of the direct transition's weight — without
        materializing anything.
        """
        semiring = self.semiring
        state_id = self.state_table.id_of(state)
        symbol_id = self.symbol_table.id_of(symbol)
        if state_id is None or symbol_id is None:
            return semiring.zero
        best = semiring.zero
        head = ((state_id << SHIFT) | symbol_id) << SHIFT
        for final_id in self.final_ids:
            key = head | final_id
            pos = int(np.searchsorted(self.keys, key))
            if pos < len(self.keys) and int(self.keys[pos]) == key:
                weight = (
                    True if self.rows is None else self._codec.decode(self.rows[pos])
                )
                best = semiring.combine(best, weight)
        return best

    @property
    def automaton(self) -> IntPAutomaton:
        """The equivalent :class:`IntPAutomaton` (built once, cached)."""
        if self._automaton is not None:
            return self._automaton
        automaton = IntPAutomaton(
            self.semiring, self.state_table, self.symbol_table, self.final_ids
        )
        decode = self._codec.decode
        rows = self.rows
        weights = automaton.weights
        out_edges = automaton.out_edges
        eps_by_target = automaton.eps_by_target
        key_list = self.keys.tolist()
        for index, key in enumerate(key_list):
            weights[key] = True if rows is None else decode(rows[index])
            target = key & MASK
            head = key >> SHIFT
            symbol = head & MASK
            source = head >> SHIFT
            if symbol == EPSILON_ID:
                eps_by_target.setdefault(target, {})[source] = None
            else:
                out_edges.setdefault(source, {}).setdefault(symbol, {})[
                    target
                ] = None
        automaton._finalized.update(key_list)
        automaton.relaxations = len(key_list)
        self._automaton = automaton
        return automaton


def _observe(method: str, result: VectorSaturationResult) -> VectorSaturationResult:
    if obs.enabled():
        obs.add(f"pda.{method}.runs")
        obs.add("pda.saturation_iterations", result.iterations)
        obs.add("pda.transitions_added", result.transition_count)
        obs.add("pda.vectorized.runs")
        obs.add("pda.vectorized.generations", result.generations)
        if result.early_terminated:
            obs.add("pda.early_terminations")
    return result


class _Frontier:
    """Pending changed-key buffer with optional chunked draining.

    Chunking exists for the property tests: digest equality must hold no
    matter how the frontier is sliced into generations, which is exactly
    the fixpoint-uniqueness argument made executable.
    """

    __slots__ = ("chunk", "pending")

    def __init__(self, chunk: Optional[int]) -> None:
        self.chunk = chunk
        self.pending: List[Any] = []

    def push(self, keys: Any) -> None:
        if len(keys):
            self.pending.append(keys)

    def take(self) -> Any:
        buffer = (
            self.pending[0]
            if len(self.pending) == 1
            else np.concatenate(self.pending)
        )
        buffer = np.unique(buffer)
        if self.chunk is not None and len(buffer) > self.chunk:
            self.pending = [buffer[self.chunk :]]
            return buffer[: self.chunk]
        self.pending = []
        return buffer

    def __bool__(self) -> bool:
        return bool(self.pending)


def _budget_checks(
    method: str,
    iterations: int,
    max_steps: Optional[int],
    deadline: Optional[float],
) -> None:
    if deadline is not None and time.perf_counter() > deadline:
        raise VerificationTimeout("saturation exceeded its wall-clock deadline")
    if max_steps is not None and iterations > max_steps:
        raise PdaError(
            f"{method} exceeded the step budget of {max_steps}"
        )


# ----------------------------------------------------------------------
# post* kernel
# ----------------------------------------------------------------------


def vectorized_poststar_single(
    pds: PushdownSystem,
    semiring: Semiring,
    initial_state: State,
    initial_symbol: Any,
    target: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
    rule_indices: Optional[Any] = None,
    chunk_size: Optional[int] = None,
) -> VectorSaturationResult:
    """Generation-batched post* from ``⟨initial_state, initial_symbol⟩``.

    ``rule_indices`` restricts the system to a reduced rule subset (the
    output of :func:`reduce_rule_indices`); ``chunk_size`` caps how many
    frontier facts one generation processes (digest-invariant; exists
    for the batching property tests). Early termination toward
    ``target`` applies only in set mode — weighted runs must reach the
    full fixpoint for minimality.
    """
    codec = _codec_for(semiring)
    if np is None or codec is None:
        raise PdaError("vectorized core unavailable; check unsupported_reason()")
    state_table = pds.state_table
    symbol_table = pds.symbol_table
    final = ("__final__", initial_state)
    final_id = state_table.intern(final)
    if final_id in pds.control_state_ids:
        raise PdaError(
            "initial automaton must not have transitions into control states"
        )
    initial_sid = state_table.intern(initial_state)
    initial_yid = symbol_table.intern(initial_symbol)
    if initial_yid == EPSILON_ID:
        raise PdaError("initial automaton must be ε-free")

    arrays = _rule_arrays(pds)
    encoded = arrays.encoded(codec)
    if encoded is None:
        raise PdaError("rule weights are not vectorizable")
    rule_rows, keep_mask = encoded
    indices = (
        np.arange(arrays.count, dtype=np.int64)
        if rule_indices is None
        else np.asarray(rule_indices, dtype=np.int64)
    )
    if keep_mask is not None:
        indices = indices[keep_mask[indices]]
    from_ids = arrays.from_ids[indices]
    pop_ids = arrays.pop_ids[indices]
    to_ids = arrays.to_ids[indices]
    kinds = arrays.kinds[indices]
    p0 = arrays.p0[indices]
    p1 = arrays.p1[indices]
    weights = rule_rows[indices] if rule_rows is not None else None

    # Pre-intern the synthetic mid-state of every (reachable) push head.
    push_sel = kinds == _PUSH
    push_heads = (to_ids[push_sel] << SHIFT) | p0[push_sel]
    unique_heads = np.unique(push_heads)
    resolve_state = state_table.resolve
    resolve_symbol = symbol_table.resolve
    mid_of_unique = np.fromiter(
        (
            state_table.intern(
                (_MID, resolve_state(h >> SHIFT), resolve_symbol(h & MASK))
            )
            for h in unique_heads.tolist()
        ),
        np.int64,
        len(unique_heads),
    )
    mids = np.zeros(len(indices), dtype=np.int64)
    if push_heads.size:
        mids[push_sel] = mid_of_unique[
            np.searchsorted(unique_heads, push_heads)
        ]

    # Join constants: result (source, symbol) prefix per non-push rule,
    # and the two output shapes of push rules.
    res_sp = (to_ids << SHIFT) | np.where(kinds == _SWAP, p0, 0)
    push_key1 = (((to_ids << SHIFT) | p0) << SHIFT) | mids
    tail_sp = (mids << SHIFT) | p1

    head_index = _HeadIndex((from_ids << SHIFT) | pop_ids)

    arity = codec.arity
    table = _Table(arity)
    eps_alt = np.empty(0, dtype=np.int64)

    target_key = -1
    if target is not None and arity == 0:
        target_sid = state_table.id_of(target[0])
        target_yid = symbol_table.id_of(target[1])
        if target_sid is not None and target_yid is not None:
            target_key = (((target_sid << SHIFT) | target_yid) << SHIFT) | final_id

    init_key = np.array(
        [(((initial_sid << SHIFT) | initial_yid) << SHIFT) | final_id],
        dtype=np.int64,
    )
    init_rows = np.zeros((1, arity), dtype=np.int64) if arity else None
    changed, _, _ = table.merge(init_key, init_rows)
    frontier = _Frontier(chunk_size)
    frontier.push(changed)

    iterations = 0
    generations = 0
    early = target_key >= 0 and table.contains(target_key)
    while frontier and not early:
        batch = frontier.take()
        generations += 1
        iterations += int(len(batch))
        _budget_checks("post*", iterations, max_steps, deadline)
        batch_rows = table.lookup_rows(batch)
        symbols = (batch >> SHIFT) & MASK
        is_eps = symbols == EPSILON_ID
        plain = batch[~is_eps]
        plain_rows = batch_rows[~is_eps] if arity else None
        eps = batch[is_eps]
        eps_rows = batch_rows[is_eps] if arity else None

        out_keys: List[Any] = []
        out_rows: List[Any] = []

        # (A) rules × non-ε frontier facts, joined on the packed head.
        fact_rep, rule_idx = head_index.join(plain >> SHIFT)
        if fact_rep.size:
            fact_targets = plain[fact_rep] & MASK
            pair_kinds = kinds[rule_idx]
            nonpush = pair_kinds != _PUSH
            if nonpush.any():
                out_keys.append(
                    (res_sp[rule_idx[nonpush]] << SHIFT) | fact_targets[nonpush]
                )
                if arity:
                    out_rows.append(
                        plain_rows[fact_rep[nonpush]] + weights[rule_idx[nonpush]]
                    )
            pushes = ~nonpush
            if pushes.any():
                push_rules = rule_idx[pushes]
                out_keys.append(push_key1[push_rules])
                if arity:
                    out_rows.append(
                        np.zeros((len(push_rules), arity), dtype=np.int64)
                    )
                out_keys.append(
                    (tail_sp[push_rules] << SHIFT) | fact_targets[pushes]
                )
                if arity:
                    out_rows.append(
                        plain_rows[fact_rep[pushes]] + weights[push_rules]
                    )

        # (B) non-ε frontier facts × known ε-transitions into their source.
        if plain.size and eps_alt.size:
            sources = plain >> (2 * SHIFT)
            lo = np.searchsorted(eps_alt, sources << SHIFT)
            hi = np.searchsorted(
                eps_alt, (sources << SHIFT) | MASK, side="right"
            )
            fact_rep_b, alt_idx = _expand_ranges(lo, hi)
            if fact_rep_b.size:
                alt = eps_alt[alt_idx]
                eps_sources = alt & MASK
                out_keys.append(
                    (eps_sources << (2 * SHIFT)) | (plain[fact_rep_b] & _LOW42)
                )
                if arity:
                    eps_keys = ((alt & MASK) << (2 * SHIFT)) | (alt >> SHIFT)
                    out_rows.append(
                        table.lookup_rows(eps_keys) + plain_rows[fact_rep_b]
                    )

        # (C) ε frontier facts × the current out-edges of their target.
        if eps.size and table.keys.size:
            eps_targets = eps & MASK
            eps_sources = eps >> (2 * SHIFT)
            lo = np.searchsorted(
                table.keys,
                (eps_targets << (2 * SHIFT)) | (np.int64(1) << SHIFT),
            )
            hi = np.searchsorted(
                table.keys, (eps_targets << (2 * SHIFT)) | _LOW42, side="right"
            )
            fact_rep_c, partner_idx = _expand_ranges(lo, hi)
            if fact_rep_c.size:
                partners = table.keys[partner_idx]
                out_keys.append(
                    (eps_sources[fact_rep_c] << (2 * SHIFT))
                    | (partners & _LOW42)
                )
                if arity:
                    out_rows.append(
                        eps_rows[fact_rep_c] + table.rows[partner_idx]
                    )

        if not out_keys:
            continue
        candidate_keys = (
            out_keys[0] if len(out_keys) == 1 else np.concatenate(out_keys)
        )
        candidate_rows = (
            (out_rows[0] if len(out_rows) == 1 else np.concatenate(out_rows))
            if arity
            else None
        )
        changed, _, new_keys = table.merge(candidate_keys, candidate_rows)
        frontier.push(changed)
        if new_keys.size:
            new_eps = new_keys[((new_keys >> SHIFT) & MASK) == EPSILON_ID]
            if new_eps.size:
                # Repacking as (target, source) destroys the key order, so
                # re-sort before insertion or eps_alt loses sortedness (and
                # every later range query on it silently corrupts).
                alts = np.sort(
                    ((new_eps & MASK) << SHIFT) | (new_eps >> (2 * SHIFT))
                )
                eps_alt = np.insert(
                    eps_alt, np.searchsorted(eps_alt, alts), alts
                )
        if target_key >= 0 and table.contains(target_key):
            early = True

    return _observe(
        "poststar",
        VectorSaturationResult(
            semiring,
            codec,
            state_table,
            symbol_table,
            [final_id],
            table,
            iterations,
            generations,
            early,
        ),
    )


# ----------------------------------------------------------------------
# pre* kernel
# ----------------------------------------------------------------------


def vectorized_prestar_single(
    pds: PushdownSystem,
    semiring: Semiring,
    target_state: State,
    target_symbol: Any,
    source: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
    rule_indices: Optional[Any] = None,
    chunk_size: Optional[int] = None,
) -> VectorSaturationResult:
    """Generation-batched pre* of ``⟨target_state, target_symbol⟩``."""
    codec = _codec_for(semiring)
    if np is None or codec is None:
        raise PdaError("vectorized core unavailable; check unsupported_reason()")
    state_table = pds.state_table
    symbol_table = pds.symbol_table
    final = ("__final__", target_state)
    final_id = state_table.intern(final)
    if final_id in pds.control_state_ids:
        raise PdaError(
            "target automaton must not have transitions into control states"
        )
    target_sid = state_table.intern(target_state)
    target_yid = symbol_table.intern(target_symbol)
    if target_yid == EPSILON_ID:
        raise PdaError("target automaton must be ε-free")

    arrays = _rule_arrays(pds)
    encoded = arrays.encoded(codec)
    if encoded is None:
        raise PdaError("rule weights are not vectorizable")
    rule_rows, keep_mask = encoded
    indices = (
        np.arange(arrays.count, dtype=np.int64)
        if rule_indices is None
        else np.asarray(rule_indices, dtype=np.int64)
    )
    if keep_mask is not None:
        indices = indices[keep_mask[indices]]
    from_ids = arrays.from_ids[indices]
    pop_ids = arrays.pop_ids[indices]
    to_ids = arrays.to_ids[indices]
    kinds = arrays.kinds[indices]
    p0 = arrays.p0[indices]
    p1 = arrays.p1[indices]
    weights = rule_rows[indices] if rule_rows is not None else None

    #: Result-key prefix ``((from << S) | pop) << S`` of every rule.
    rule_head = ((from_ids << SHIFT) | pop_ids) << SHIFT

    swap_sel = np.nonzero(kinds == _SWAP)[0]
    push_sel = np.nonzero(kinds == _PUSH)[0]
    pop_sel = np.nonzero(kinds == _POP)[0]
    swap_index = _HeadIndex((to_ids[swap_sel] << SHIFT) | p0[swap_sel])
    push_head_index = _HeadIndex((to_ids[push_sel] << SHIFT) | p0[push_sel])
    push_below_index = _HeadIndex(p1[push_sel])
    #: Partner-key prefix ``((to << S) | p0) << S`` of every push rule.
    push_partner_head = ((to_ids[push_sel] << SHIFT) | p0[push_sel]) << SHIFT

    arity = codec.arity
    table = _Table(arity)

    source_key = -1
    if source is not None and arity == 0:
        source_sid = state_table.id_of(source[0])
        source_yid = symbol_table.id_of(source[1])
        if source_sid is not None and source_yid is not None:
            source_key = (
                ((source_sid << SHIFT) | source_yid) << SHIFT
            ) | final_id

    # Seed: the target transition plus every pop rule (unconditional).
    seed_keys = [
        np.array(
            [(((target_sid << SHIFT) | target_yid) << SHIFT) | final_id],
            dtype=np.int64,
        )
    ]
    seed_rows = [np.zeros((1, arity), dtype=np.int64)] if arity else None
    if pop_sel.size:
        seed_keys.append(rule_head[pop_sel] | to_ids[pop_sel])
        if arity:
            seed_rows.append(weights[pop_sel])
    changed, _, _ = table.merge(
        np.concatenate(seed_keys),
        np.concatenate(seed_rows) if arity else None,
    )
    frontier = _Frontier(chunk_size)
    frontier.push(changed)

    iterations = 0
    generations = 0
    early = source_key >= 0 and table.contains(source_key)
    while frontier and not early:
        batch = frontier.take()
        generations += 1
        iterations += int(len(batch))
        _budget_checks("pre*", iterations, max_steps, deadline)
        batch_rows = table.lookup_rows(batch)
        batch_heads = batch >> SHIFT
        batch_targets = batch & MASK
        batch_sources = batch >> (2 * SHIFT)
        batch_symbols = batch_heads & MASK

        out_keys: List[Any] = []
        out_rows: List[Any] = []

        # Swap rules joined on (to, push[0]) == the fact's head.
        fact_rep, swap_idx = swap_index.join(batch_heads)
        if fact_rep.size:
            rules_idx = swap_sel[swap_idx]
            out_keys.append(rule_head[rules_idx] | batch_targets[fact_rep])
            if arity:
                out_rows.append(weights[rules_idx] + batch_rows[fact_rep])

        # Push rules reading the fact as their *first* pushed symbol:
        # need a partner (fact_target, push[1], q2) in the table.
        fact_rep, push_idx = push_head_index.join(batch_heads)
        if fact_rep.size and table.keys.size:
            partner_prefix = (batch_targets[fact_rep] << (2 * SHIFT)) | (
                p1[push_sel[push_idx]] << SHIFT
            )
            lo = np.searchsorted(table.keys, partner_prefix)
            hi = np.searchsorted(
                table.keys, partner_prefix | MASK, side="right"
            )
            pair_rep, partner_idx = _expand_ranges(lo, hi)
            if pair_rep.size:
                rules_idx = push_sel[push_idx[pair_rep]]
                out_keys.append(
                    rule_head[rules_idx] | (table.keys[partner_idx] & MASK)
                )
                if arity:
                    out_rows.append(
                        weights[rules_idx]
                        + batch_rows[fact_rep[pair_rep]]
                        + table.rows[partner_idx]
                    )

        # Push rules reading the fact as their *second* pushed symbol:
        # need the existing head transition (to, push[0], fact_source).
        fact_rep, below_idx = push_below_index.join(batch_symbols)
        if fact_rep.size and table.keys.size:
            partner_keys = (
                push_partner_head[below_idx] | batch_sources[fact_rep]
            )
            pos = np.searchsorted(table.keys, partner_keys)
            pos_c = np.minimum(pos, len(table.keys) - 1)
            present = table.keys[pos_c] == partner_keys
            if present.any():
                rules_idx = push_sel[below_idx[present]]
                out_keys.append(
                    rule_head[rules_idx] | batch_targets[fact_rep[present]]
                )
                if arity:
                    out_rows.append(
                        weights[rules_idx]
                        + table.rows[pos[present]]
                        + batch_rows[fact_rep[present]]
                    )

        if not out_keys:
            continue
        candidate_keys = (
            out_keys[0] if len(out_keys) == 1 else np.concatenate(out_keys)
        )
        candidate_rows = (
            (out_rows[0] if len(out_rows) == 1 else np.concatenate(out_rows))
            if arity
            else None
        )
        changed, _, _ = table.merge(candidate_keys, candidate_rows)
        frontier.push(changed)
        if source_key >= 0 and table.contains(source_key):
            early = True

    return _observe(
        "prestar",
        VectorSaturationResult(
            semiring,
            codec,
            state_table,
            symbol_table,
            [final_id],
            table,
            iterations,
            generations,
            early,
        ),
    )


# ----------------------------------------------------------------------
# digest oracle
# ----------------------------------------------------------------------


def automaton_digest(automaton: Any) -> str:
    """Canonical SHA-256 of an automaton's symbolic weight map.

    Works for both cores' automata (packed-int keys are resolved through
    the symbol tables; tuple keys are used as-is) and matches the line
    format of :meth:`repro.pda.incremental.IncrementalSolver.digest`, so
    all the equality oracles in the tree compare the same canonical
    form. Fixpoint uniqueness (see DESIGN.md) is what makes equality of
    these digests a complete conformance check for full saturations.
    """
    lines = []
    if hasattr(automaton, "resolve_key"):
        for key, weight in automaton.weights.items():
            source, symbol, target = automaton.resolve_key(key)
            lines.append(f"{source!r}|{symbol!r}|{target!r}|{weight!r}")
    else:
        for (source, symbol, target), weight in automaton.weights.items():
            lines.append(f"{source!r}|{symbol!r}|{target!r}|{weight!r}")
    lines.sort()
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
