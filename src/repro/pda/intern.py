"""Interning arena for the dense-integer PDA core.

The saturation loops are the hot path of the whole engine, and their
cost is dominated by hashing: control states are nested tuples
(``("link", "r3#r7", 4)``) and stack symbols are :class:`Label` objects,
so every rule lookup and every automaton relaxation re-hashes arbitrary
Python structures. The interned core removes that cost by compiling
both alphabets to dense integer ids at :class:`PushdownSystem`
construction time:

* a :class:`SymbolTable` is an append-only arena mapping hashable
  values to dense ids (``intern``) and back (``resolve``);
* transitions of the saturation automaton become single packed ints —
  ``(source << 42) | (symbol << 21) | target`` — so the worklist, the
  weight map and the witness map all hash machine ints;
* ids never escape: witness reconstruction and every user-facing
  boundary (traces, server JSON, Remopla text) resolve ids back to the
  symbolic values.

The 21-bit id space (2,097,152 states or symbols per table) is far
beyond any instance this engine targets; :meth:`SymbolTable.intern`
raises :class:`~repro.errors.PdaError` on overflow rather than silently
corrupting packed keys.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import PdaError

#: Bits per field of a packed transition key.
SHIFT = 21
#: Mask extracting one field.
MASK = (1 << SHIFT) - 1
#: Exclusive upper bound of the id space.
MAX_ID = 1 << SHIFT


class _Epsilon:
    """Singleton ε marker for post*'s intermediate transitions."""

    _instance: Optional["_Epsilon"] = None

    def __new__(cls) -> "_Epsilon":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ε"


EPSILON = _Epsilon()

#: ε is reserved as symbol id 0 in every symbol table, so packed keys
#: with a zero symbol field are exactly the ε-transitions.
EPSILON_ID = 0


class SymbolTable:
    """An append-only value ↔ dense-id arena.

    Interning is idempotent (equal values share one id) and ids are
    assigned in first-intern order, which keeps every id-derived
    iteration deterministic. Tables are meant to be *shared*: a reduced
    pushdown system reuses its parent's tables, so rule objects keep
    their ids and no re-interning happens.
    """

    __slots__ = ("_ids", "_values", "_lock")

    def __init__(self, reserve: Iterable[Hashable] = ()) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._values: List[Hashable] = []
        self._lock = threading.Lock()
        for value in reserve:
            self.intern(value)

    def intern(self, value: Hashable) -> int:
        """The id of ``value``, assigning the next free one on first use.

        Thread-safe: compiled systems (and hence their tables) are shared
        across farm workers via the compile memo, and concurrent
        saturations of the same system intern their mid-states here. The
        hit path stays lock-free; only first-use assignment locks.
        """
        ident = self._ids.get(value)
        if ident is None:
            with self._lock:
                ident = self._ids.get(value)
                if ident is not None:
                    return ident
                ident = len(self._values)
                if ident >= MAX_ID:
                    raise PdaError(
                        f"symbol table overflow: more than {MAX_ID} distinct values"
                    )
                self._values.append(value)
                self._ids[value] = ident
        return ident

    def id_of(self, value: Hashable) -> Optional[int]:
        """The id of ``value`` if already interned, else None."""
        return self._ids.get(value)

    def resolve(self, ident: int) -> Hashable:
        """The value behind an id (raises :class:`PdaError` on a bad id)."""
        try:
            return self._values[ident]
        except IndexError:
            raise PdaError(f"unknown interned id {ident}") from None

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._ids

    def __getstate__(self) -> List[Hashable]:
        """Pickle as the value list alone — the id map is derived and the
        lock is process-local. Lets compiled artifacts cross process
        boundaries (the shared artifact store pickles whole compiled
        queries); ids are preserved exactly because they are positions."""
        return list(self._values)

    def __setstate__(self, values: List[Hashable]) -> None:
        self._ids = {value: ident for ident, value in enumerate(values)}
        self._values = list(values)
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return f"SymbolTable(size={len(self._values)})"


def pack_head(state_id: int, symbol_id: int) -> int:
    """Pack a rule head ``⟨state, symbol⟩`` into one int."""
    return (state_id << SHIFT) | symbol_id


def pack_key(source_id: int, symbol_id: int, target_id: int) -> int:
    """Pack an automaton transition ``(source, symbol, target)``."""
    return (((source_id << SHIFT) | symbol_id) << SHIFT) | target_id


def unpack_key(key: int) -> Tuple[int, int, int]:
    """Invert :func:`pack_key`."""
    return key >> (2 * SHIFT), (key >> SHIFT) & MASK, key & MASK
