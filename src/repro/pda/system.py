"""Weighted pushdown systems in normal form.

A pushdown system (PDS) is a triple ``(P, Γ, Δ)`` of control states,
stack symbols and rules. Rules are kept in *normal form*: each rule
``⟨p, γ⟩ → ⟨p', w⟩`` pushes at most two symbols (|w| ≤ 2), which is the
form the saturation algorithms require. The three shapes are:

* ``POP``  — ``w = ε``,
* ``SWAP`` — ``w = γ'``,
* ``PUSH`` — ``w = γ₁ γ₂`` (``γ₁`` becomes the new top).

Every rule carries a semiring weight and an opaque ``tag`` used by the
verification layer to map PDA runs back to network traces.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.errors import PdaError

State = Hashable
Symbol = Hashable


class Rule:
    """One normal-form rule ``⟨from_state, pop⟩ → ⟨to_state, push⟩``.

    ``push`` is a tuple of 0, 1 or 2 stack symbols; for a push rule
    ``push[0]`` is the new top of stack and ``push[1]`` sits below it.
    """

    __slots__ = ("from_state", "pop", "to_state", "push", "weight", "tag")

    def __init__(
        self,
        from_state: State,
        pop: Symbol,
        to_state: State,
        push: Tuple[Symbol, ...],
        weight: Any,
        tag: Any = None,
    ) -> None:
        if len(push) > 2:
            raise PdaError("rules must be in normal form (|push| <= 2)")
        self.from_state = from_state
        self.pop = pop
        self.to_state = to_state
        self.push = push
        self.weight = weight
        self.tag = tag

    @property
    def is_pop(self) -> bool:
        return len(self.push) == 0

    @property
    def is_swap(self) -> bool:
        return len(self.push) == 1

    @property
    def is_push(self) -> bool:
        return len(self.push) == 2

    def __repr__(self) -> str:
        pushed = " ".join(str(s) for s in self.push) or "ε"
        return (
            f"<{self.from_state}, {self.pop}> -> <{self.to_state}, {pushed}>"
            f" @{self.weight}"
        )


class PushdownSystem:
    """A weighted pushdown system with head-indexed rule lookup."""

    def __init__(self) -> None:
        self._rules: List[Rule] = []
        self._by_head: Dict[Tuple[State, Symbol], List[Rule]] = {}
        self._states: Set[State] = set()
        self._symbols: Set[Symbol] = set()

    def add_rule(
        self,
        from_state: State,
        pop: Symbol,
        to_state: State,
        push: Tuple[Symbol, ...],
        weight: Any,
        tag: Any = None,
    ) -> Rule:
        """Create, index and return a rule."""
        rule = Rule(from_state, pop, to_state, push, weight, tag)
        self._rules.append(rule)
        self._by_head.setdefault((from_state, pop), []).append(rule)
        self._states.add(from_state)
        self._states.add(to_state)
        self._symbols.add(pop)
        self._symbols.update(push)
        return rule

    def rules_from(self, state: State, symbol: Symbol) -> Sequence[Rule]:
        """All rules with head ``⟨state, symbol⟩``."""
        return self._by_head.get((state, symbol), ())

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return tuple(self._rules)

    @property
    def states(self) -> FrozenSet[State]:
        return frozenset(self._states)

    @property
    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset(self._symbols)

    def rule_count(self) -> int:
        """Number of rules in Δ."""
        return len(self._rules)

    def replace_rules(self, rules: Iterable[Rule]) -> "PushdownSystem":
        """A new system containing only the given rules (used by reductions)."""
        reduced = PushdownSystem()
        for rule in rules:
            reduced.add_rule(
                rule.from_state, rule.pop, rule.to_state, rule.push, rule.weight, rule.tag
            )
        return reduced

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __repr__(self) -> str:
        return (
            f"PushdownSystem(states={len(self._states)}, "
            f"symbols={len(self._symbols)}, rules={len(self._rules)})"
        )


class Configuration:
    """A PDS configuration ``⟨state, stack⟩`` (top of stack first)."""

    __slots__ = ("state", "stack")

    def __init__(self, state: State, stack: Tuple[Symbol, ...]) -> None:
        self.state = state
        self.stack = stack

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self.state == other.state and self.stack == other.stack

    def __hash__(self) -> int:
        return hash((self.state, self.stack))

    def __repr__(self) -> str:
        stack = " ".join(str(s) for s in self.stack) or "ε"
        return f"<{self.state}, {stack}>"


def apply_rule(configuration: Configuration, rule: Rule) -> Configuration:
    """One transition step of the PDS semantics.

    Raises :class:`PdaError` when the rule head does not match — callers
    replaying reconstructed runs use this as a soundness assertion.
    """
    if not configuration.stack:
        raise PdaError(f"cannot apply {rule!r}: empty stack")
    if configuration.state != rule.from_state or configuration.stack[0] != rule.pop:
        raise PdaError(f"rule {rule!r} does not match {configuration!r}")
    return Configuration(rule.to_state, rule.push + configuration.stack[1:])


def run_rules(
    initial: Configuration, rules: Sequence[Rule]
) -> Tuple[Configuration, ...]:
    """Replay a rule sequence, returning every intermediate configuration.

    The first element is ``initial``; the last is the final configuration.
    """
    configurations = [initial]
    for rule in rules:
        configurations.append(apply_rule(configurations[-1], rule))
    return tuple(configurations)
