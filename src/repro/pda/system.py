"""Weighted pushdown systems in normal form.

A pushdown system (PDS) is a triple ``(P, Γ, Δ)`` of control states,
stack symbols and rules. Rules are kept in *normal form*: each rule
``⟨p, γ⟩ → ⟨p', w⟩`` pushes at most two symbols (|w| ≤ 2), which is the
form the saturation algorithms require. The three shapes are:

* ``POP``  — ``w = ε``,
* ``SWAP`` — ``w = γ'``,
* ``PUSH`` — ``w = γ₁ γ₂`` (``γ₁`` becomes the new top).

Every rule carries a semiring weight and an opaque ``tag`` used by the
verification layer to map PDA runs back to network traces.

Control states and stack symbols are *interned* on insertion: the
system owns (or shares) a pair of :class:`~repro.pda.intern.SymbolTable`
arenas, every rule carries the dense ids of its head and body next to
the symbolic values, and rule lookup is indexed by packed int heads.
The saturators run entirely on those ids; the symbolic fields exist so
witnesses, traces and serializations can resolve back to names at the
boundary without any reverse lookups.
"""

from __future__ import annotations

from array import array
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import PdaError
from repro.pda.intern import EPSILON, MASK, SHIFT, SymbolTable

State = Hashable
Symbol = Hashable


class Rule:
    """One normal-form rule ``⟨from_state, pop⟩ → ⟨to_state, push⟩``.

    ``push`` is a tuple of 0, 1 or 2 stack symbols; for a push rule
    ``push[0]`` is the new top of stack and ``push[1]`` sits below it.
    The ``*_id`` slots hold the dense ids of the owning system's symbol
    tables (-1 / empty until the rule is adopted by a system).
    """

    __slots__ = (
        "from_state",
        "pop",
        "to_state",
        "push",
        "weight",
        "tag",
        "from_id",
        "pop_id",
        "to_id",
        "push_ids",
    )

    def __init__(
        self,
        from_state: State,
        pop: Symbol,
        to_state: State,
        push: Tuple[Symbol, ...],
        weight: Any,
        tag: Any = None,
    ) -> None:
        if len(push) > 2:
            raise PdaError("rules must be in normal form (|push| <= 2)")
        self.from_state = from_state
        self.pop = pop
        self.to_state = to_state
        self.push = push
        self.weight = weight
        self.tag = tag
        self.from_id = -1
        self.pop_id = -1
        self.to_id = -1
        self.push_ids: Tuple[int, ...] = ()

    @property
    def is_pop(self) -> bool:
        return len(self.push) == 0

    @property
    def is_swap(self) -> bool:
        return len(self.push) == 1

    @property
    def is_push(self) -> bool:
        return len(self.push) == 2

    def __repr__(self) -> str:
        pushed = " ".join(str(s) for s in self.push) or "ε"
        return (
            f"<{self.from_state}, {self.pop}> -> <{self.to_state}, {pushed}>"
            f" @{self.weight}"
        )


class PushdownSystem:
    """A weighted pushdown system with id-indexed rule lookup.

    ``state_table`` / ``symbol_table`` default to fresh arenas; passing
    existing ones creates a system in the *same id space* — which is how
    :meth:`replace_rules` makes reduced systems share their parent's
    interning (rule objects are adopted as-is, no re-interning).

    ``spec_table`` optionally interns each rule's *semantic identity*
    ``(from_id, pop_id, to_id, push_ids, weight)`` — note: no tag — to a
    dense spec id, recorded per rule in :attr:`spec_ids`. Systems built
    over one shared spec table (and therefore the same state/symbol
    tables, which the spec ids quote) can be diffed as flat integer
    multisets without hashing a single tuple; the incremental solver's
    sweep retarget lives on this. The stream is append-only and aligned
    with the rule list.
    """

    def __init__(
        self,
        state_table: Optional[SymbolTable] = None,
        symbol_table: Optional[SymbolTable] = None,
        spec_table: Optional[SymbolTable] = None,
    ) -> None:
        self.state_table = state_table if state_table is not None else SymbolTable()
        self.symbol_table = (
            symbol_table if symbol_table is not None else SymbolTable(reserve=(EPSILON,))
        )
        self.spec_table = spec_table
        #: Dense spec id per rule (aligned with the rule list), or None
        #: when the system was built without a spec table.
        self.spec_ids: Optional[array] = array("q") if spec_table is not None else None
        self._rules: List[Rule] = []
        #: packed head ``(from_id << SHIFT) | pop_id`` → rules.
        self._by_head: Dict[int, List[Rule]] = {}
        self._state_ids: Set[int] = set()
        self._symbol_ids: Set[int] = set()
        self._head_index: Optional[List[Optional[Dict[int, List[Rule]]]]] = None

    def add_rule(
        self,
        from_state: State,
        pop: Symbol,
        to_state: State,
        push: Tuple[Symbol, ...],
        weight: Any,
        tag: Any = None,
    ) -> Rule:
        """Create, intern, index and return a rule."""
        rule = Rule(from_state, pop, to_state, push, weight, tag)
        states = self.state_table
        symbols = self.symbol_table
        rule.from_id = states.intern(from_state)
        rule.pop_id = symbols.intern(pop)
        rule.to_id = states.intern(to_state)
        rule.push_ids = tuple(symbols.intern(s) for s in push)
        self._index_rule(rule)
        return rule

    def _index_rule(self, rule: Rule) -> None:
        self._rules.append(rule)
        if self.spec_table is not None:
            self.spec_ids.append(
                self.spec_table.intern(
                    (rule.from_id, rule.pop_id, rule.to_id, rule.push_ids, rule.weight)
                )
            )
        self._by_head.setdefault((rule.from_id << SHIFT) | rule.pop_id, []).append(rule)
        self._state_ids.add(rule.from_id)
        self._state_ids.add(rule.to_id)
        self._symbol_ids.add(rule.pop_id)
        self._symbol_ids.update(rule.push_ids)
        self._head_index = None

    def rules_from(self, state: State, symbol: Symbol) -> Sequence[Rule]:
        """All rules with head ``⟨state, symbol⟩`` (symbolic lookup)."""
        from_id = self.state_table.id_of(state)
        pop_id = self.symbol_table.id_of(symbol)
        if from_id is None or pop_id is None:
            return ()
        return self._by_head.get((from_id << SHIFT) | pop_id, ())

    def head_index(self) -> List[Optional[Dict[int, List[Rule]]]]:
        """Per-state rule rows, indexed by state id (the CSR-style view).

        ``head_index()[from_id][pop_id]`` is the rule list of one head;
        states without rules hold None. The list covers the state table
        as of the build — ids interned later (saturation mid-states,
        automaton finals) simply index past the end, which callers guard
        with a length check. Rebuilt lazily after any ``add_rule``.
        """
        index = self._head_index
        if index is None:
            index = [None] * len(self.state_table)
            for packed, rules in self._by_head.items():
                from_id = packed >> SHIFT
                row = index[from_id]
                if row is None:
                    row = index[from_id] = {}
                row[packed & MASK] = rules
            self._head_index = index
        return index

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return tuple(self._rules)

    def rule_sequence(self) -> Sequence[Rule]:
        """The live rule list (read-only view; do not mutate).

        Unlike :attr:`rules` this does not copy — index-aligned with
        :attr:`spec_ids`, which is how the incremental diff resolves
        added spec ids back to rule objects without a scan.
        """
        return self._rules

    @property
    def control_state_ids(self) -> Set[int]:
        """Ids of all control states (read-only view; do not mutate)."""
        return self._state_ids

    @property
    def states(self) -> FrozenSet[State]:
        resolve = self.state_table.resolve
        return frozenset(resolve(i) for i in self._state_ids)

    @property
    def symbols(self) -> FrozenSet[Symbol]:
        resolve = self.symbol_table.resolve
        return frozenset(resolve(i) for i in self._symbol_ids)

    def state_count(self) -> int:
        """Number of control states (without materializing them)."""
        return len(self._state_ids)

    def rule_count(self) -> int:
        """Number of rules in Δ."""
        return len(self._rules)

    def replace_rules(self, rules: Iterable[Rule]) -> "PushdownSystem":
        """A new system containing only the given rules (used by reductions).

        The new system shares this one's symbol tables, so rules that
        were interned here are adopted without copying; foreign rules
        (different tables, or never interned) are re-created.
        """
        reduced = PushdownSystem(self.state_table, self.symbol_table)
        states = self.state_table
        symbols = self.symbol_table
        for rule in rules:
            if (
                states.id_of(rule.from_state) == rule.from_id
                and symbols.id_of(rule.pop) == rule.pop_id
            ):
                reduced._index_rule(rule)
            else:
                reduced.add_rule(
                    rule.from_state,
                    rule.pop,
                    rule.to_state,
                    rule.push,
                    rule.weight,
                    rule.tag,
                )
        return reduced

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle the interned form, not the rule objects.

        Each :class:`Rule` stores its symbolic head/body *and* the dense
        ids — pickling the objects writes every nested state tuple and
        Label twice over (once in the tables, once per rule), which made
        compiled artifacts ~4x larger and correspondingly slow to load
        from the shared store. Instead we write the two arenas plus flat
        integer arrays (packed ``from/pop/to`` triples and the push ids)
        alongside the weight and tag lists, and rebuild the rules from
        the tables on load. ``_head_index`` is derived and dropped.
        """
        rules = self._rules
        push_flat = array("i")
        for rule in rules:
            push_flat.extend(rule.push_ids)
        return {
            "state_table": self.state_table,
            "symbol_table": self.symbol_table,
            "spec_table": self.spec_table,
            "spec_ids": self.spec_ids,
            "packed_heads": array(
                "q",
                (
                    (((r.from_id << SHIFT) | r.pop_id) << SHIFT) | r.to_id
                    for r in rules
                ),
            ),
            "push_arity": array("b", (len(r.push_ids) for r in rules)),
            "push_flat": push_flat,
            "weights": [r.weight for r in rules],
            "tags": [r.tag for r in rules],
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.state_table = state["state_table"]
        self.symbol_table = state["symbol_table"]
        self.spec_table = state["spec_table"]
        self.spec_ids = state["spec_ids"]
        self._rules = rules = []
        self._by_head = by_head = {}
        self._head_index = None
        # Positional access into the arenas: ids *are* list positions,
        # and resolve()'s per-call guard would dominate this loop.
        states = self.state_table._values
        symbols = self.symbol_table._values
        packed_heads = state["packed_heads"]
        push_flat = state["push_flat"]
        position = 0
        new = Rule.__new__
        append = rules.append
        for packed, arity, weight, tag in zip(
            packed_heads,
            state["push_arity"],
            state["weights"],
            state["tags"],
        ):
            from_id = packed >> (2 * SHIFT)
            pop_id = (packed >> SHIFT) & MASK
            rule = new(Rule)
            rule.from_state = states[from_id]
            rule.pop = symbols[pop_id]
            rule.to_id = to_id = packed & MASK
            rule.to_state = states[to_id]
            if arity == 0:
                rule.push_ids = ()
                rule.push = ()
            elif arity == 1:
                first = push_flat[position]
                position += 1
                rule.push_ids = (first,)
                rule.push = (symbols[first],)
            else:
                first = push_flat[position]
                second = push_flat[position + 1]
                position += 2
                rule.push_ids = (first, second)
                rule.push = (symbols[first], symbols[second])
            rule.weight = weight
            rule.tag = tag
            rule.from_id = from_id
            rule.pop_id = pop_id
            append(rule)
            head = (from_id << SHIFT) | pop_id
            row = by_head.get(head)
            if row is None:
                by_head[head] = [rule]
            else:
                row.append(rule)
        # The id sets fall out of the flat arrays in bulk, which beats
        # four .add() calls per rule through the loop above.
        self._state_ids = {p >> (2 * SHIFT) for p in packed_heads} | {
            p & MASK for p in packed_heads
        }
        self._symbol_ids = {
            (p >> SHIFT) & MASK for p in packed_heads
        } | set(push_flat)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __repr__(self) -> str:
        return (
            f"PushdownSystem(states={len(self._state_ids)}, "
            f"symbols={len(self._symbol_ids)}, rules={len(self._rules)})"
        )


class Configuration:
    """A PDS configuration ``⟨state, stack⟩`` (top of stack first)."""

    __slots__ = ("state", "stack")

    def __init__(self, state: State, stack: Tuple[Symbol, ...]) -> None:
        self.state = state
        self.stack = stack

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self.state == other.state and self.stack == other.stack

    def __hash__(self) -> int:
        return hash((self.state, self.stack))

    def __repr__(self) -> str:
        stack = " ".join(str(s) for s in self.stack) or "ε"
        return f"<{self.state}, {stack}>"


def apply_rule(configuration: Configuration, rule: Rule) -> Configuration:
    """One transition step of the PDS semantics.

    Raises :class:`PdaError` when the rule head does not match — callers
    replaying reconstructed runs use this as a soundness assertion.
    """
    if not configuration.stack:
        raise PdaError(f"cannot apply {rule!r}: empty stack")
    if configuration.state != rule.from_state or configuration.stack[0] != rule.pop:
        raise PdaError(f"rule {rule!r} does not match {configuration!r}")
    return Configuration(rule.to_state, rule.push + configuration.stack[1:])


def run_rules(
    initial: Configuration, rules: Sequence[Rule]
) -> Tuple[Configuration, ...]:
    """Replay a rule sequence, returning every intermediate configuration.

    The first element is ``initial``; the last is the final configuration.
    """
    configurations = [initial]
    for rule in rules:
        configurations.append(apply_rule(configurations[-1], rule))
    return tuple(configurations)
