"""Reachability facade over the saturation engines.

:func:`solve_reachability` answers a single weighted reachability
question ``⟨p0, γ0⟩ →* ⟨pf, γf⟩`` on a pushdown system, optionally
applying reductions first, choosing the saturation direction, and
reconstructing the minimal-weight rule run. This is the entry point the
verification layer calls; it is also usable standalone as a small
weighted-PDS library.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple

from repro import obs
from repro.errors import PdaError
from repro.pda.poststar import poststar_single
from repro.pda.prestar import prestar_single
from repro.pda.reductions import ReductionReport, reduce_pushdown
from repro.pda.reference import (
    reference_poststar_single,
    reference_prestar_single,
    reference_reduce_pushdown,
)
from repro.pda.semiring import Semiring
from repro.pda.system import Configuration, PushdownSystem, Rule, run_rules
from repro.pda.witness import reconstruct_poststar_run, reconstruct_prestar_run

State = Hashable
Symbol = Hashable


@dataclass
class SolverStats:
    """Observability data for benchmarks and the CLI's ``--stats``."""

    method: str
    rules_before: int
    rules_after: int
    saturation_iterations: int = 0
    automaton_transitions: int = 0
    early_terminated: bool = False
    elapsed_seconds: float = 0.0
    reduction: Optional[ReductionReport] = None
    #: Delta accounting when the incremental core answered (else None).
    incremental: Optional[Any] = None


@dataclass
class ReachabilityOutcome:
    """Answer to one reachability question."""

    reachable: bool
    #: Minimal run weight (semiring zero when unreachable).
    weight: Any
    #: The minimal-weight rule run, when requested and reachable.
    rules: Optional[Tuple[Rule, ...]]
    stats: SolverStats


def solve_reachability(
    pds: PushdownSystem,
    semiring: Semiring,
    initial: Tuple[State, Symbol],
    target: Tuple[State, Symbol],
    method: str = "poststar",
    use_reductions: bool = True,
    early_termination: bool = True,
    want_witness: bool = True,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
    core: str = "interned",
) -> ReachabilityOutcome:
    """Decide ``⟨initial⟩ →* ⟨target⟩`` and return weight plus witness run.

    ``method`` selects the saturation direction: ``"poststar"`` (forward,
    the AalWiNes engine's choice — supports guided search and early
    termination toward the single target) or ``"prestar"`` (backward, the
    generic model-checker strategy used by the Moped baseline).

    ``core`` selects the saturation implementation: ``"interned"`` (the
    dense-integer-id engine, default), ``"tuple"`` (the symbolic
    reference twin in :mod:`repro.pda.reference`), ``"incremental"``
    (a fresh :class:`~repro.pda.incremental.IncrementalSolver` answering
    from its fully saturated automaton — the conformance path for the
    delta-saturation machinery; sweeps reuse solvers across variants via
    :mod:`repro.verification.incremental` instead), or ``"vectorized"``
    (the generation-batched numpy kernel of
    :mod:`repro.pda.vectorized`, which falls back to the interned core —
    with a :class:`~repro.errors.NumpyFallbackWarning` — when numpy or a
    weight codec is unavailable). All four must produce identical
    outcomes — the differential tests and the benchmarks rely on this
    switch.
    """
    if method not in ("poststar", "prestar"):
        raise PdaError(f"unknown solver method {method!r}")
    if core not in ("interned", "tuple", "incremental", "vectorized"):
        raise PdaError(f"unknown solver core {core!r}")
    if core == "incremental":
        return _solve_incremental(
            pds,
            semiring,
            initial,
            target,
            method=method,
            use_reductions=use_reductions,
            early_termination=early_termination,
            want_witness=want_witness,
            max_steps=max_steps,
            deadline=deadline,
        )
    if core == "vectorized":
        return _solve_vectorized(
            pds,
            semiring,
            initial,
            target,
            method=method,
            use_reductions=use_reductions,
            early_termination=early_termination,
            want_witness=want_witness,
            max_steps=max_steps,
            deadline=deadline,
        )
    interned = core == "interned"
    start_time = time.perf_counter()
    initial_state, initial_symbol = initial
    target_state, target_symbol = target

    reduction_report: Optional[ReductionReport] = None
    system = pds
    if use_reductions:
        with obs.span("reduce"):
            reducer = reduce_pushdown if interned else reference_reduce_pushdown
            system, reduction_report = reducer(
                pds, initial_state, initial_symbol, target_state
            )
        if obs.enabled():
            obs.add("pda.rules_removed", pds.rule_count() - system.rule_count())

    poststar_fn = poststar_single if interned else reference_poststar_single
    prestar_fn = prestar_single if interned else reference_prestar_single
    with obs.span("saturate", method=method):
        if method == "poststar":
            result = poststar_fn(
                system,
                semiring,
                initial_state,
                initial_symbol,
                target=(target_state, target_symbol) if early_termination else None,
                max_steps=max_steps,
                deadline=deadline,
            )
            weight, path = result.automaton.accept_weight(
                target_state, (target_symbol,)
            )
        else:
            result = prestar_fn(
                system,
                semiring,
                target_state,
                target_symbol,
                source=(initial_state, initial_symbol) if early_termination else None,
                max_steps=max_steps,
                deadline=deadline,
            )
            weight, path = result.automaton.accept_weight(
                initial_state, (initial_symbol,)
            )

    reachable = not semiring.is_zero(weight)
    rules: Optional[Tuple[Rule, ...]] = None
    if reachable and want_witness and path is not None:
        with obs.span("reconstruct"):
            if method == "poststar":
                rules = reconstruct_poststar_run(result.automaton, path)
            else:
                rules = reconstruct_prestar_run(result.automaton, path)
            _check_replay(rules, initial, target)

    stats = SolverStats(
        method=method,
        rules_before=pds.rule_count(),
        rules_after=system.rule_count(),
        saturation_iterations=result.iterations,
        automaton_transitions=result.automaton.transition_count(),
        early_terminated=result.early_terminated,
        elapsed_seconds=time.perf_counter() - start_time,
        reduction=reduction_report,
    )
    return ReachabilityOutcome(reachable, weight, rules, stats)


def _solve_incremental(
    pds: PushdownSystem,
    semiring: Semiring,
    initial: Tuple[State, Symbol],
    target: Tuple[State, Symbol],
    method: str,
    use_reductions: bool,
    early_termination: bool,
    want_witness: bool,
    max_steps: Optional[int],
    deadline: Optional[float],
) -> ReachabilityOutcome:
    """One-shot incremental solve: the system is its own baseline.

    This is the conformance path for ``core="incremental"`` — it
    exercises the same answer extraction as sweep reuse, just without a
    delta to apply.
    """
    from repro.pda.incremental import IncrementalSolver

    start_time = time.perf_counter()
    with obs.span("saturate", method=method):
        solver = IncrementalSolver(
            pds,
            semiring,
            initial,
            target,
            method=method,
            max_steps=max_steps,
            deadline=deadline,
        )
    return incremental_outcome(
        solver,
        pds,
        use_reductions=use_reductions,
        early_termination=early_termination,
        want_witness=want_witness,
        max_steps=max_steps,
        deadline=deadline,
        start_time=start_time,
    )


def _solve_vectorized(
    pds: PushdownSystem,
    semiring: Semiring,
    initial: Tuple[State, Symbol],
    target: Tuple[State, Symbol],
    method: str,
    use_reductions: bool,
    early_termination: bool,
    want_witness: bool,
    max_steps: Optional[int],
    deadline: Optional[float],
) -> ReachabilityOutcome:
    """Solve with the generation-batched numpy kernel.

    Verdict and minimal weight come from the vectorized fixpoint, which
    is digest-identical to the interned core's (saturation fixpoints are
    unique — see DESIGN.md). Witness *traces* are equal-weight tie-break
    artifacts of relaxation order, which a batched kernel does not
    reproduce, so — exactly like the incremental core — a reachable
    query that wants a witness re-solves with the interned core for
    trace extraction (byte-identical traces by construction) and the two
    weights are asserted equal. Unsupported setups (no numpy, exotic
    semiring, non-integer weights) fall back to the interned core with a
    :class:`~repro.errors.NumpyFallbackWarning` and an obs counter.
    """
    from repro.pda import vectorized

    reason = vectorized.unsupported_reason(pds, semiring)
    if reason is not None:
        vectorized.fallback(reason)
        return solve_reachability(
            pds,
            semiring,
            initial,
            target,
            method=method,
            use_reductions=use_reductions,
            early_termination=early_termination,
            want_witness=want_witness,
            max_steps=max_steps,
            deadline=deadline,
            core="interned",
        )
    start_time = time.perf_counter()
    initial_state, initial_symbol = initial
    target_state, target_symbol = target

    reduction_report: Optional[ReductionReport] = None
    rule_indices = None
    rules_after = pds.rule_count()
    if use_reductions:
        with obs.span("reduce"):
            rule_indices, reduction_report = vectorized.reduce_rule_indices(
                pds, initial_state, initial_symbol, target_state
            )
        rules_after = reduction_report.rules_after
        if obs.enabled():
            obs.add("pda.rules_removed", pds.rule_count() - rules_after)

    with obs.span("saturate", method=method):
        if method == "poststar":
            result = vectorized.vectorized_poststar_single(
                pds,
                semiring,
                initial_state,
                initial_symbol,
                target=(target_state, target_symbol) if early_termination else None,
                max_steps=max_steps,
                deadline=deadline,
                rule_indices=rule_indices,
            )
            weight = result.head_weight(target_state, target_symbol)
        else:
            result = vectorized.vectorized_prestar_single(
                pds,
                semiring,
                target_state,
                target_symbol,
                source=(initial_state, initial_symbol) if early_termination else None,
                max_steps=max_steps,
                deadline=deadline,
                rule_indices=rule_indices,
            )
            weight = result.head_weight(initial_state, initial_symbol)

    reachable = not semiring.is_zero(weight)
    rules: Optional[Tuple[Rule, ...]] = None
    if reachable and want_witness:
        with obs.span("reconstruct"):
            scratch = solve_reachability(
                pds,
                semiring,
                initial,
                target,
                method=method,
                use_reductions=use_reductions,
                early_termination=early_termination,
                want_witness=True,
                max_steps=max_steps,
                deadline=deadline,
                core="interned",
            )
        if scratch.weight != weight:
            raise PdaError(
                "vectorized/scratch weight disagreement: "
                f"{weight!r} (vectorized) vs {scratch.weight!r} (scratch)"
            )
        rules = scratch.rules

    stats = SolverStats(
        method=method,
        rules_before=pds.rule_count(),
        rules_after=rules_after,
        saturation_iterations=result.iterations,
        automaton_transitions=result.transition_count,
        early_terminated=result.early_terminated,
        elapsed_seconds=time.perf_counter() - start_time,
        reduction=reduction_report,
    )
    return ReachabilityOutcome(reachable, weight, rules, stats)


def incremental_outcome(
    solver: Any,
    variant: PushdownSystem,
    use_reductions: bool,
    early_termination: bool,
    want_witness: bool,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
    start_time: Optional[float] = None,
) -> ReachabilityOutcome:
    """Answer a reachability question from a repaired incremental solver.

    The verdict and minimal weight come straight from the solver's
    persistent automaton. Witness *traces*, however, are tie-break
    artifacts of relaxation order, and a repaired automaton's recorded
    witnesses need not match a from-scratch solve's — so when the target
    is reachable and a witness is wanted, the variant is re-solved with
    the ordinary interned core purely for trace extraction (the exact
    code path every other core runs, hence byte-identical traces), and
    the two weights are asserted equal. Unreachable variants — the bulk
    of a what-if sweep — skip that scratch pass entirely, which is where
    the incremental speedup comes from.
    """
    if start_time is None:
        start_time = time.perf_counter()
    weight, _ = solver.accept()
    semiring = solver.semiring
    reachable = not semiring.is_zero(weight)
    rules: Optional[Tuple[Rule, ...]] = None
    scratch_stats: Optional[SolverStats] = None
    if reachable and want_witness:
        scratch = solve_reachability(
            variant,
            semiring,
            solver.initial,
            solver.target,
            method=solver.method,
            use_reductions=use_reductions,
            early_termination=early_termination,
            want_witness=True,
            max_steps=max_steps,
            deadline=deadline,
            core="interned",
        )
        if scratch.weight != weight:
            raise PdaError(
                "incremental/scratch weight disagreement: "
                f"{weight!r} (incremental) vs {scratch.weight!r} (scratch)"
            )
        rules = scratch.rules
        scratch_stats = scratch.stats
    last = solver.stats.reports[-1] if solver.stats.reports else None
    stats = SolverStats(
        method=solver.method,
        rules_before=variant.rule_count(),
        rules_after=variant.rule_count(),
        saturation_iterations=(
            last.repair_iterations if last is not None else solver.baseline_iterations
        ),
        automaton_transitions=solver.automaton.transition_count(),
        early_terminated=False,
        elapsed_seconds=time.perf_counter() - start_time,
        reduction=scratch_stats.reduction if scratch_stats is not None else None,
        incremental=last,
    )
    return ReachabilityOutcome(reachable, weight, rules, stats)


def _check_replay(
    rules: Tuple[Rule, ...],
    initial: Tuple[State, Symbol],
    target: Tuple[State, Symbol],
) -> None:
    """Soundness assertion: the reconstructed run really connects the two
    configurations."""
    configurations = run_rules(
        Configuration(initial[0], (initial[1],)), rules
    )
    final = configurations[-1]
    if final.state != target[0] or final.stack != (target[1],):
        raise PdaError(
            f"witness replay reached {final!r} instead of "
            f"<{target[0]}, {target[1]}>"
        )
