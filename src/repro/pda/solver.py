"""Reachability facade over the saturation engines.

:func:`solve_reachability` answers a single weighted reachability
question ``⟨p0, γ0⟩ →* ⟨pf, γf⟩`` on a pushdown system, optionally
applying reductions first, choosing the saturation direction, and
reconstructing the minimal-weight rule run. This is the entry point the
verification layer calls; it is also usable standalone as a small
weighted-PDS library.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple

from repro import obs
from repro.errors import PdaError
from repro.pda.poststar import poststar_single
from repro.pda.prestar import prestar_single
from repro.pda.reductions import ReductionReport, reduce_pushdown
from repro.pda.reference import (
    reference_poststar_single,
    reference_prestar_single,
    reference_reduce_pushdown,
)
from repro.pda.semiring import Semiring
from repro.pda.system import Configuration, PushdownSystem, Rule, run_rules
from repro.pda.witness import reconstruct_poststar_run, reconstruct_prestar_run

State = Hashable
Symbol = Hashable


@dataclass
class SolverStats:
    """Observability data for benchmarks and the CLI's ``--stats``."""

    method: str
    rules_before: int
    rules_after: int
    saturation_iterations: int = 0
    automaton_transitions: int = 0
    early_terminated: bool = False
    elapsed_seconds: float = 0.0
    reduction: Optional[ReductionReport] = None


@dataclass
class ReachabilityOutcome:
    """Answer to one reachability question."""

    reachable: bool
    #: Minimal run weight (semiring zero when unreachable).
    weight: Any
    #: The minimal-weight rule run, when requested and reachable.
    rules: Optional[Tuple[Rule, ...]]
    stats: SolverStats


def solve_reachability(
    pds: PushdownSystem,
    semiring: Semiring,
    initial: Tuple[State, Symbol],
    target: Tuple[State, Symbol],
    method: str = "poststar",
    use_reductions: bool = True,
    early_termination: bool = True,
    want_witness: bool = True,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
    core: str = "interned",
) -> ReachabilityOutcome:
    """Decide ``⟨initial⟩ →* ⟨target⟩`` and return weight plus witness run.

    ``method`` selects the saturation direction: ``"poststar"`` (forward,
    the AalWiNes engine's choice — supports guided search and early
    termination toward the single target) or ``"prestar"`` (backward, the
    generic model-checker strategy used by the Moped baseline).

    ``core`` selects the saturation implementation: ``"interned"`` (the
    dense-integer-id engine, default) or ``"tuple"`` (the symbolic
    reference twin in :mod:`repro.pda.reference`). Both must produce
    identical outcomes — the differential tests and the interning
    benchmark rely on this switch.
    """
    if method not in ("poststar", "prestar"):
        raise PdaError(f"unknown solver method {method!r}")
    if core not in ("interned", "tuple"):
        raise PdaError(f"unknown solver core {core!r}")
    interned = core == "interned"
    start_time = time.perf_counter()
    initial_state, initial_symbol = initial
    target_state, target_symbol = target

    reduction_report: Optional[ReductionReport] = None
    system = pds
    if use_reductions:
        with obs.span("reduce"):
            reducer = reduce_pushdown if interned else reference_reduce_pushdown
            system, reduction_report = reducer(
                pds, initial_state, initial_symbol, target_state
            )
        if obs.enabled():
            obs.add("pda.rules_removed", pds.rule_count() - system.rule_count())

    poststar_fn = poststar_single if interned else reference_poststar_single
    prestar_fn = prestar_single if interned else reference_prestar_single
    with obs.span("saturate", method=method):
        if method == "poststar":
            result = poststar_fn(
                system,
                semiring,
                initial_state,
                initial_symbol,
                target=(target_state, target_symbol) if early_termination else None,
                max_steps=max_steps,
                deadline=deadline,
            )
            weight, path = result.automaton.accept_weight(
                target_state, (target_symbol,)
            )
        else:
            result = prestar_fn(
                system,
                semiring,
                target_state,
                target_symbol,
                source=(initial_state, initial_symbol) if early_termination else None,
                max_steps=max_steps,
                deadline=deadline,
            )
            weight, path = result.automaton.accept_weight(
                initial_state, (initial_symbol,)
            )

    reachable = not semiring.is_zero(weight)
    rules: Optional[Tuple[Rule, ...]] = None
    if reachable and want_witness and path is not None:
        with obs.span("reconstruct"):
            if method == "poststar":
                rules = reconstruct_poststar_run(result.automaton, path)
            else:
                rules = reconstruct_prestar_run(result.automaton, path)
            _check_replay(rules, initial, target)

    stats = SolverStats(
        method=method,
        rules_before=pds.rule_count(),
        rules_after=system.rule_count(),
        saturation_iterations=result.iterations,
        automaton_transitions=result.automaton.transition_count(),
        early_terminated=result.early_terminated,
        elapsed_seconds=time.perf_counter() - start_time,
        reduction=reduction_report,
    )
    return ReachabilityOutcome(reachable, weight, rules, stats)


def _check_replay(
    rules: Tuple[Rule, ...],
    initial: Tuple[State, Symbol],
    target: Tuple[State, Symbol],
) -> None:
    """Soundness assertion: the reconstructed run really connects the two
    configurations."""
    configurations = run_rules(
        Configuration(initial[0], (initial[1],)), rules
    )
    final = configurations[-1]
    if final.state != target[0] or final.stack != (target[1],):
        raise PdaError(
            f"witness replay reached {final!r} instead of "
            f"<{target[0]}, {target[1]}>"
        )
