"""Witness reconstruction: from saturation provenance to PDS rule runs.

Both saturators record, per automaton transition, a small tuple saying
how the transition arose (see the module docs of
:mod:`repro.pda.poststar` / :mod:`repro.pda.prestar`). Given an
accepting path of the query configuration in the saturated automaton,
the functions here unfold those annotations into the *actual rule
sequence* of a PDS run — which the verification layer then replays into
a network trace.

Witness shapes (post*):

* ``("init",)`` — the transition was in the initial automaton;
* ``("step", rule, t0)`` — a swap rule applied to popped ``t0``; pop
  rules produce the same shape on their ε-transition;
* ``("eps", eps_key, t_next)`` — combination of an ε-transition with a
  following edge;
* ``("push-head", rule)`` / ``("push-tail", rule, t0)`` — the two
  transitions of a push rule.

Witness shapes (pre*): ``("init",)`` or ``("rule", rule, partners)``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Hashable, List, Sequence, Tuple, Union

from repro.errors import PdaError
from repro.pda.automaton import IntPAutomaton, WeightedPAutomaton
from repro.pda.system import Rule

#: A transition identifier in either automaton core: a packed int for
#: :class:`IntPAutomaton`, a ``(source, symbol, target)`` tuple for the
#: reference :class:`WeightedPAutomaton`. The unfolding below never looks
#: inside a key — it only uses it to index the witness map — so the same
#: code serves both cores.
Key = Hashable
Automaton = Union[IntPAutomaton, WeightedPAutomaton]

#: Hard cap on unfolding work; generous, purely an anti-loop guard.
_MAX_UNFOLD_STEPS = 10_000_000


def reconstruct_poststar_run(
    automaton: Automaton, path: Sequence[Key]
) -> Tuple[Rule, ...]:
    """Rules of a PDS run from an initial configuration to the
    configuration accepted by ``path`` in a post*-saturated automaton.

    The returned rules are in application order; replaying them from the
    corresponding initial configuration (via
    :func:`repro.pda.system.run_rules`) reproduces the target
    configuration — the engine uses that replay as a soundness check.
    """
    witnesses = automaton.witnesses
    pending: Deque[Key] = deque(path)
    reversed_rules: List[Rule] = []
    steps = 0
    while pending:
        steps += 1
        if steps > _MAX_UNFOLD_STEPS:
            raise PdaError("witness unfolding exceeded its step budget")
        head = pending.popleft()
        witness = witnesses.get(head)
        if witness is None:
            raise PdaError(f"no witness recorded for transition {head}")
        kind = witness[0]
        if kind == "init":
            # The remaining path lies entirely in the initial automaton;
            # the run has reached its initial configuration.
            for key in pending:
                if witnesses.get(key, ("?",))[0] != "init":
                    raise PdaError(
                        "malformed witness: non-initial transition after an "
                        "initial one"
                    )
            break
        if kind == "step":
            _, rule, predecessor = witness
            reversed_rules.append(rule)
            pending.appendleft(predecessor)
            continue
        if kind == "eps":
            _, eps_key, successor = witness
            eps_witness = witnesses[eps_key]
            if eps_witness[0] != "step":
                raise PdaError("ε-transition with unexpected witness shape")
            _, pop_rule, predecessor = eps_witness
            reversed_rules.append(pop_rule)
            pending.appendleft(successor)
            pending.appendleft(predecessor)
            continue
        if kind == "push-head":
            if not pending:
                raise PdaError("push-head transition at the end of a path")
            tail_key = pending.popleft()
            tail_witness = witnesses[tail_key]
            if tail_witness[0] != "push-tail":
                # Edges leaving a mid-state are created exclusively by push
                # rules, so anything else indicates a corrupted witness DAG.
                raise PdaError(
                    f"unexpected witness {tail_witness[0]!r} after a push-head"
                )
            _, rule, predecessor = tail_witness
            reversed_rules.append(rule)
            pending.appendleft(predecessor)
            continue
        raise PdaError(f"unknown witness kind {kind!r}")
    reversed_rules.reverse()
    return tuple(reversed_rules)


def reconstruct_prestar_run(
    automaton: Automaton, path: Sequence[Key]
) -> Tuple[Rule, ...]:
    """Rules of a PDS run from the configuration accepted by ``path`` to
    a target configuration, in a pre*-saturated automaton."""
    witnesses = automaton.witnesses
    pending: Deque[Key] = deque(path)
    rules: List[Rule] = []
    steps = 0
    while pending:
        steps += 1
        if steps > _MAX_UNFOLD_STEPS:
            raise PdaError("witness unfolding exceeded its step budget")
        head = pending.popleft()
        witness = witnesses.get(head)
        if witness is None:
            raise PdaError(f"no witness recorded for transition {head}")
        if witness[0] == "init":
            # Everything from here on is already accepted by the target
            # automaton; no further rules are applied.
            for key in pending:
                if witnesses.get(key, ("?",))[0] != "init":
                    raise PdaError(
                        "malformed witness: non-initial transition after an "
                        "initial one"
                    )
            break
        if witness[0] != "rule":
            raise PdaError(f"unknown witness kind {witness[0]!r}")
        _, rule, partners = witness
        rules.append(rule)
        for key in reversed(partners):
            pending.appendleft(key)
    return tuple(rules)
