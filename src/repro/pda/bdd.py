"""A reduced ordered binary decision diagram (ROBDD) library.

Moped — the baseline model checker of the paper's evaluation — is a
*symbolic* pushdown model checker: control states and stack symbols are
encoded in binary and the saturation fixpoint is computed on BDDs
[35, ch. 4]. This module provides the BDD kernel that
:mod:`repro.verification.moped` builds its symbolic pre* on:

* hash-consed nodes (``(variable, low, high)`` interned in a unique
  table), so BDD equality is identity;
* memoized ``apply`` for conjunction/disjunction, negation, existential
  quantification over variable blocks, and monotone variable renaming
  (sufficient for relational composition when block order is preserved);
* satisfying-assignment extraction and model counting for tests.

The implementation favours clarity over raw speed — matching the role
of the original: a general-purpose symbolic engine, not a
network-tailored one.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PdaError

#: Node ids; 0 and 1 are the terminals.
FALSE = 0
TRUE = 1


class Bdd:
    """A BDD manager: owns the unique table and operation caches.

    Variables are non-negative integers; smaller ids sit higher in the
    diagram (closer to the root). All functions created by one manager
    share its node space.
    """

    def __init__(self) -> None:
        # node id -> (var, low, high); ids 0/1 are terminals.
        self._nodes: List[Tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._or_cache: Dict[Tuple[int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._exists_cache: Dict[Tuple[int, FrozenSet[int]], int] = {}
        self._rename_cache: Dict[Tuple[int, Tuple[Tuple[int, int], ...]], int] = {}

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def node(self, variable: int, low: int, high: int) -> int:
        """The canonical node for (variable, low, high)."""
        if low == high:
            return low
        key = (variable, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node_id = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node_id
        return node_id

    def var(self, variable: int) -> int:
        """The function "variable is true"."""
        return self.node(variable, FALSE, TRUE)

    def nvar(self, variable: int) -> int:
        """The function "variable is false"."""
        return self.node(variable, TRUE, FALSE)

    def variable_of(self, node: int) -> int:
        """The decision variable of an internal node."""
        return self._nodes[node][0]

    def low(self, node: int) -> int:
        """The child followed when the variable is false."""
        return self._nodes[node][1]

    def high(self, node: int) -> int:
        """The child followed when the variable is true."""
        return self._nodes[node][2]

    def node_count(self) -> int:
        """Total allocated nodes (a size/leak diagnostic)."""
        return len(self._nodes)

    def stats(self) -> Dict[str, int]:
        """Size diagnostics for the observability layer.

        Reading them never mutates the manager, so exporting BDD
        metrics cannot perturb a symbolic run.
        """
        return {
            "nodes": len(self._nodes),
            "and_cache": len(self._and_cache),
            "or_cache": len(self._or_cache),
            "not_cache": len(self._not_cache),
            "exists_cache": len(self._exists_cache),
            "rename_cache": len(self._rename_cache),
        }

    # ------------------------------------------------------------------
    # boolean operations
    # ------------------------------------------------------------------
    def apply_and(self, left: int, right: int) -> int:
        """Conjunction of two functions (memoized Shannon expansion)."""
        if left == FALSE or right == FALSE:
            return FALSE
        if left == TRUE:
            return right
        if right == TRUE:
            return left
        if left == right:
            return left
        if left > right:
            left, right = right, left
        key = (left, right)
        found = self._and_cache.get(key)
        if found is not None:
            return found
        result = self._apply(left, right, self.apply_and)
        self._and_cache[key] = result
        return result

    def apply_or(self, left: int, right: int) -> int:
        """Disjunction of two functions (memoized Shannon expansion)."""
        if left == TRUE or right == TRUE:
            return TRUE
        if left == FALSE:
            return right
        if right == FALSE:
            return left
        if left == right:
            return left
        if left > right:
            left, right = right, left
        key = (left, right)
        found = self._or_cache.get(key)
        if found is not None:
            return found
        result = self._apply(left, right, self.apply_or)
        self._or_cache[key] = result
        return result

    def _apply(self, left: int, right: int, op) -> int:
        # Callers dispatch the terminal cases; both operands are internal.
        var_left = self._nodes[left][0]
        var_right = self._nodes[right][0]
        if var_left == var_right:
            variable = var_left
            low = op(self._nodes[left][1], self._nodes[right][1])
            high = op(self._nodes[left][2], self._nodes[right][2])
        elif var_left < var_right:
            variable = var_left
            low = op(self._nodes[left][1], right)
            high = op(self._nodes[left][2], right)
        else:
            variable = var_right
            low = op(left, self._nodes[right][1])
            high = op(left, self._nodes[right][2])
        return self.node(variable, low, high)

    def apply_not(self, operand: int) -> int:
        """Negation of a function."""
        if operand == TRUE:
            return FALSE
        if operand == FALSE:
            return TRUE
        found = self._not_cache.get(operand)
        if found is not None:
            return found
        variable, low, high = self._nodes[operand]
        result = self.node(variable, self.apply_not(low), self.apply_not(high))
        self._not_cache[operand] = result
        return result

    # ------------------------------------------------------------------
    # quantification and renaming
    # ------------------------------------------------------------------
    def exists(self, operand: int, variables: Iterable[int]) -> int:
        """∃ v1…vn . f — existential quantification over a variable set."""
        var_set = frozenset(variables)
        if not var_set or operand <= TRUE:
            return operand
        key = (operand, var_set)
        found = self._exists_cache.get(key)
        if found is not None:
            return found
        variable, low, high = self._nodes[operand]
        low_q = self.exists(low, var_set)
        high_q = self.exists(high, var_set)
        if variable in var_set:
            result = self.apply_or(low_q, high_q)
        else:
            result = self.node(variable, low_q, high_q)
        self._exists_cache[key] = result
        return result

    def rename(self, operand: int, mapping: Dict[int, int]) -> int:
        """Substitute variables; the mapping must be order-preserving
        (monotone), which keeps the diagram ordered without reordering."""
        items = tuple(sorted(mapping.items()))
        previous = -1
        for source, target in items:
            if target <= previous:
                raise PdaError("rename mapping must be strictly monotone")
            previous = target
        return self._rename(operand, items)

    def _rename(self, operand: int, items: Tuple[Tuple[int, int], ...]) -> int:
        if operand <= TRUE:
            return operand
        key = (operand, items)
        found = self._rename_cache.get(key)
        if found is not None:
            return found
        variable, low, high = self._nodes[operand]
        renamed = dict(items).get(variable, variable)
        result = self.node(
            renamed, self._rename(low, items), self._rename(high, items)
        )
        self._rename_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # encodings and inspection
    # ------------------------------------------------------------------
    def cube(self, assignment: Sequence[Tuple[int, bool]]) -> int:
        """The conjunction of literals (variable, polarity)."""
        result = TRUE
        for variable, polarity in sorted(assignment, reverse=True):
            literal = self.var(variable) if polarity else self.nvar(variable)
            result = self.apply_and(result, literal)
        return result

    def encode_value(self, value: int, variables: Sequence[int]) -> int:
        """The cube encoding ``value`` in binary over ``variables``
        (least significant bit on the first variable)."""
        return self.cube(
            [(variable, bool((value >> bit) & 1)) for bit, variable in enumerate(variables)]
        )

    def satisfy_one(self, operand: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment (only for mentioned variables)."""
        if operand == FALSE:
            return None
        assignment: Dict[int, bool] = {}
        node = operand
        while node > TRUE:
            variable, low, high = self._nodes[node]
            if high != FALSE:
                assignment[variable] = True
                node = high
            else:
                assignment[variable] = False
                node = low
        return assignment

    def evaluate(self, operand: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a (total for mentioned variables) assignment."""
        node = operand
        while node > TRUE:
            variable, low, high = self._nodes[node]
            node = high if assignment.get(variable, False) else low
        return node == TRUE

    def count_models(self, operand: int, variables: Sequence[int]) -> int:
        """Number of satisfying assignments over the given variable set."""
        var_list = sorted(variables)
        positions = {variable: index for index, variable in enumerate(var_list)}
        cache: Dict[int, int] = {}

        def count(node: int, depth: int) -> int:
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1 << (len(var_list) - depth)
            variable, low, high = self._nodes[node]
            position = positions.get(variable)
            if position is None:
                raise PdaError(f"variable {variable} outside the counting set")
            key = node
            cached = cache.get(key)
            if cached is None:
                cached = count(low, position + 1) + count(high, position + 1)
                cache[key] = cached
            # Account for skipped variables between depth and position.
            return cached << (position - depth)

        return count(operand, 0)


def bits_needed(cardinality: int) -> int:
    """Number of bits to encode values 0 .. cardinality-1 (min 1)."""
    if cardinality <= 1:
        return 1
    return (cardinality - 1).bit_length()
