"""Weighted pushdown automata library (§4.1 of the paper).

Pushdown systems, bounded idempotent semirings, weighted pre*/post*
saturation with witness reconstruction, static reductions, and a
reachability solver facade.
"""

from repro.pda.automaton import EPSILON, WeightedPAutomaton
from repro.pda.poststar import SaturationResult, mid_state, poststar, poststar_single
from repro.pda.prestar import prestar, prestar_single
from repro.pda.reductions import (
    ReductionReport,
    TopOfStackAnalysis,
    analyze_top_of_stack,
    reduce_pushdown,
)
from repro.pda.semiring import (
    BOOLEAN,
    MIN_PLUS,
    BooleanSemiring,
    MinPlusSemiring,
    MinPlusVectorSemiring,
    Semiring,
    vector_semiring,
)
from repro.pda.solver import (
    ReachabilityOutcome,
    SolverStats,
    solve_reachability,
)
from repro.pda.system import (
    Configuration,
    PushdownSystem,
    Rule,
    apply_rule,
    run_rules,
)
from repro.pda.witness import (
    reconstruct_poststar_run,
    reconstruct_prestar_run,
)

__all__ = [
    "BOOLEAN",
    "BooleanSemiring",
    "Configuration",
    "EPSILON",
    "MIN_PLUS",
    "MinPlusSemiring",
    "MinPlusVectorSemiring",
    "PushdownSystem",
    "ReachabilityOutcome",
    "ReductionReport",
    "Rule",
    "SaturationResult",
    "Semiring",
    "SolverStats",
    "TopOfStackAnalysis",
    "WeightedPAutomaton",
    "analyze_top_of_stack",
    "apply_rule",
    "mid_state",
    "poststar",
    "poststar_single",
    "prestar",
    "prestar_single",
    "reconstruct_poststar_run",
    "reconstruct_prestar_run",
    "reduce_pushdown",
    "run_rules",
    "solve_reachability",
    "vector_semiring",
]
