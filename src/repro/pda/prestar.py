"""Weighted pre* saturation (backward reachability).

Implements the generalized pre* algorithm of Bouajjani–Esparza–Maler
[9] with weights per Reps–Schwoon–Jha–Melski [33]. Given a PDS and a
target P-automaton (no transitions into control states), the saturated
automaton accepts exactly ``pre*(L(A))``: every configuration from
which some target configuration is reachable, annotated with the
minimal weight of such a run.

This is the algorithm a *generic* pushdown model checker such as Moped
runs; the Moped-baseline backend of the verification layer uses it
as-is, exhaustively (no early termination), which reproduces the
performance relationship the paper evaluates.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PdaError, VerificationTimeout
from repro.pda.automaton import EPSILON, Key, State, WeightedPAutomaton
from repro.pda.poststar import SaturationResult, observed
from repro.pda.semiring import Semiring
from repro.pda.system import PushdownSystem, Rule


def prestar(
    pds: PushdownSystem,
    semiring: Semiring,
    target_transitions: Sequence[Tuple[State, Any, State]],
    final_states: Iterable[State],
    target: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
) -> SaturationResult:
    """Saturate ``pre*`` of the configurations accepted by the target
    automaton.

    If ``target = (state, symbol)`` is given (the *initial* configuration
    of the reachability question), saturation may stop as soon as the
    transition ``(state, symbol, final)`` is finalized.
    """
    control_states = pds.states
    automaton = WeightedPAutomaton(semiring, final_states)
    for source, symbol, target_state in target_transitions:
        if target_state in control_states:
            raise PdaError(
                "target automaton must not have transitions into control states"
            )
        if symbol is EPSILON:
            raise PdaError("target automaton must be ε-free")
        automaton.relax((source, symbol, target_state), semiring.one, ("init",))

    # Rule indexes for the two saturation directions.
    swap_rules: Dict[Tuple[State, Any], List[Rule]] = {}
    push_rules_head: Dict[Tuple[State, Any], List[Rule]] = {}
    push_rules_below: Dict[Any, List[Rule]] = {}
    for rule in pds.rules:
        if rule.is_pop:
            # ⟨p, γ⟩ → ⟨p', ε⟩: (p, γ, p') holds unconditionally.
            automaton.relax(
                (rule.from_state, rule.pop, rule.to_state),
                rule.weight,
                ("rule", rule, ()),
            )
        elif rule.is_swap:
            swap_rules.setdefault((rule.to_state, rule.push[0]), []).append(rule)
        else:
            push_rules_head.setdefault((rule.to_state, rule.push[0]), []).append(rule)
            push_rules_below.setdefault(rule.push[1], []).append(rule)

    final_set = automaton.final_states
    iterations = 0
    while True:
        popped = automaton.pop()
        if popped is None:
            return observed(
                SaturationResult(automaton, iterations, early_terminated=False),
                "prestar",
            )
        iterations += 1
        # Checked at iteration 1 and then every 512: an already-expired
        # deadline must fire even on instances that saturate in a few steps.
        if deadline is not None and iterations % 512 <= 1 and time.perf_counter() > deadline:
            raise VerificationTimeout("saturation exceeded its wall-clock deadline")
        if max_steps is not None and iterations > max_steps:
            raise PdaError(f"pre* exceeded the step budget of {max_steps}")
        key, weight = popped
        source, symbol, target_state = key

        if (
            target is not None
            and source == target[0]
            and symbol == target[1]
            and target_state in final_set
        ):
            return observed(
                SaturationResult(automaton, iterations, early_terminated=True),
                "prestar",
            )

        # Swap rules ⟨p, γ⟩ → ⟨p', γ1⟩ with (p', γ1) = (source, symbol).
        for rule in swap_rules.get((source, symbol), ()):
            automaton.relax(
                (rule.from_state, rule.pop, target_state),
                semiring.extend(rule.weight, weight),
                ("rule", rule, (key,)),
            )

        # Push rules where the popped transition reads the *first* pushed
        # symbol: ⟨p, γ⟩ → ⟨source, symbol · γ2⟩; need (target_state, γ2, q2).
        for rule in push_rules_head.get((source, symbol), ()):
            below = rule.push[1]
            for q2 in automaton.targets(target_state, below):
                partner: Key = (target_state, below, q2)
                automaton.relax(
                    (rule.from_state, rule.pop, q2),
                    semiring.extend(
                        rule.weight,
                        semiring.extend(weight, automaton.weights[partner]),
                    ),
                    ("rule", rule, (key, partner)),
                )

        # Push rules where the popped transition reads the *second* pushed
        # symbol: need an existing (p', γ1, source).
        for rule in push_rules_below.get(symbol, ()):
            head: Key = (rule.to_state, rule.push[0], source)
            head_weight = automaton.weights.get(head)
            if head_weight is None:
                continue
            automaton.relax(
                (rule.from_state, rule.pop, target_state),
                semiring.extend(rule.weight, semiring.extend(head_weight, weight)),
                ("rule", rule, (head, key)),
            )


def prestar_single(
    pds: PushdownSystem,
    semiring: Semiring,
    target_state: State,
    target_symbol: Any,
    source: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
) -> SaturationResult:
    """pre* of the single configuration ``⟨target_state, target_symbol⟩``."""
    final = ("__final__", target_state)
    return prestar(
        pds,
        semiring,
        target_transitions=[(target_state, target_symbol, final)],
        final_states=[final],
        target=source,
        max_steps=max_steps,
        deadline=deadline,
    )
