"""Weighted pre* saturation (backward reachability), interned core.

Implements the generalized pre* algorithm of Bouajjani–Esparza–Maler
[9] with weights per Reps–Schwoon–Jha–Melski [33]. Given a PDS and a
target P-automaton (no transitions into control states), the saturated
automaton accepts exactly ``pre*(L(A))``: every configuration from
which some target configuration is reachable, annotated with the
minimal weight of such a run.

This is the algorithm a *generic* pushdown model checker such as Moped
runs; the Moped-baseline backend of the verification layer uses it
as-is, exhaustively (no early termination), which reproduces the
performance relationship the paper evaluates.

Like :mod:`repro.pda.poststar`, the loop runs on dense integer ids with
packed-int automaton transitions; the rule indexes of the two
saturation directions are keyed by packed ``(state, symbol)`` heads.
The tuple twin lives in :mod:`repro.pda.reference` and must stay in
relax-order lockstep with this one.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PdaError, VerificationTimeout
from repro.pda.automaton import IntPAutomaton, State
from repro.pda.intern import EPSILON_ID, MASK, SHIFT
from repro.pda.poststar import SaturationResult, observed
from repro.pda.semiring import Semiring
from repro.pda.system import PushdownSystem, Rule


def prestar(
    pds: PushdownSystem,
    semiring: Semiring,
    target_transitions: Sequence[Tuple[State, Any, State]],
    final_states: Iterable[State],
    target: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
) -> SaturationResult:
    """Saturate ``pre*`` of the configurations accepted by the target
    automaton.

    If ``target = (state, symbol)`` is given (the *initial* configuration
    of the reachability question), saturation may stop as soon as the
    transition ``(state, symbol, final)`` is finalized.
    """
    state_table = pds.state_table
    symbol_table = pds.symbol_table
    control_ids = pds.control_state_ids
    final_ids = [state_table.intern(f) for f in final_states]
    automaton = IntPAutomaton(semiring, state_table, symbol_table, final_ids)
    one = semiring.one
    for source, symbol, target_state in target_transitions:
        source_id = state_table.intern(source)
        symbol_id = symbol_table.intern(symbol)
        target_id = state_table.intern(target_state)
        if target_id in control_ids:
            raise PdaError(
                "target automaton must not have transitions into control states"
            )
        if symbol_id == EPSILON_ID:
            raise PdaError("target automaton must be ε-free")
        automaton.relax(
            (((source_id << SHIFT) | symbol_id) << SHIFT) | target_id,
            one,
            ("init",),
        )

    # Rule indexes for the two saturation directions, keyed by packed
    # heads ``(state_id << SHIFT) | symbol_id`` (below: by symbol id).
    swap_rules: Dict[int, List[Rule]] = {}
    push_rules_head: Dict[int, List[Rule]] = {}
    push_rules_below: Dict[int, List[Rule]] = {}
    for rule in pds.rules:
        push_ids = rule.push_ids
        if not push_ids:
            # ⟨p, γ⟩ → ⟨p', ε⟩: (p, γ, p') holds unconditionally.
            automaton.relax(
                (((rule.from_id << SHIFT) | rule.pop_id) << SHIFT) | rule.to_id,
                rule.weight,
                ("rule", rule, ()),
            )
        elif len(push_ids) == 1:
            swap_rules.setdefault(
                (rule.to_id << SHIFT) | push_ids[0], []
            ).append(rule)
        else:
            push_rules_head.setdefault(
                (rule.to_id << SHIFT) | push_ids[0], []
            ).append(rule)
            push_rules_below.setdefault(push_ids[1], []).append(rule)

    target_head = -1
    if target is not None:
        target_sid = state_table.id_of(target[0])
        target_yid = symbol_table.id_of(target[1])
        if target_sid is not None and target_yid is not None:
            target_head = (target_sid << SHIFT) | target_yid

    final_id_set = automaton.final_ids
    extend = semiring.extend
    relax = automaton.relax
    out_edges = automaton.out_edges
    weights = automaton.weights
    iterations = 0
    while True:
        popped = automaton.pop()
        if popped is None:
            return observed(
                SaturationResult(automaton, iterations, early_terminated=False),
                "prestar",
            )
        iterations += 1
        # Checked at iteration 1 and then every 512: an already-expired
        # deadline must fire even on instances that saturate in a few steps.
        if deadline is not None and iterations % 512 <= 1 and time.perf_counter() > deadline:
            raise VerificationTimeout("saturation exceeded its wall-clock deadline")
        if max_steps is not None and iterations > max_steps:
            raise PdaError(f"pre* exceeded the step budget of {max_steps}")
        key, weight = popped
        target_id = key & MASK
        head = key >> SHIFT
        symbol_id = head & MASK
        source_id = head >> SHIFT

        if head == target_head and target_id in final_id_set:
            return observed(
                SaturationResult(automaton, iterations, early_terminated=True),
                "prestar",
            )

        # Swap rules ⟨p, γ⟩ → ⟨p', γ1⟩ with (p', γ1) = (source, symbol).
        rules = swap_rules.get(head)
        if rules is not None:
            for rule in rules:
                relax(
                    (((rule.from_id << SHIFT) | rule.pop_id) << SHIFT) | target_id,
                    extend(rule.weight, weight),
                    ("rule", rule, (key,)),
                )

        # Push rules where the popped transition reads the *first* pushed
        # symbol: ⟨p, γ⟩ → ⟨source, symbol · γ2⟩; need (target_state, γ2, q2).
        rules = push_rules_head.get(head)
        if rules is not None:
            target_edges = out_edges.get(target_id)
            for rule in rules:
                below = rule.push_ids[1]
                q2_set = target_edges.get(below) if target_edges is not None else None
                if q2_set is None:
                    continue
                partner_head = ((target_id << SHIFT) | below) << SHIFT
                rule_head = ((rule.from_id << SHIFT) | rule.pop_id) << SHIFT
                for q2 in q2_set:
                    partner = partner_head | q2
                    relax(
                        rule_head | q2,
                        extend(rule.weight, extend(weight, weights[partner])),
                        ("rule", rule, (key, partner)),
                    )

        # Push rules where the popped transition reads the *second* pushed
        # symbol: need an existing (p', γ1, source).
        rules = push_rules_below.get(symbol_id)
        if rules is not None:
            for rule in rules:
                partner = (
                    ((rule.to_id << SHIFT) | rule.push_ids[0]) << SHIFT
                ) | source_id
                head_weight = weights.get(partner)
                if head_weight is None:
                    continue
                relax(
                    (((rule.from_id << SHIFT) | rule.pop_id) << SHIFT) | target_id,
                    extend(rule.weight, extend(head_weight, weight)),
                    ("rule", rule, (partner, key)),
                )


def prestar_single(
    pds: PushdownSystem,
    semiring: Semiring,
    target_state: State,
    target_symbol: Any,
    source: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
) -> SaturationResult:
    """pre* of the single configuration ``⟨target_state, target_symbol⟩``."""
    final = ("__final__", target_state)
    return prestar(
        pds,
        semiring,
        target_transitions=[(target_state, target_symbol, final)],
        final_states=[final],
        target=source,
        max_steps=max_steps,
        deadline=deadline,
    )
