"""Weighted post* saturation (forward reachability).

Implements the generalized post* algorithm of Reps–Schwoon–Jha–Melski
[33] / Schwoon's thesis [35], run Dijkstra-style: the worklist is a
priority queue ordered by weight, so every automaton transition is
finalized with its *minimal* weight the first time it is popped. This
is both asymptotically efficient and realizes the paper's guided search
toward minimal-weight (e.g. fewest-failures) witnesses; it also enables
sound early termination the moment the target configuration's
transition is finalized.

Given a PDS and an initial P-automaton ``A`` (no transitions into
control states, no ε-transitions), the saturated automaton accepts
exactly ``post*(L(A))`` with meet-over-all-runs weights.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence, Tuple

from repro import obs
from repro.errors import PdaError, VerificationTimeout
from repro.pda.automaton import EPSILON, Key, State, WeightedPAutomaton
from repro.pda.semiring import Semiring
from repro.pda.system import PushdownSystem

#: Marker distinguishing the synthetic mid-states of push rules.
_MID = "__post*__"


def mid_state(to_state: State, symbol: Any) -> Tuple[str, State, Any]:
    """The unique extra state ``q_{p',γ'}`` for a push-rule head."""
    return (_MID, to_state, symbol)


@dataclass
class SaturationResult:
    """Outcome of a saturation run."""

    automaton: WeightedPAutomaton
    #: Number of transitions finalized.
    iterations: int
    #: True when the run stopped early because the target was finalized.
    early_terminated: bool

    @property
    def transition_count(self) -> int:
        return self.automaton.transition_count()


def observed(result: SaturationResult, method: str) -> SaturationResult:
    """Fold a finished saturation into the global metrics.

    Purely observational — the result passes through untouched, and all
    accounting happens *after* the saturation loop so the hot path pays
    nothing (one branch here) while observation is off.
    """
    if obs.enabled():
        obs.add(f"pda.{method}.runs")
        obs.add("pda.saturation_iterations", result.iterations)
        obs.add("pda.transitions_added", result.automaton.transition_count())
        if result.early_terminated:
            obs.add("pda.early_terminations")
    return result


def poststar(
    pds: PushdownSystem,
    semiring: Semiring,
    initial_transitions: Sequence[Tuple[State, Any, State]],
    final_states: Iterable[State],
    target: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
) -> SaturationResult:
    """Saturate ``post*`` of the configurations accepted by the initial
    automaton.

    ``initial_transitions`` and ``final_states`` describe the automaton
    ``A`` of initial configurations. If ``target = (state, symbol)`` is
    given, saturation stops as soon as a transition ``(state, symbol,
    final)`` is finalized — its weight is then already minimal.
    """
    control_states = pds.states
    automaton = WeightedPAutomaton(semiring, final_states)
    for source, symbol, target_state in initial_transitions:
        if target_state in control_states:
            raise PdaError(
                "initial automaton must not have transitions into control states"
            )
        if symbol is EPSILON:
            raise PdaError("initial automaton must be ε-free")
        automaton.relax((source, symbol, target_state), semiring.one, ("init",))

    final_set = automaton.final_states
    iterations = 0
    while True:
        popped = automaton.pop()
        if popped is None:
            return observed(
                SaturationResult(automaton, iterations, early_terminated=False),
                "poststar",
            )
        iterations += 1
        # Checked at iteration 1 and then every 512: an already-expired
        # deadline must fire even on instances that saturate in a few steps.
        if deadline is not None and iterations % 512 <= 1 and time.perf_counter() > deadline:
            raise VerificationTimeout("saturation exceeded its wall-clock deadline")
        if max_steps is not None and iterations > max_steps:
            raise PdaError(f"post* exceeded the step budget of {max_steps}")
        key, weight = popped
        source, symbol, target_state = key

        if symbol is EPSILON:
            # Combine the ε-transition with every edge leaving its target.
            for out_symbol, out_targets in (
                automaton.out_edges.get(target_state, {}).items()
            ):
                for out_target in out_targets:
                    partner: Key = (target_state, out_symbol, out_target)
                    combined = semiring.extend(weight, automaton.weights[partner])
                    automaton.relax(
                        (source, out_symbol, out_target),
                        combined,
                        ("eps", key, partner),
                    )
            continue

        if (
            target is not None
            and source == target[0]
            and symbol == target[1]
            and target_state in final_set
        ):
            return observed(
                SaturationResult(automaton, iterations, early_terminated=True),
                "poststar",
            )

        # Apply every rule whose head matches the popped transition.
        for rule in pds.rules_from(source, symbol):
            extended = semiring.extend(weight, rule.weight)
            if rule.is_swap:
                automaton.relax(
                    (rule.to_state, rule.push[0], target_state),
                    extended,
                    ("step", rule, key),
                )
            elif rule.is_pop:
                automaton.relax(
                    (rule.to_state, EPSILON, target_state),
                    extended,
                    ("step", rule, key),
                )
            else:  # push
                top, below = rule.push
                middle = mid_state(rule.to_state, top)
                automaton.relax(
                    (rule.to_state, top, middle), semiring.one, ("push-head", rule)
                )
                automaton.relax(
                    (middle, below, target_state),
                    extended,
                    ("push-tail", rule, key),
                )

        # Combine with finalized-or-pending ε-transitions ending at `source`.
        for eps_source in automaton.eps_by_target.get(source, ()):
            eps_key: Key = (eps_source, EPSILON, source)
            combined = semiring.extend(automaton.weights[eps_key], weight)
            automaton.relax(
                (eps_source, symbol, target_state), combined, ("eps", eps_key, key)
            )


def poststar_single(
    pds: PushdownSystem,
    semiring: Semiring,
    initial_state: State,
    initial_symbol: Any,
    target: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
) -> SaturationResult:
    """post* from the single configuration ``⟨initial_state, initial_symbol⟩``.

    This is the shape the network encodings use: one starting control
    state with just the stack-bottom marker.
    """
    final = ("__final__", initial_state)
    return poststar(
        pds,
        semiring,
        initial_transitions=[(initial_state, initial_symbol, final)],
        final_states=[final],
        target=target,
        max_steps=max_steps,
        deadline=deadline,
    )
