"""Weighted post* saturation (forward reachability), interned core.

Implements the generalized post* algorithm of Reps–Schwoon–Jha–Melski
[33] / Schwoon's thesis [35], run Dijkstra-style: the worklist is a
priority queue ordered by weight, so every automaton transition is
finalized with its *minimal* weight the first time it is popped. This
is both asymptotically efficient and realizes the paper's guided search
toward minimal-weight (e.g. fewest-failures) witnesses; it also enables
sound early termination the moment the target configuration's
transition is finalized.

Given a PDS and an initial P-automaton ``A`` (no transitions into
control states, no ε-transitions), the saturated automaton accepts
exactly ``post*(L(A))`` with meet-over-all-runs weights.

The loop runs on the dense-integer representation: symbolic arguments
are interned at entry, rule lookup goes through the system's CSR-style
:meth:`~repro.pda.system.PushdownSystem.head_index`, and every automaton
transition is a packed int (see :mod:`repro.pda.intern`). The tuple
twin of this loop lives in :mod:`repro.pda.reference`; both must relax
in the same order so their equal-weight tie-breaking — and hence their
witnesses — coincide exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple, Union

from repro import obs
from repro.errors import PdaError, VerificationTimeout
from repro.pda.automaton import EPSILON, IntPAutomaton, State, WeightedPAutomaton
from repro.pda.intern import EPSILON_ID, MASK, SHIFT
from repro.pda.semiring import Semiring
from repro.pda.system import PushdownSystem

#: Marker distinguishing the synthetic mid-states of push rules.
_MID = "__post*__"


def mid_state(to_state: State, symbol: Any) -> Tuple[str, State, Any]:
    """The unique extra state ``q_{p',γ'}`` for a push-rule head."""
    return (_MID, to_state, symbol)


@dataclass
class SaturationResult:
    """Outcome of a saturation run."""

    automaton: Union[IntPAutomaton, WeightedPAutomaton]
    #: Number of transitions finalized.
    iterations: int
    #: True when the run stopped early because the target was finalized.
    early_terminated: bool

    @property
    def transition_count(self) -> int:
        return self.automaton.transition_count()


def observed(result: SaturationResult, method: str) -> SaturationResult:
    """Fold a finished saturation into the global metrics.

    Purely observational — the result passes through untouched, and all
    accounting happens *after* the saturation loop so the hot path pays
    nothing (one branch here) while observation is off.
    """
    if obs.enabled():
        obs.add(f"pda.{method}.runs")
        obs.add("pda.saturation_iterations", result.iterations)
        obs.add("pda.transitions_added", result.automaton.transition_count())
        if result.early_terminated:
            obs.add("pda.early_terminations")
    return result


def poststar(
    pds: PushdownSystem,
    semiring: Semiring,
    initial_transitions: Sequence[Tuple[State, Any, State]],
    final_states: Iterable[State],
    target: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
) -> SaturationResult:
    """Saturate ``post*`` of the configurations accepted by the initial
    automaton.

    ``initial_transitions`` and ``final_states`` describe the automaton
    ``A`` of initial configurations (symbolic values — they are interned
    into the system's tables here). If ``target = (state, symbol)`` is
    given, saturation stops as soon as a transition ``(state, symbol,
    final)`` is finalized — its weight is then already minimal.
    """
    state_table = pds.state_table
    symbol_table = pds.symbol_table
    control_ids = pds.control_state_ids
    final_ids = [state_table.intern(f) for f in final_states]
    automaton = IntPAutomaton(semiring, state_table, symbol_table, final_ids)
    one = semiring.one
    for source, symbol, target_state in initial_transitions:
        source_id = state_table.intern(source)
        symbol_id = symbol_table.intern(symbol)
        target_id = state_table.intern(target_state)
        if target_id in control_ids:
            raise PdaError(
                "initial automaton must not have transitions into control states"
            )
        if symbol_id == EPSILON_ID:
            raise PdaError("initial automaton must be ε-free")
        automaton.relax(
            (((source_id << SHIFT) | symbol_id) << SHIFT) | target_id,
            one,
            ("init",),
        )

    head_index = pds.head_index()
    head_rows = len(head_index)
    target_head = -1
    if target is not None:
        target_sid = state_table.id_of(target[0])
        target_yid = symbol_table.id_of(target[1])
        if target_sid is not None and target_yid is not None:
            target_head = (target_sid << SHIFT) | target_yid

    final_id_set = automaton.final_ids
    #: packed push head ``(to_id << SHIFT) | top_id`` → interned mid id.
    mid_ids: Dict[int, int] = {}
    extend = semiring.extend
    relax = automaton.relax
    out_edges = automaton.out_edges
    eps_by_target = automaton.eps_by_target
    weights = automaton.weights
    iterations = 0
    while True:
        popped = automaton.pop()
        if popped is None:
            return observed(
                SaturationResult(automaton, iterations, early_terminated=False),
                "poststar",
            )
        iterations += 1
        # Checked at iteration 1 and then every 512: an already-expired
        # deadline must fire even on instances that saturate in a few steps.
        if deadline is not None and iterations % 512 <= 1 and time.perf_counter() > deadline:
            raise VerificationTimeout("saturation exceeded its wall-clock deadline")
        if max_steps is not None and iterations > max_steps:
            raise PdaError(f"post* exceeded the step budget of {max_steps}")
        key, weight = popped
        target_id = key & MASK
        head = key >> SHIFT
        symbol_id = head & MASK
        source_id = head >> SHIFT

        if symbol_id == EPSILON_ID:
            # Combine the ε-transition with every edge leaving its target.
            edges = out_edges.get(target_id)
            if edges is not None:
                source_shifted = source_id << SHIFT
                target_shifted = target_id << SHIFT
                for out_symbol, out_targets in edges.items():
                    for out_target in out_targets:
                        partner = ((target_shifted | out_symbol) << SHIFT) | out_target
                        combined = extend(weight, weights[partner])
                        relax(
                            ((source_shifted | out_symbol) << SHIFT) | out_target,
                            combined,
                            ("eps", key, partner),
                        )
            continue

        if head == target_head and target_id in final_id_set:
            return observed(
                SaturationResult(automaton, iterations, early_terminated=True),
                "poststar",
            )

        # Apply every rule whose head matches the popped transition.
        row = head_index[source_id] if source_id < head_rows else None
        rules = row.get(symbol_id) if row is not None else None
        if rules is not None:
            for rule in rules:
                extended = extend(weight, rule.weight)
                push_ids = rule.push_ids
                if len(push_ids) == 1:  # swap
                    relax(
                        (((rule.to_id << SHIFT) | push_ids[0]) << SHIFT) | target_id,
                        extended,
                        ("step", rule, key),
                    )
                elif not push_ids:  # pop
                    relax(
                        ((rule.to_id << SHIFT) | EPSILON_ID) << SHIFT | target_id,
                        extended,
                        ("step", rule, key),
                    )
                else:  # push
                    top_id, below_id = push_ids
                    push_head = (rule.to_id << SHIFT) | top_id
                    middle = mid_ids.get(push_head)
                    if middle is None:
                        middle = state_table.intern(
                            (_MID, rule.to_state, rule.push[0])
                        )
                        mid_ids[push_head] = middle
                    relax(
                        (push_head << SHIFT) | middle, one, ("push-head", rule)
                    )
                    relax(
                        (((middle << SHIFT) | below_id) << SHIFT) | target_id,
                        extended,
                        ("push-tail", rule, key),
                    )

        # Combine with finalized-or-pending ε-transitions ending at `source`.
        eps_sources = eps_by_target.get(source_id)
        if eps_sources is not None:
            suffix = (symbol_id << SHIFT) | target_id
            for eps_source in eps_sources:
                eps_key = ((eps_source << SHIFT) | EPSILON_ID) << SHIFT | source_id
                combined = extend(weights[eps_key], weight)
                relax(
                    (eps_source << (2 * SHIFT)) | suffix,
                    combined,
                    ("eps", eps_key, key),
                )


def poststar_single(
    pds: PushdownSystem,
    semiring: Semiring,
    initial_state: State,
    initial_symbol: Any,
    target: Optional[Tuple[State, Any]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
) -> SaturationResult:
    """post* from the single configuration ``⟨initial_state, initial_symbol⟩``.

    This is the shape the network encodings use: one starting control
    state with just the stack-bottom marker.
    """
    final = ("__final__", initial_state)
    return poststar(
        pds,
        semiring,
        initial_transitions=[(initial_state, initial_symbol, final)],
        final_states=[final],
        target=target,
        max_steps=max_steps,
        deadline=deadline,
    )
