"""Probabilistic what-if analysis: failure likelihoods over the engine.

AalWiNes answers "*can* the policy break under ≤ k failures"; this
package answers "*how likely* is it to break" when links fail with
individual probabilities:

* :mod:`repro.prob.semiring` — the probability semiring as
  min-neg-log-prob over the existing min-plus machinery, powering
  likelihood-ranked witnesses (``likelihood_engine``);
* :mod:`repro.prob.model` — independent failure events from per-link
  probabilities and SRLGs (one group = one event);
* :mod:`repro.prob.enumerate` — best-first scenario enumeration in
  non-increasing probability order, plus the exhaustive oracle;
* :mod:`repro.prob.mass` — sound lower/upper bounds on P(query holds)
  and the early-exit criterion;
* :mod:`repro.prob.sweep` — the driver tying it to the verification
  farm: ``run_probabilistic_sweep(network, query, threshold)``.
"""

from repro.prob.enumerate import (
    FailureScenario,
    best_first_scenarios,
    exhaustive_scenarios,
)
from repro.prob.mass import MassTracker, ProbVerdict
from repro.prob.model import FailureEvent, FailureModel
from repro.prob.semiring import (
    NEG_LOG_PROB,
    NegLogProbSemiring,
    likelihood_vector,
)
from repro.prob.sweep import (
    ProbSweepResult,
    ScenarioOutcome,
    run_probabilistic_sweep,
)

__all__ = [
    "FailureEvent",
    "FailureModel",
    "FailureScenario",
    "MassTracker",
    "NEG_LOG_PROB",
    "NegLogProbSemiring",
    "ProbSweepResult",
    "ProbVerdict",
    "ScenarioOutcome",
    "best_first_scenarios",
    "exhaustive_scenarios",
    "likelihood_vector",
    "run_probabilistic_sweep",
]
