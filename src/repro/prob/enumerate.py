"""Probability-ordered enumeration of failure scenarios.

Given an independent-event :class:`~repro.prob.model.FailureModel`,
this module enumerates complete outcomes (*scenarios*) in
non-increasing probability order without materializing the ``2^n``
sample space:

* the **base** scenario puts every event in its more likely state
  (fired iff ``p > 1/2``) and is therefore the global maximum;
* flipping event *i* away from its likely state multiplies the
  probability by ``min(p_i, 1−p_i) / max(p_i, 1−p_i)`` ≤ 1, i.e. adds
  a non-negative neg-log *delta* ``d_i``;
* a scenario is a subset of flips, its cost the sum of its deltas —
  so enumeration is the classic best-first walk over subsets in
  increasing sum order: with deltas sorted ascending, the successors
  of subset ``F`` ending at index ``j`` are ``F ∪ {j+1}`` ("extend")
  and ``F \\ {j} ∪ {j+1}`` ("substitute"). Every subset is generated
  exactly once and the heap never holds more than O(#popped) entries.

Ties are broken on the flip-index tuple, so the order is deterministic
across runs and hash seeds. Scenario probabilities are recomputed as
exact float products (not ``exp(−cost)``), which is what lets the
best-first and exhaustive enumerators agree to 1e-9.

:func:`exhaustive_scenarios` is the brute-force oracle used by the
tests and benchmarks; it refuses models large enough to blow up.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import ProbError
from repro.prob.model import FailureModel

#: Largest model :func:`exhaustive_scenarios` will expand (2^18 ≈ 262k).
MAX_EXHAUSTIVE_EVENTS = 18


@dataclass(frozen=True)
class FailureScenario:
    """One complete outcome of a failure model."""

    #: Names of the events that fired, sorted.
    fired: Tuple[str, ...]
    #: Union of the links those events fail.
    failed_links: frozenset
    #: Exact probability ``∏ p_e · ∏ (1 − p_e)`` over fired/unfired events.
    probability: float

    def __repr__(self) -> str:
        fired = ",".join(self.fired) or "-"
        return f"FailureScenario(fired={fired}, p={self.probability:.3g})"


def _scenario(model: FailureModel, fired_flags: List[bool]) -> FailureScenario:
    probability = 1.0
    fired_names: List[str] = []
    failed: set = set()
    for event, fired in zip(model.events, fired_flags):
        if fired:
            probability *= event.probability
            fired_names.append(event.name)
            failed.update(event.links)
        else:
            probability *= 1.0 - event.probability
    return FailureScenario(
        tuple(sorted(fired_names)), frozenset(failed), probability
    )


def best_first_scenarios(
    model: FailureModel,
    limit: Optional[int] = None,
    min_probability: float = 0.0,
) -> Iterator[FailureScenario]:
    """Yield scenarios in non-increasing probability order.

    ``limit`` bounds how many scenarios are yielded; ``min_probability``
    stops as soon as the next-best scenario falls below it (everything
    after it is at most as likely). Events with probability 0 never
    fire, so the generator covers exactly the scenarios of non-zero
    probability: their masses sum to 1.
    """
    events = model.events
    base_fired = [event.probability > 0.5 for event in events]
    # Flippable events, by ascending flip delta; p == 0 events cannot
    # fire, so flipping them is off the table (their only state is the
    # base "unfired" one).
    deltas: List[Tuple[float, int]] = []
    for index, event in enumerate(events):
        p = event.probability
        if p == 0.0:
            continue
        delta = abs(math.log(p) - math.log1p(-p))
        deltas.append((delta, index))
    deltas.sort()

    count = 0

    def emit(flips: Tuple[int, ...]) -> FailureScenario:
        fired = list(base_fired)
        for position in flips:
            _, event_index = deltas[position]
            fired[event_index] = not fired[event_index]
        return _scenario(model, fired)

    # Heap of (cost, flips) over positions into the sorted delta list.
    heap: List[Tuple[float, Tuple[int, ...]]] = [(0.0, ())]
    while heap:
        cost, flips = heapq.heappop(heap)
        scenario = emit(flips)
        if scenario.probability < min_probability:
            return
        yield scenario
        count += 1
        if limit is not None and count >= limit:
            return
        last = flips[-1] if flips else -1
        if last + 1 < len(deltas):
            next_delta = deltas[last + 1][0]
            heapq.heappush(heap, (cost + next_delta, flips + (last + 1,)))
            if flips:
                heapq.heappush(
                    heap,
                    (cost - deltas[last][0] + next_delta, flips[:-1] + (last + 1,)),
                )


def exhaustive_scenarios(model: FailureModel) -> List[FailureScenario]:
    """Every scenario of non-zero probability, sorted most likely first.

    The brute-force oracle: materializes all ``2^n`` outcomes (over the
    events that *can* fire) and sorts. Refuses models beyond
    :data:`MAX_EXHAUSTIVE_EVENTS` events.
    """
    fireable = [
        index for index, event in enumerate(model.events) if event.probability > 0.0
    ]
    if len(fireable) > MAX_EXHAUSTIVE_EVENTS:
        raise ProbError(
            f"exhaustive enumeration over {len(fireable)} events "
            f"(> {MAX_EXHAUSTIVE_EVENTS}) would expand 2^{len(fireable)} "
            "scenarios; use best_first_scenarios"
        )
    scenarios: List[FailureScenario] = []
    for flags in itertools.product((False, True), repeat=len(fireable)):
        fired = [False] * len(model.events)
        for index, flag in zip(fireable, flags):
            fired[index] = flag
        scenarios.append(_scenario(model, fired))
    scenarios.sort(key=lambda s: (-s.probability, s.fired))
    return scenarios
