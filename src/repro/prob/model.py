"""Probabilistic failure models: independent events over links and SRLGs.

A :class:`FailureModel` is the sample space of a probabilistic what-if
analysis: a set of *independent* failure events, each firing with its
own probability and taking down a fixed set of links. Shared-risk link
groups (:class:`~repro.model.srlg.SharedRiskGroups`) map naturally —
one group is **one** event (a cut conduit is a single coin flip, not
one per fibre inside it); links outside every group become singleton
events.

A *scenario* is one complete outcome: every event either fired or did
not. Its probability is the product ``∏ p_e · ∏ (1 − p_e)`` over fired
and unfired events, so scenario probabilities over the full model sum
to exactly 1 — the accounting the early-exit argument in
:mod:`repro.prob.sweep` relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import ProbError
from repro.model.network import MplsNetwork
from repro.model.quantities import (
    DEFAULT_FAILURE_PROBABILITY,
    link_failure_probability,
)
from repro.model.srlg import SharedRiskGroups


@dataclass(frozen=True)
class FailureEvent:
    """One independent failure event: ``links`` fail together with
    probability ``probability``."""

    name: str
    links: Tuple[str, ...]
    probability: float

    def __post_init__(self) -> None:
        if not self.links:
            raise ProbError(f"failure event {self.name!r} fails no links")
        p = self.probability
        if isinstance(p, bool) or not isinstance(p, (int, float)):
            raise ProbError(
                f"failure event {self.name!r}: probability must be a "
                f"number, got {p!r}"
            )
        if not (0.0 <= p < 1.0) or math.isnan(p):
            raise ProbError(
                f"failure event {self.name!r}: probability {p!r} out of "
                "range [0, 1)"
            )


class FailureModel:
    """An independent-event failure model over one network."""

    def __init__(self, network: MplsNetwork, events: Iterable[FailureEvent]) -> None:
        self.network = network
        self.events: Tuple[FailureEvent, ...] = tuple(events)
        names = [event.name for event in self.events]
        if len(set(names)) != len(names):
            raise ProbError("failure events must have distinct names")
        known = set(network.link_names())
        for event in self.events:
            unknown = [name for name in event.links if name not in known]
            if unknown:
                raise ProbError(
                    f"failure event {event.name!r} names unknown links: "
                    f"{', '.join(unknown)}"
                )

    @classmethod
    def from_network(
        cls,
        network: MplsNetwork,
        groups: Optional[SharedRiskGroups] = None,
        group_probabilities: Optional[Mapping[str, float]] = None,
        default: float = DEFAULT_FAILURE_PROBABILITY,
        links: Optional[Iterable[str]] = None,
    ) -> "FailureModel":
        """Build the model from per-link probabilities and optional SRLGs.

        Each explicit shared-risk group becomes one event; its
        probability comes from ``group_probabilities`` when given there,
        otherwise it is the *maximum* member-link probability (the group
        fails when its most fragile shared resource does). Links in no
        group become singleton events with their own probability
        (``default`` when the link does not declare one). ``links``
        optionally restricts which links may fail at all — others are
        treated as reliable.
        """
        topology = network.topology
        if links is None:
            candidates = [link.name for link in topology.links]
        else:
            known = set(network.link_names())
            candidates = list(links)
            unknown = [name for name in candidates if name not in known]
            if unknown:
                raise ProbError(
                    f"unknown links in failure model: {', '.join(unknown)}"
                )
        candidate_set = set(candidates)
        events: list = []
        grouped: set = set()
        if groups is not None:
            for group_name in groups.group_names():
                member_links = sorted(
                    link.name
                    for link in groups.links_of(group_name)
                    if link.name in candidate_set
                )
                if not member_links:
                    continue
                grouped.update(member_links)
                if group_probabilities and group_name in group_probabilities:
                    probability = group_probabilities[group_name]
                else:
                    probability = max(
                        link_failure_probability(topology.link(name), default)
                        for name in member_links
                    )
                events.append(
                    FailureEvent(group_name, tuple(member_links), probability)
                )
        if group_probabilities:
            unknown_groups = set(group_probabilities) - {
                event.name for event in events
            }
            if groups is None:
                raise ProbError(
                    "group_probabilities given without shared-risk groups"
                )
            if unknown_groups:
                raise ProbError(
                    "group_probabilities names unknown groups: "
                    f"{', '.join(sorted(unknown_groups))}"
                )
        for name in candidates:
            if name in grouped:
                continue
            probability = link_failure_probability(topology.link(name), default)
            events.append(
                FailureEvent(
                    SharedRiskGroups.SINGLETON_PREFIX + name, (name,), probability
                )
            )
        return cls(network, events)

    # ------------------------------------------------------------------
    def event(self, name: str) -> FailureEvent:
        """Event by name (raises :class:`ProbError` on a miss)."""
        for candidate in self.events:
            if candidate.name == name:
                return candidate
        raise ProbError(f"unknown failure event {name!r}")

    def failed_links(self, fired: Iterable[str]) -> frozenset:
        """The union of links failed by a set of fired events."""
        by_name: Dict[str, FailureEvent] = {e.name: e for e in self.events}
        failed: set = set()
        for name in fired:
            event = by_name.get(name)
            if event is None:
                raise ProbError(f"unknown failure event {name!r}")
            failed.update(event.links)
        return frozenset(failed)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (
            f"FailureModel({self.network.name!r}, events={len(self.events)})"
        )
