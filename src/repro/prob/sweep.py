"""Ranked probabilistic what-if sweeps: "does it hold with P ≥ p?".

The driver behind ``aalwines verify --prob-threshold`` and the server's
probability parameters:

1. build the independent-event failure model (per-link probabilities,
   SRLGs as single events — :mod:`repro.prob.model`);
2. enumerate scenarios best-first by probability
   (:mod:`repro.prob.enumerate`), up to a scenario budget;
3. lower them to farm jobs (one per distinct failed-link set, carrying
   its total probability mass — :func:`repro.farm.scenarios.
   probabilistic_scenarios`) and run them on the existing worker pool;
4. account satisfied/unsatisfied/uncertain mass in a
   :class:`~repro.prob.mass.MassTracker` and **stop early** once the
   verdict can no longer flip (see :mod:`repro.prob.mass` for why the
   bounds are sound).

The result carries the bounds, the most likely witness trace (from the
most probable scenario where the query held) and the most likely
counterexample scenario (the most probable way it broke).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ProbError
from repro.model.network import MplsNetwork
from repro.model.quantities import DEFAULT_FAILURE_PROBABILITY
from repro.model.srlg import SharedRiskGroups
from repro.model.trace import Trace
from repro.prob.enumerate import FailureScenario, best_first_scenarios
from repro.prob.mass import MassTracker, ProbVerdict
from repro.prob.model import FailureModel


@dataclass
class ScenarioOutcome:
    """One verified failed-link set with its aggregated probability mass."""

    #: Links failed in this scenario group (sorted names).
    failed_links: Tuple[str, ...]
    #: Total probability of the enumerated scenarios with this link set.
    mass: float
    #: "satisfied" / "unsatisfied" / "inconclusive" / "timeout" / "error".
    outcome: str
    seconds: float = 0.0
    #: Witness trace, when satisfied and available.
    trace: Optional[Trace] = None


@dataclass
class ProbSweepResult:
    """Outcome of one probabilistic sweep."""

    query: str
    threshold: Optional[float]
    verdict: ProbVerdict
    #: Bounds on P(query holds): true value lies in [lower, upper].
    lower: float
    upper: float
    #: Probability mass verified / not yet verified.
    covered: float
    residual: float
    scenarios_enumerated: int
    scenarios_verified: int
    early_exit: bool
    #: Witness trace of the most likely scenario where the query held.
    most_likely_witness: Optional[Trace] = None
    most_likely_witness_probability: Optional[float] = None
    #: Most likely failed-link set under which the query did not hold.
    most_likely_counterexample: Optional[Tuple[str, ...]] = None
    most_likely_counterexample_probability: Optional[float] = None
    outcomes: List[ScenarioOutcome] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable rendering (used by the CLI)."""
        parts = [f"P(holds) ∈ [{self.lower:.6g}, {self.upper:.6g}]"]
        if self.threshold is not None:
            parts.insert(0, f"{self.verdict.value.upper()} (threshold {self.threshold:g})")
        parts.append(
            f"scenarios={self.scenarios_verified}/{self.scenarios_enumerated}"
        )
        parts.append(f"residual={self.residual:.3g}")
        if self.early_exit:
            parts.append("early-exit")
        return "  ".join(parts)


def run_probabilistic_sweep(
    network: MplsNetwork,
    query: str,
    threshold: Optional[float] = None,
    default: float = DEFAULT_FAILURE_PROBABILITY,
    groups: Optional[SharedRiskGroups] = None,
    group_probabilities: Optional[Mapping[str, float]] = None,
    links: Optional[Sequence[str]] = None,
    max_scenarios: int = 512,
    residual_target: float = 1e-9,
    config: Optional["EngineConfig"] = None,
    max_workers: int = 1,
    timeout: Optional[float] = None,
) -> ProbSweepResult:
    """Answer "does ``query`` hold with probability ≥ ``threshold``?".

    Without a threshold the sweep simply tightens the ``[lower, upper]``
    interval until ``max_scenarios`` scenarios are enumerated or the
    residual mass drops below ``residual_target``. ``max_workers > 1``
    fans the scenario verifications out over the farm's process pool;
    early exit then cancels the not-yet-dispatched jobs.
    """
    from repro.farm.pool import run_jobs
    from repro.farm.scenarios import probabilistic_scenarios, scenarios_to_jobs

    if threshold is not None and not (0.0 <= threshold <= 1.0):
        raise ProbError(f"probability threshold {threshold!r} out of range [0, 1]")
    if max_scenarios < 1:
        raise ProbError("max_scenarios must be positive")

    model = FailureModel.from_network(
        network,
        groups=groups,
        group_probabilities=group_probabilities,
        default=default,
        links=links,
    )
    enumerated: List[FailureScenario] = []
    mass_seen = 0.0
    for scenario in best_first_scenarios(model, limit=max_scenarios):
        enumerated.append(scenario)
        mass_seen += scenario.probability
        if 1.0 - mass_seen <= residual_target:
            break
    obs.add("prob.scenarios_enumerated", len(enumerated))

    farm_scenarios, masses = probabilistic_scenarios(network, query, enumerated)
    jobs, payloads, prebuilt = scenarios_to_jobs(farm_scenarios, config, timeout)

    tracker = MassTracker(threshold=threshold)
    outcomes: List[Optional[ScenarioOutcome]] = [None] * len(jobs)

    def record(index: int, _total: int, item) -> None:
        scenario = farm_scenarios[index]
        outcomes[index] = ScenarioOutcome(
            failed_links=scenario.failed_links,
            mass=masses[index],
            outcome=item.outcome,
            seconds=item.seconds,
            trace=item.result.trace if item.result is not None else None,
        )
        tracker.record(item.outcome, masses[index])

    run_jobs(
        jobs,
        payloads,
        max_workers=max_workers,
        progress=record,
        cancelled=lambda: tracker.decided,
        prebuilt=prebuilt,
    )

    verified = [outcome for outcome in outcomes if outcome is not None]
    early_exit = tracker.decided and len(verified) < len(jobs)
    if early_exit:
        obs.add("prob.early_exits")
    obs.gauge("prob.mass_covered", tracker.covered)

    result = ProbSweepResult(
        query=query,
        threshold=threshold,
        verdict=tracker.verdict,
        lower=tracker.lower,
        upper=tracker.upper,
        covered=tracker.covered,
        residual=tracker.residual,
        scenarios_enumerated=len(enumerated),
        scenarios_verified=len(verified),
        early_exit=early_exit,
        outcomes=verified,
    )

    # Most likely witness / counterexample: the *scenarios* are already
    # probability-ordered, and each job's mass is dominated by its
    # first-seen (most likely) scenario, so scanning the per-scenario
    # probabilities keeps exactness.
    best_by_links: Dict[frozenset, float] = {}
    for scenario in enumerated:
        key = scenario.failed_links
        if key not in best_by_links:
            best_by_links[key] = scenario.probability
    witness_best = -1.0
    counter_best = -1.0
    for outcome in verified:
        peak = best_by_links.get(frozenset(outcome.failed_links), 0.0)
        if outcome.outcome == "satisfied" and peak > witness_best:
            witness_best = peak
            result.most_likely_witness = outcome.trace
            result.most_likely_witness_probability = peak
        elif outcome.outcome == "unsatisfied" and peak > counter_best:
            counter_best = peak
            result.most_likely_counterexample = outcome.failed_links
            result.most_likely_counterexample_probability = peak
    return result
