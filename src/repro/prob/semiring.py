"""The probability semiring, realized as min-neg-log-prob.

The Viterbi semiring ``([0, 1], max, ×, 0, 1)`` ranks paths by
likelihood but maximizes and multiplies, which the saturation engines
(built around Dijkstra-style *min*-plus search) do not speak. Taking
negative logarithms is a semiring isomorphism onto
``([0, ∞], min, +, ∞, 0)`` — exactly :class:`~repro.pda.semiring.
MinPlusSemiring` — so likelihood ranking needs **no changes to the
saturation core**: multiply probabilities ⇔ add neg-log costs, prefer
the more probable ⇔ prefer the smaller cost.

Costs are kept as *integers* in fixed-point "scaled nats"
(:data:`~repro.model.quantities.LIKELIHOOD_SCALE` units per nat), the
same domain every other atomic quantity uses, so the *Likelihood*
quantity composes with the lexicographic vector semiring like any
other component. The rounding error of the fixed point (≤ half a
nano-nat per rule) only affects *ranking* between traces whose true
likelihoods agree to ~1e-9 relative; reported probabilities are always
recomputed exactly from the witness's failure set.
"""

from __future__ import annotations

import math

from repro.errors import ProbError
from repro.model.quantities import (
    DEFAULT_FAILURE_PROBABILITY,
    LIKELIHOOD_SCALE,
    Quantity,
    failure_set_cost,
    link_failure_cost,
    link_failure_probability,
)
from repro.pda.semiring import MinPlusSemiring
from repro.query.weights import WeightVector


class NegLogProbSemiring(MinPlusSemiring):
    """``([0, ∞], min, +, ∞, 0)`` over neg-log-probabilities.

    Behaviourally identical to :class:`~repro.pda.semiring.
    MinPlusSemiring`; the subclass exists to name the probability
    reading of the weights and to host the conversion helpers.
    """

    @staticmethod
    def cost(probability: float, scale: int = LIKELIHOOD_SCALE) -> int:
        """Scaled neg-log cost of a probability in ``(0, 1]``."""
        if not 0.0 < probability <= 1.0:
            raise ProbError(
                f"probability {probability!r} outside (0, 1] has no "
                "finite neg-log cost"
            )
        return round(-math.log(probability) * scale)

    @staticmethod
    def probability(cost: float, scale: int = LIKELIHOOD_SCALE) -> float:
        """The probability a scaled neg-log cost represents."""
        if cost < 0:
            raise ProbError(f"neg-log cost must be non-negative, got {cost!r}")
        return math.exp(-cost / scale)


#: Shared stateless instance.
NEG_LOG_PROB = NegLogProbSemiring()


def likelihood_vector() -> WeightVector:
    """The weight vector that ranks witnesses by failure likelihood."""
    return WeightVector.of(Quantity.LIKELIHOOD)


__all__ = [
    "DEFAULT_FAILURE_PROBABILITY",
    "LIKELIHOOD_SCALE",
    "NEG_LOG_PROB",
    "NegLogProbSemiring",
    "failure_set_cost",
    "likelihood_vector",
    "link_failure_cost",
    "link_failure_probability",
]
