"""Probability-mass accounting shared by the sync and async sweep drivers.

The soundness argument for early exit, in one place: scenarios are
disjoint outcomes of the failure model whose probabilities sum to 1.
After verifying any subset of them,

* ``lower  = P(satisfied among verified)`` is a lower bound on the true
  probability that the query holds — unverified and uncertain mass can
  only add to it;
* ``upper  = 1 − P(unsatisfied among verified)`` is an upper bound —
  unverified and uncertain mass can only subtract from it.

"Holds with probability ≥ p" is therefore *decided* as soon as
``lower ≥ p`` (no remaining outcome can pull it back under) or
``upper < p`` (no remaining outcome can lift it over). Inconclusive,
timed-out or errored scenarios are counted as *uncertain*: they widen
the interval instead of silently biasing either bound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class ProbVerdict(enum.Enum):
    """Answer to "does the query hold with probability ≥ threshold?"."""

    HOLDS = "holds"
    FAILS = "fails"
    UNDECIDED = "undecided"


@dataclass
class MassTracker:
    """Running lower/upper bounds on P(query holds) over verified mass."""

    threshold: Optional[float] = None
    satisfied: float = 0.0
    unsatisfied: float = 0.0
    #: Mass whose verdict is unknown (inconclusive / timeout / error).
    uncertain: float = 0.0

    def record(self, outcome: str, mass: float) -> None:
        """Fold one verified scenario's outcome into the bounds."""
        if outcome == "satisfied":
            self.satisfied += mass
        elif outcome == "unsatisfied":
            self.unsatisfied += mass
        else:
            self.uncertain += mass

    # ------------------------------------------------------------------
    @property
    def covered(self) -> float:
        """Total verified probability mass (including uncertain)."""
        return self.satisfied + self.unsatisfied + self.uncertain

    @property
    def residual(self) -> float:
        """Unverified probability mass (clamped against float drift)."""
        return max(0.0, 1.0 - self.covered)

    @property
    def lower(self) -> float:
        """Lower bound on P(query holds)."""
        return min(1.0, self.satisfied)

    @property
    def upper(self) -> float:
        """Upper bound on P(query holds).

        Clamped to at least :attr:`lower` — in exact arithmetic
        ``satisfied + unsatisfied ≤ 1`` always, so any inversion is
        float drift, not information.
        """
        return min(1.0, max(1.0 - self.unsatisfied, self.lower))

    @property
    def verdict(self) -> ProbVerdict:
        """The threshold verdict the current bounds support."""
        if self.threshold is None:
            return ProbVerdict.UNDECIDED
        if self.lower >= self.threshold:
            return ProbVerdict.HOLDS
        if self.upper < self.threshold:
            return ProbVerdict.FAILS
        return ProbVerdict.UNDECIDED

    @property
    def decided(self) -> bool:
        """True once no remaining mass can flip the verdict."""
        return self.verdict is not ProbVerdict.UNDECIDED
