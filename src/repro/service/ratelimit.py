"""Per-client rate limiting and request quotas for the service tier.

The service distinguishes two request classes with *separate* budgets,
so they cannot starve each other:

* **interactive** — ``/verify``, ``/lint`` and every GET: the latency-
  sensitive traffic an operator fires from the GUI;
* **sweep** — ``POST /jobs``: each submission fans out into up to
  thousands of farm jobs, so submissions are budgeted far more tightly
  and additionally capped by a *quota* on concurrently active (not yet
  finished) runs per client.

Budgets are classic token buckets: ``rate`` tokens/second refill up to
a ``burst`` capacity; a request consumes one token or is refused with
the seconds until the next token (the HTTP layer surfaces that as a 429
with ``Retry-After``). The clock is injectable so tests are exact.

Identity: the ``X-Client-Id`` header if present (tenant self-
identification behind a trusted proxy), else the first hop of
``X-Forwarded-For``, else the socket peer address.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

#: Request classes with independent budgets.
INTERACTIVE = "interactive"
SWEEP = "sweep"


@dataclass(frozen=True)
class RateLimitConfig:
    """Knobs of the per-client limiter (see ``aalwines serve --help``).

    ``None``/zero rates disable the corresponding check, so
    ``RateLimitConfig()`` is a no-op limiter — the default for embedded
    :class:`~repro.server.VerificationServer` instances, keeping tests
    and library users unthrottled unless they opt in.
    """

    #: Sustained interactive requests/second per client (None = off).
    interactive_rate: Optional[float] = None
    #: Interactive burst capacity (tokens).
    interactive_burst: int = 20
    #: Sustained sweep submissions/second per client (None = off).
    sweep_rate: Optional[float] = None
    #: Sweep-submission burst capacity (tokens).
    sweep_burst: int = 2
    #: Max concurrently active (unfinished) job runs per client
    #: (None = unlimited).
    active_jobs_per_client: Optional[int] = None

    @classmethod
    def production_defaults(cls) -> "RateLimitConfig":
        """The defaults ``aalwines serve`` enables: generous interactive
        headroom, tight sweep budgets."""
        return cls(
            interactive_rate=50.0,
            interactive_burst=100,
            sweep_rate=0.5,
            sweep_burst=4,
            active_jobs_per_client=4,
        )

    @property
    def enabled(self) -> bool:
        """Does any knob actually limit anything?"""
        return (
            self.interactive_rate is not None
            or self.sweep_rate is not None
            or self.active_jobs_per_client is not None
        )


class _Bucket:
    """One client's token bucket for one request class."""

    __slots__ = ("tokens", "updated")

    def __init__(self, tokens: float, updated: float) -> None:
        self.tokens = tokens
        self.updated = updated


class RateLimiter:
    """Thread-safe token buckets keyed by (client, request class)."""

    def __init__(
        self,
        config: Optional[RateLimitConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else RateLimitConfig()
        self._clock = clock
        self._buckets: Dict[Tuple[str, str], _Bucket] = {}
        self._lock = threading.Lock()

    def check(self, client: str, request_class: str) -> Optional[float]:
        """Consume one token; None when admitted, else seconds to wait.

        Unknown request classes are admitted (forward compatibility: a
        new endpoint class defaults to unthrottled, never to broken).
        """
        if request_class == SWEEP:
            rate, burst = self.config.sweep_rate, self.config.sweep_burst
        elif request_class == INTERACTIVE:
            rate, burst = (
                self.config.interactive_rate,
                self.config.interactive_burst,
            )
        else:
            return None
        if rate is None or rate <= 0:
            return None
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get((client, request_class))
            if bucket is None:
                bucket = _Bucket(float(burst), now)
                self._buckets[(client, request_class)] = bucket
            else:
                elapsed = max(0.0, now - bucket.updated)
                bucket.tokens = min(float(burst), bucket.tokens + elapsed * rate)
                bucket.updated = now
            if bucket.tokens >= 1.0:
                bucket.tokens -= 1.0
                return None
            return max(0.001, (1.0 - bucket.tokens) / rate)

    def reset(self) -> None:
        """Drop every bucket (tests)."""
        with self._lock:
            self._buckets.clear()


def client_identity(headers: Mapping[str, str], peer: str) -> str:
    """The rate-limiting identity of a request (see module docstring)."""
    explicit = headers.get("X-Client-Id") or headers.get("x-client-id")
    if explicit:
        return explicit.strip()
    forwarded = headers.get("X-Forwarded-For") or headers.get("x-forwarded-for")
    if forwarded:
        first = forwarded.split(",")[0].strip()
        if first:
            return first
    return peer or "unknown"
