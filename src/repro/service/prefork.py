"""Multi-worker pre-fork serving: N processes, one listening socket.

``/verify`` is CPU-bound, so one Python process cannot scale it across
cores; the production answer (``aalwines serve --workers N``) is the
classic pre-fork model, stdlib-only:

1. the parent creates, binds and ``listen()``-s the socket;
2. it forks N workers, each of which wraps the *inherited* socket in its
   own :class:`~repro.server.VerificationServer`
   (``ThreadingHTTPServer`` with ``bind_and_activate=False``) and calls
   ``accept()`` — the kernel load-balances connections across workers;
3. the parent supervises: a worker that dies is replaced, and SIGTERM /
   SIGINT / ``Ctrl-C`` tears the whole tree down.

Workers share compiled artifacts and see each other's job runs through
the shared artifact store (:mod:`repro.farm.store`) — without one, each
worker is an island (interactive endpoints still work, but ``GET
/jobs/<id>`` only resolves on the worker that accepted the POST), so
:func:`serve_forever` warns when ``workers > 1`` and no store is given.

``os.fork`` is POSIX-only; on other platforms run one worker per port
behind an external load balancer, or use the WSGI app
(:mod:`repro.app`) under a process-managing WSGI server.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
from typing import Dict, Optional

from repro.service.ratelimit import RateLimitConfig

#: Listen backlog — covers a burst of concurrent clients per worker.
BACKLOG = 128


def make_listening_socket(host: str, port: int) -> socket.socket:
    """A bound, listening TCP socket ready to be shared by workers."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(BACKLOG)
    return sock


def _shutdown_async(server) -> None:
    """Stop a serving :class:`VerificationServer` from a signal handler.

    ``shutdown()`` blocks until ``serve_forever`` exits, and signal
    handlers run *on* the serving (main) thread — calling it directly
    would deadlock, so it runs on a helper thread instead.
    """
    threading.Thread(
        target=server._httpd.shutdown, daemon=True
    ).start()


def _run_worker(
    sock: socket.socket,
    host: str,
    store: Optional[str],
    rate_limit: Optional[RateLimitConfig],
    verbose: bool,
    observe: bool,
) -> None:
    """The body of one forked worker; never returns."""
    from repro.server import VerificationServer

    exit_code = 0
    try:
        server = VerificationServer(
            host,
            sock.getsockname()[1],
            verbose=verbose,
            observe=observe,
            store=store,
            rate_limit=rate_limit,
            listen_socket=sock,
        )
        signal.signal(signal.SIGTERM, lambda *_: _shutdown_async(server))
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    except Exception as error:
        print(f"aalwines worker {os.getpid()} failed: {error}", file=sys.stderr)
        exit_code = 1
    finally:
        # _exit, not exit: never unwind into the parent's stack (atexit
        # handlers, pytest internals, …) from a forked child.
        os._exit(exit_code)


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 1,
    store: Optional[str] = None,
    rate_limit: Optional[RateLimitConfig] = None,
    verbose: bool = False,
    observe: bool = True,
    ready_stream=None,
) -> None:
    """Run the service until interrupted (the ``aalwines serve`` loop).

    Prints one machine-readable ready line (``aalwines service ready on
    http://host:port/ workers=N``) to ``ready_stream`` (default stdout)
    once the socket is listening — the load benchmark and the CLI tests
    block on it.
    """
    if workers > 1 and not hasattr(os, "fork"):  # pragma: no cover
        raise RuntimeError(
            "multi-worker serving needs os.fork; run --workers 1 "
            "(or the WSGI app) on this platform"
        )
    if workers > 1 and store is None:
        print(
            "aalwines serve: warning: --workers > 1 without --store — "
            "workers will not share artifacts or see each other's jobs",
            file=sys.stderr,
        )
    sock = make_listening_socket(host, port)
    bound_host, bound_port = sock.getsockname()[:2]
    stream = ready_stream if ready_stream is not None else sys.stdout
    print(
        f"aalwines service ready on http://{bound_host}:{bound_port}/ "
        f"workers={max(1, workers)}",
        file=stream,
        flush=True,
    )

    if workers <= 1:
        from repro.server import VerificationServer

        server = VerificationServer(
            host,
            bound_port,
            verbose=verbose,
            observe=observe,
            store=store,
            rate_limit=rate_limit,
            listen_socket=sock,
        )
        signal.signal(signal.SIGTERM, lambda *_: _shutdown_async(server))
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            sock.close()
        return

    children: Dict[int, bool] = {}

    def spawn() -> None:
        pid = os.fork()
        if pid == 0:  # child
            _run_worker(sock, host, store, rate_limit, verbose, observe)
        children[pid] = True

    for _ in range(workers):
        spawn()

    stopping = False

    def _terminate(*_args: object) -> None:
        nonlocal stopping
        stopping = True
        for pid in list(children):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    try:
        # Supervision loop: replace workers that die, drain on shutdown.
        while children:
            try:
                pid, _status = os.wait()
            except ChildProcessError:
                break
            except InterruptedError:
                continue
            children.pop(pid, None)
            if not stopping:
                print(
                    f"aalwines serve: worker {pid} exited; respawning",
                    file=sys.stderr,
                )
                time.sleep(0.1)  # damp a crash loop
                spawn()
    except KeyboardInterrupt:
        _terminate()
        while children:
            try:
                pid, _status = os.wait()
                children.pop(pid, None)
            except ChildProcessError:
                break
    finally:
        sock.close()
