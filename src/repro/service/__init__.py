"""The production service tier of the verification server.

:mod:`repro.server` grew up as a single-process development loop; this
package is the deployment-grade layer around the same endpoints:

* :mod:`repro.service.core` — the transport-agnostic service core: one
  router (method + parsed path → handler) shared by the stdlib
  ``http.server`` transport (:mod:`repro.server`) and the WSGI entry
  point (:mod:`repro.app`), with a uniform JSON error ladder, per-client
  rate limiting, SSE job-progress streaming, and per-endpoint latency
  histograms;
* :mod:`repro.service.ratelimit` — token buckets and request quotas so
  one tenant's k=3 sweep cannot starve interactive ``/verify`` traffic;
* :mod:`repro.service.prefork` — the multi-worker pre-fork server
  behind ``aalwines serve --workers N``, all workers sharing one
  listening socket and one on-disk artifact store
  (:mod:`repro.farm.store`).
"""

from repro.service.core import ServiceCore, ServiceRequest, ServiceResponse
from repro.service.ratelimit import RateLimitConfig, RateLimiter

__all__ = [
    "RateLimitConfig",
    "RateLimiter",
    "ServiceCore",
    "ServiceRequest",
    "ServiceResponse",
]
