"""Transport-agnostic core of the verification service.

One :class:`ServiceCore` owns everything two transports share — the
stdlib ``http.server`` handler (:mod:`repro.server`) and the WSGI app
(:mod:`repro.app`):

* **routing** on the *parsed* request target: the raw target is split
  with :func:`urllib.parse.urlsplit` and the path component unquoted
  exactly once, so ``GET /jobs/<id>?include_items=0`` and URL-encoded
  network names (``/networks/my%20net``) route correctly (previously
  the handler matched on the raw ``self.path`` and such requests 404'd);
* **the error ladder**, applied uniformly to every method — including
  DELETE, which used to leak raw tracebacks: request-body problems →
  400, :class:`~repro.errors.NotFoundError` → 404, other
  :class:`~repro.errors.ReproError` (invalid input) → 400, timeouts →
  408, rate limits → 429 with ``Retry-After``, anything else → a
  defensive JSON 500;
* **per-client rate limiting and quotas**
  (:mod:`repro.service.ratelimit`);
* **SSE job-progress streaming** (``GET /jobs/<id>/stream``);
* **per-endpoint latency histograms** and request counters, recorded
  into :mod:`repro.obs` and scraped at ``GET /metrics``.

The POST payload handlers (``_verify_payload`` and friends) deliberately
stay in :mod:`repro.server` and are looked up *late*, so tests that
monkeypatch them keep working and both transports see the patch.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)
from urllib.parse import parse_qs, unquote, urlsplit

from repro import obs
from repro.errors import NotFoundError, ReproError, VerificationTimeout
from repro.service.ratelimit import (
    INTERACTIVE,
    SWEEP,
    RateLimitConfig,
    RateLimiter,
    client_identity,
)

#: Job-run states that end an SSE stream.
_FINISHED_STATES = ("done", "failed", "cancelled")

#: Default seconds between SSE snapshot polls (tunable per core for
#: tests, clamped per request via ``?interval=``).
DEFAULT_STREAM_INTERVAL = 0.25

JSON_CONTENT_TYPE = "application/json; charset=utf-8"
SSE_CONTENT_TYPE = "text/event-stream; charset=utf-8"


class _BadRequest(Exception):
    """A request problem that must surface as a 400 JSON error."""


class RateLimited(Exception):
    """Request refused by the per-client limiter; carries the wait."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class ServiceRequest:
    """One HTTP request, reduced to what routing needs.

    ``target`` is the *raw* request target (percent-encoded path plus
    optional query string); the core parses and unquotes it exactly
    once. Transports that only have a decoded path (WSGI ``PATH_INFO``)
    must re-quote it — see :mod:`repro.app`.
    """

    method: str
    target: str
    headers: Mapping[str, str] = field(default_factory=dict)
    body: Optional[bytes] = None
    #: Transport-level peer identity (client address).
    peer: str = ""


@dataclass
class ServiceResponse:
    """One HTTP response: either a complete ``body`` or a ``stream``
    of chunks (SSE) that the transport writes as they are produced."""

    status: int
    body: bytes = b""
    content_type: str = JSON_CONTENT_TYPE
    headers: Tuple[Tuple[str, str], ...] = ()
    stream: Optional[Iterator[bytes]] = None

    @property
    def reason(self) -> str:
        return {
            200: "OK",
            202: "Accepted",
            400: "Bad Request",
            404: "Not Found",
            408: "Request Timeout",
            429: "Too Many Requests",
            500: "Internal Server Error",
        }.get(self.status, "Unknown")


def json_response(document: Any, status: int = 200) -> ServiceResponse:
    """A JSON document as a complete response."""
    body = json.dumps(document, indent=2).encode("utf-8")
    return ServiceResponse(status=status, body=body)


def error_response(message: str, status: int) -> ServiceResponse:
    """The uniform JSON error envelope."""
    return json_response({"error": message}, status=status)


def parse_json_body(raw: Optional[bytes]) -> Dict[str, Any]:
    """Decode a JSON-object request body (raises :class:`_BadRequest`)."""
    if raw is None:
        raise _BadRequest("request needs a Content-Length header")
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        raise _BadRequest("request body is not valid JSON")
    if not isinstance(payload, dict):
        raise _BadRequest("request body must be a JSON object")
    return payload


def _flag(values: List[str], default: bool = True) -> bool:
    """A query-string boolean (``?include_items=0`` → False)."""
    if not values:
        return default
    return values[-1].strip().lower() not in ("0", "false", "no", "off")


class ServiceCore:
    """The shared service logic behind every transport.

    ``cache`` is the built-in network cache (a
    :class:`repro.server._NetworkCache`; one is created when omitted),
    ``jobs`` the :class:`~repro.farm.jobs.JobManager`. ``limiter``
    defaults to a no-op :class:`RateLimiter`; pass one built from
    :meth:`RateLimitConfig.production_defaults` (or CLI knobs) to
    enforce budgets.
    """

    def __init__(
        self,
        cache: Optional[Any] = None,
        jobs: Optional[Any] = None,
        limiter: Optional[RateLimiter] = None,
        stream_interval: float = DEFAULT_STREAM_INTERVAL,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if cache is None:
            from repro.server import _NetworkCache

            cache = _NetworkCache()
        if jobs is None:
            from repro.farm.jobs import JobManager

            jobs = JobManager()
        self.cache = cache
        self.jobs = jobs
        self.limiter = limiter if limiter is not None else RateLimiter()
        self.stream_interval = stream_interval
        self._clock = clock

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def handle(self, request: ServiceRequest) -> ServiceResponse:
        """Route one request; never raises — every failure is a JSON
        error response (the ladder the module docstring describes)."""
        start = self._clock()
        split = urlsplit(request.target)
        path = unquote(split.path)
        params = parse_qs(split.query, keep_blank_values=True)
        endpoint = "other"
        try:
            endpoint, response = self._dispatch(request, path, params)
        except _BadRequest as error:
            response = error_response(str(error), 400)
        except RateLimited as error:
            response = error_response(str(error), 429)
            response = ServiceResponse(
                status=429,
                body=response.body,
                headers=(("Retry-After", f"{error.retry_after:.3f}"),),
            )
        except VerificationTimeout:
            response = error_response("verification timed out", 408)
        except NotFoundError as error:
            # 404 is for missing *resources* (GET/DELETE on a name that
            # doesn't exist). A POST body referencing an unknown network
            # is invalid input like any other payload problem: 400.
            status = 400 if request.method.upper() == "POST" else 404
            response = error_response(str(error), status)
        except ReproError as error:
            response = error_response(str(error), 400)
        except Exception as error:  # defensive guard: never a traceback
            response = error_response(f"internal error: {error}", 500)
        self._observe(request.method, endpoint, response.status, start)
        return response

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        request: ServiceRequest,
        path: str,
        params: Dict[str, List[str]],
    ) -> Tuple[str, ServiceResponse]:
        """Match (method, path) to a handler; returns (endpoint label,
        response). Raises the ladder's exceptions for error cases."""
        method = request.method.upper()
        if path != "/metrics":  # scraping must never be throttled
            self._admit(request, method, path)
        if method == "GET":
            if path == "/metrics":
                return "metrics", self._metrics()
            if path == "/networks":
                return "networks", self._networks()
            if path.startswith("/networks/"):
                return "networks.one", self._network(path[len("/networks/") :])
            if path == "/queries/example":
                return "queries.example", self._example_queries()
            if path == "/jobs":
                return "jobs", self._jobs_listing()
            if path.startswith("/jobs/"):
                rest = path[len("/jobs/") :]
                if rest.endswith("/stream"):
                    run_id = rest[: -len("/stream")]
                    return "jobs.stream", self._job_stream(run_id, params)
                return "jobs.one", self._job(rest, params)
            return "other", error_response(f"no such endpoint {path!r}", 404)
        if method == "POST":
            server = self._server_module()
            if path == "/verify":
                payload = parse_json_body(request.body)
                return "verify", json_response(
                    server._verify_payload(payload, self.cache)
                )
            if path == "/lint":
                payload = parse_json_body(request.body)
                return "lint", json_response(
                    server._lint_payload(payload, self.cache)
                )
            if path == "/jobs":
                payload = parse_json_body(request.body)
                client = client_identity(request.headers, request.peer)
                self._check_job_quota(client)
                return "jobs.submit", json_response(
                    server._submit_job(payload, self.cache, self.jobs, client),
                    status=202,
                )
            return "other", error_response(f"no such endpoint {path!r}", 404)
        if method == "DELETE":
            if path.startswith("/jobs/"):
                return "jobs.cancel", self._cancel_job(path[len("/jobs/") :])
            return "other", error_response(f"no such endpoint {path!r}", 404)
        raise NotFoundError(f"method {method} is not supported")

    @staticmethod
    def _server_module():
        # Late import and late attribute lookup: the payload handlers
        # live in repro.server (and tests monkeypatch them there).
        import repro.server as server_module

        return server_module

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def _admit(self, request: ServiceRequest, method: str, path: str) -> None:
        if not self.limiter.config.enabled:
            return
        client = client_identity(request.headers, request.peer)
        request_class = (
            SWEEP if (method == "POST" and path == "/jobs") else INTERACTIVE
        )
        wait = self.limiter.check(client, request_class)
        if wait is not None:
            obs.add("http.rate_limited")
            raise RateLimited(
                f"rate limit exceeded for client {client!r}; "
                f"retry in {wait:.3f}s",
                retry_after=wait,
            )

    def _check_job_quota(self, client: str) -> None:
        quota = self.limiter.config.active_jobs_per_client
        if quota is None:
            return
        active = self.jobs.active_count(client)
        if active >= quota:
            obs.add("http.quota_refusals")
            raise RateLimited(
                f"client {client!r} already has {active} active job runs "
                f"(quota: {quota}); wait for one to finish or cancel it",
                retry_after=1.0,
            )

    # ------------------------------------------------------------------
    # GET handlers
    # ------------------------------------------------------------------
    def _metrics(self) -> ServiceResponse:
        from repro.server import _cache_metrics_text, _store_metrics_text, _triage_metrics_text

        exposition = obs.metrics_text()
        exposition += _cache_metrics_text(exposition)
        exposition += _store_metrics_text(exposition)
        exposition += _triage_metrics_text(exposition)
        return ServiceResponse(
            status=200,
            body=exposition.encode("utf-8"),
            content_type=obs.PROMETHEUS_CONTENT_TYPE,
        )

    def _networks(self) -> ServiceResponse:
        from repro.datasets.builtins import BUILTIN_NETWORKS

        return json_response({"networks": list(BUILTIN_NETWORKS)})

    def _network(self, name: str) -> ServiceResponse:
        from repro.io.json_format import network_to_json

        network = self.cache.get(name)
        return json_response(json.loads(network_to_json(network)))

    def _example_queries(self) -> ServiceResponse:
        from repro.datasets.example import EXAMPLE_QUERIES

        return json_response(
            {"queries": [{"name": n, "text": t} for n, t in EXAMPLE_QUERIES]}
        )

    def _jobs_listing(self) -> ServiceResponse:
        return json_response({"jobs": self.jobs.all_snapshots()})

    def _job(
        self, run_id: str, params: Dict[str, List[str]]
    ) -> ServiceResponse:
        include_items = _flag(params.get("include_items", []), default=True)
        snapshot = self.jobs.snapshot_of(run_id, include_items=include_items)
        if snapshot is None:
            raise NotFoundError("no such job")
        return json_response(snapshot)

    def _cancel_job(self, run_id: str) -> ServiceResponse:
        document = self.jobs.request_cancel(run_id)
        if document is None:
            raise NotFoundError("no such job")
        return json_response(document)

    # ------------------------------------------------------------------
    # SSE streaming
    # ------------------------------------------------------------------
    def _job_stream(
        self, run_id: str, params: Dict[str, List[str]]
    ) -> ServiceResponse:
        if self.jobs.snapshot_of(run_id, include_items=False) is None:
            raise NotFoundError("no such job")
        interval = self.stream_interval
        raw = params.get("interval", [])
        if raw:
            try:
                interval = min(10.0, max(0.02, float(raw[-1])))
            except ValueError:
                raise _BadRequest("'interval' must be a number of seconds")
        include_items = _flag(params.get("include_items", []), default=False)
        obs.add("http.streams_opened")
        return ServiceResponse(
            status=200,
            content_type=SSE_CONTENT_TYPE,
            headers=(("Cache-Control", "no-cache"),),
            stream=self._stream_events(run_id, interval, include_items),
        )

    def _stream_events(
        self, run_id: str, interval: float, include_items: bool
    ) -> Iterator[bytes]:
        """Yield SSE frames: a ``snapshot`` event whenever the run's
        state changes, then one final ``done`` event. The stream also
        ends (with ``error``) if the run is evicted mid-watch."""
        last: Optional[str] = None
        while True:
            snapshot = self.jobs.snapshot_of(run_id, include_items=include_items)
            if snapshot is None:
                yield _sse_event("error", {"error": "job evicted"})
                return
            data = json.dumps(snapshot, sort_keys=True)
            if data != last:
                last = data
                yield _sse_event("snapshot", snapshot)
            if snapshot.get("state") in _FINISHED_STATES:
                yield _sse_event("done", {"id": run_id, "state": snapshot["state"]})
                return
            time.sleep(interval)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _observe(
        self, method: str, endpoint: str, status: int, start: float
    ) -> None:
        if not obs.enabled():
            return
        elapsed = self._clock() - start
        obs.add("http.requests")
        obs.add(f"http.responses.{status // 100}xx")
        obs.observe(f"http.latency.{method.lower()}.{endpoint}", elapsed)


def _sse_event(event: str, document: Any) -> bytes:
    """One Server-Sent-Events frame."""
    data = json.dumps(document)
    return f"event: {event}\ndata: {data}\n\n".encode("utf-8")
