"""Query language (§2.5) and its compilation artefacts (NFAs, weights)."""

from repro.query.ast import (
    Concat,
    Epsilon,
    Leaf,
    Option,
    Plus,
    Query,
    Regex,
    Repeat,
    Star,
    Union_,
    concat,
    union,
)
from repro.query.atoms import (
    AnyLabel,
    AnyLink,
    LabelAtom,
    LinkAtom,
    LinkEndpoint,
    resolve_label_atom,
    resolve_link_atom,
)
from repro.query.nfa import (
    Nfa,
    build_nfa,
    label_nfa,
    link_nfa,
    valid_header_nfa,
)
from repro.query.parser import QueryParser, parse_query
from repro.query.weights import (
    LinearExpression,
    StepCosts,
    WeightVector,
    parse_weight_vector,
)

__all__ = [
    "AnyLabel",
    "AnyLink",
    "Concat",
    "Epsilon",
    "LabelAtom",
    "Leaf",
    "LinearExpression",
    "LinkAtom",
    "LinkEndpoint",
    "Nfa",
    "Option",
    "Plus",
    "Query",
    "QueryParser",
    "Regex",
    "Repeat",
    "Star",
    "StepCosts",
    "Union_",
    "WeightVector",
    "build_nfa",
    "concat",
    "label_nfa",
    "link_nfa",
    "parse_query",
    "parse_weight_vector",
    "resolve_label_atom",
    "resolve_link_atom",
    "union",
    "valid_header_nfa",
]
