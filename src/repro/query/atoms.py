"""Atoms of the query language and their resolution against a network.

Label atoms (inside ``⟨ ⟩``) denote sets of labels:

* the class abbreviations ``ip`` / ``mpls`` / ``smpls`` (§2.5),
* literal labels (``s40``, ``30``, ``$449550``) or bracketed lists
  (``[s10, s11]``),
* the wildcard ``.``,
* any of the above negated with a leading ``^``.

Link atoms (in the path expression) denote sets of links:

* ``[v#u]`` — every link from router ``v`` to router ``u``,
* ``[v.out#u.in]`` — the unique link with those interfaces
  (either side's interface may be omitted),
* ``.`` on either side of ``#`` matches any router,
* the bare wildcard ``.`` matches any link,
* a leading ``^`` inside the bracket complements the set (``[^v#u]``).

Atoms are *resolved* against a concrete network into frozensets of
:class:`~repro.model.labels.Label` / :class:`~repro.model.topology.Link`
by :func:`resolve_label_atom` / :func:`resolve_link_atom`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.errors import QuerySemanticsError
from repro.model.labels import Label, LabelKind
from repro.model.network import MplsNetwork
from repro.model.topology import Link


@dataclass(frozen=True)
class AnyLabel:
    """The label wildcard ``.`` — matches every label of the network."""

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class LabelAtom:
    """A set of label classes and/or literal label texts, possibly negated."""

    #: Class abbreviations used, subset of {"ip", "mpls", "smpls"}.
    classes: FrozenSet[str] = frozenset()
    #: Literal label texts as written in the query (e.g. "s40", "$449550").
    literals: Tuple[str, ...] = ()
    negated: bool = False

    def __post_init__(self) -> None:
        unknown = self.classes - {"ip", "mpls", "smpls"}
        if unknown:
            raise QuerySemanticsError(f"unknown label classes {sorted(unknown)}")
        if not self.classes and not self.literals:
            raise QuerySemanticsError("empty label atom")

    def __str__(self) -> str:
        parts = sorted(self.classes) + list(self.literals)
        body = ", ".join(parts)
        prefix = "^" if self.negated else ""
        if len(parts) == 1 and not self.negated:
            return parts[0]
        return f"[{prefix}{body}]"


@dataclass(frozen=True)
class AnyLink:
    """The link wildcard ``.`` — matches every link of the network."""

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class LinkEndpoint:
    """One side of a link atom: a router (or wildcard) plus an optional
    interface name."""

    router: Optional[str]  # None means the wildcard '.'
    interface: Optional[str] = None

    def __str__(self) -> str:
        base = self.router if self.router is not None else "."
        if self.interface is not None:
            return f"{base}.{self.interface}"
        return base


@dataclass(frozen=True)
class LinkAtom:
    """A bracketed link pattern ``[source#target]``, possibly negated."""

    source: LinkEndpoint
    target: LinkEndpoint
    negated: bool = False

    def __str__(self) -> str:
        prefix = "^" if self.negated else ""
        return f"[{prefix}{self.source}#{self.target}]"


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------

_CLASS_TO_KIND = {
    "ip": LabelKind.IP,
    "mpls": LabelKind.MPLS,
    "smpls": LabelKind.MPLS_BOTTOM,
}


def resolve_label_atom(
    atom: "AnyLabel | LabelAtom", network: MplsNetwork
) -> FrozenSet[Label]:
    """The set of network labels matched by a label atom.

    Literal labels must exist in the network's label table — a query that
    mentions a label the network never uses is almost certainly a typo,
    and the tool reports it instead of silently answering "no trace".
    """
    universe = frozenset(network.labels.all_labels())
    if isinstance(atom, AnyLabel):
        return universe
    matched = set()
    for class_name in atom.classes:
        matched |= network.labels.of_kind(_CLASS_TO_KIND[class_name])
    for text in atom.literals:
        label = network.labels.get(text)
        if label is None:
            raise QuerySemanticsError(
                f"label {text!r} does not occur in network {network.name!r}"
            )
        matched.add(label)
    if atom.negated:
        return universe - matched
    return frozenset(matched)


def _endpoint_matches_source(endpoint: LinkEndpoint, link: Link) -> bool:
    if endpoint.router is not None and link.source.name != endpoint.router:
        return False
    if endpoint.interface is not None and link.source_interface != endpoint.interface:
        return False
    return True


def _endpoint_matches_target(endpoint: LinkEndpoint, link: Link) -> bool:
    if endpoint.router is not None and link.target.name != endpoint.router:
        return False
    if endpoint.interface is not None and link.target_interface != endpoint.interface:
        return False
    return True


def resolve_link_atom(
    atom: "AnyLink | LinkAtom", network: MplsNetwork
) -> FrozenSet[Link]:
    """The set of network links matched by a link atom.

    Router names mentioned explicitly must exist in the topology
    (interfaces are validated only when the router side is concrete).
    """
    universe = frozenset(network.topology.links)
    if isinstance(atom, AnyLink):
        return universe
    for endpoint in (atom.source, atom.target):
        if endpoint.router is not None and not network.topology.has_router(
            endpoint.router
        ):
            raise QuerySemanticsError(
                f"router {endpoint.router!r} does not exist in network "
                f"{network.name!r}"
            )
    matched = frozenset(
        link
        for link in universe
        if _endpoint_matches_source(atom.source, link)
        and _endpoint_matches_target(atom.target, link)
    )
    if atom.negated:
        return universe - matched
    return matched
