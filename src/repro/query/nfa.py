"""Nondeterministic finite automata over resolved atom sets.

The verification pipeline compiles the three regular expressions of a
query into NFAs whose edges are labelled with *frozensets of symbols*
(labels or links) — the result of resolving each atom against the
network. The PDA encoding then consumes these NFAs directly:

* ``A_a`` (initial header) is reversed and intersected with the
  valid-header automaton to drive the stack-construction phase,
* ``A_b`` (path) runs in the control state during routing simulation,
* ``A_c`` (final header) drives the stack-checking phase.

The construction is Thompson's, followed by ε-elimination so that the
PDA compiler only ever sees ε-free automata.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.errors import QuerySemanticsError
from repro.model.network import MplsNetwork
from repro.query import ast
from repro.query.atoms import (
    AnyLabel,
    AnyLink,
    LabelAtom,
    LinkAtom,
    resolve_label_atom,
    resolve_link_atom,
)

Symbol = Hashable
SymbolSet = FrozenSet[Symbol]
#: Resolves one regex atom to the set of symbols it matches.
AtomResolver = Callable[[object], SymbolSet]


@dataclass(frozen=True)
class Edge:
    """One ε-free transition: any symbol in ``symbols`` moves to ``target``."""

    symbols: SymbolSet
    target: int


class Nfa:
    """An ε-free NFA with integer states and set-labelled edges."""

    def __init__(
        self,
        state_count: int,
        initial: Iterable[int],
        accepting: Iterable[int],
        edges: Dict[int, Tuple[Edge, ...]],
    ) -> None:
        self.state_count = state_count
        self.initial: FrozenSet[int] = frozenset(initial)
        self.accepting: FrozenSet[int] = frozenset(accepting)
        self._edges: Dict[int, Tuple[Edge, ...]] = edges

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def edges_from(self, state: int) -> Tuple[Edge, ...]:
        """Outgoing edges of one state."""
        return self._edges.get(state, ())

    def step(self, state: int, symbol: Symbol) -> Tuple[int, ...]:
        """States reachable from ``state`` by reading ``symbol``."""
        return tuple(
            edge.target for edge in self.edges_from(state) if symbol in edge.symbols
        )

    def step_set(self, states: Iterable[int], symbol: Symbol) -> FrozenSet[int]:
        """Successor set of a state set under one symbol."""
        result: Set[int] = set()
        for state in states:
            result.update(self.step(state, symbol))
        return frozenset(result)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Membership of a finite word in the automaton's language."""
        current: FrozenSet[int] = self.initial
        for symbol in word:
            current = self.step_set(current, symbol)
            if not current:
                return False
        return bool(current & self.accepting)

    @property
    def accepts_empty_word(self) -> bool:
        return bool(self.initial & self.accepting)

    def is_empty(self) -> bool:
        """True when the language is empty (no accepting state reachable)."""
        seen: Set[int] = set(self.initial)
        frontier = deque(self.initial)
        while frontier:
            state = frontier.popleft()
            if state in self.accepting:
                return False
            for edge in self.edges_from(state):
                if edge.symbols and edge.target not in seen:
                    seen.add(edge.target)
                    frontier.append(edge.target)
        return False if (seen & self.accepting) else True

    def edge_count(self) -> int:
        """Total number of edges (a size diagnostic)."""
        return sum(len(edges) for edges in self._edges.values())

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def reverse(self) -> "Nfa":
        """The automaton of the reversed language."""
        reversed_edges: Dict[int, List[Edge]] = {}
        for source, edges in self._edges.items():
            for edge in edges:
                reversed_edges.setdefault(edge.target, []).append(
                    Edge(edge.symbols, source)
                )
        return Nfa(
            self.state_count,
            initial=self.accepting,
            accepting=self.initial,
            edges={s: tuple(es) for s, es in reversed_edges.items()},
        )

    def trim(self) -> "Nfa":
        """Remove states that are unreachable or cannot reach acceptance."""
        forward: Set[int] = set(self.initial)
        frontier = deque(self.initial)
        while frontier:
            state = frontier.popleft()
            for edge in self.edges_from(state):
                if edge.symbols and edge.target not in forward:
                    forward.add(edge.target)
                    frontier.append(edge.target)
        predecessor: Dict[int, List[int]] = {}
        for source, edges in self._edges.items():
            for edge in edges:
                if edge.symbols:
                    predecessor.setdefault(edge.target, []).append(source)
        backward: Set[int] = set(self.accepting)
        frontier = deque(self.accepting)
        while frontier:
            state = frontier.popleft()
            for source in predecessor.get(state, ()):
                if source not in backward:
                    backward.add(source)
                    frontier.append(source)
        alive = forward & backward
        remap = {old: new for new, old in enumerate(sorted(alive))}
        edges: Dict[int, Tuple[Edge, ...]] = {}
        for source in alive:
            kept = tuple(
                Edge(edge.symbols, remap[edge.target])
                for edge in self.edges_from(source)
                if edge.target in alive and edge.symbols
            )
            if kept:
                edges[remap[source]] = kept
        return Nfa(
            len(alive),
            initial=(remap[s] for s in self.initial if s in alive),
            accepting=(remap[s] for s in self.accepting if s in alive),
            edges=edges,
        )

    def intersect(self, other: "Nfa") -> "Nfa":
        """Product automaton for language intersection."""
        index: Dict[Tuple[int, int], int] = {}

        def state_of(pair: Tuple[int, int]) -> int:
            if pair not in index:
                index[pair] = len(index)
            return index[pair]

        edges: Dict[int, List[Edge]] = {}
        frontier: deque = deque()
        for p in self.initial:
            for q in other.initial:
                state_of((p, q))
                frontier.append((p, q))
        seen = set(index)
        while frontier:
            p, q = frontier.popleft()
            source = state_of((p, q))
            for edge_p in self.edges_from(p):
                for edge_q in other.edges_from(q):
                    common = edge_p.symbols & edge_q.symbols
                    if not common:
                        continue
                    pair = (edge_p.target, edge_q.target)
                    target = state_of(pair)
                    edges.setdefault(source, []).append(Edge(common, target))
                    if pair not in seen:
                        seen.add(pair)
                        frontier.append(pair)
        accepting = [
            state
            for (p, q), state in index.items()
            if p in self.accepting and q in other.accepting
        ]
        initial = [
            state
            for (p, q), state in index.items()
            if p in self.initial and q in other.initial
        ]
        product = Nfa(
            len(index),
            initial=initial,
            accepting=accepting,
            edges={s: tuple(es) for s, es in edges.items()},
        )
        return product.trim()


# ----------------------------------------------------------------------
# Thompson construction
# ----------------------------------------------------------------------


class _ThompsonBuilder:
    """Builds an NFA with ε-edges, then eliminates them."""

    def __init__(self, resolver: AtomResolver) -> None:
        self._resolver = resolver
        self._symbol_edges: Dict[int, List[Edge]] = {}
        self._eps_edges: Dict[int, List[int]] = {}
        self._count = 0

    def _new_state(self) -> int:
        state = self._count
        self._count += 1
        return state

    def _add_symbol_edge(self, source: int, symbols: SymbolSet, target: int) -> None:
        self._symbol_edges.setdefault(source, []).append(Edge(symbols, target))

    def _add_eps(self, source: int, target: int) -> None:
        self._eps_edges.setdefault(source, []).append(target)

    def build(self, regex: ast.Regex) -> Nfa:
        start, end = self._fragment(regex)
        return self._eliminate_epsilon(start, end)

    def _fragment(self, regex: ast.Regex) -> Tuple[int, int]:
        if isinstance(regex, ast.Epsilon):
            start = self._new_state()
            end = self._new_state()
            self._add_eps(start, end)
            return start, end
        if isinstance(regex, ast.Leaf):
            start = self._new_state()
            end = self._new_state()
            self._add_symbol_edge(start, self._resolver(regex.atom), end)
            return start, end
        if isinstance(regex, ast.Concat):
            start, current = self._fragment(regex.parts[0])
            for part in regex.parts[1:]:
                nxt_start, nxt_end = self._fragment(part)
                self._add_eps(current, nxt_start)
                current = nxt_end
            return start, current
        if isinstance(regex, ast.Union_):
            start = self._new_state()
            end = self._new_state()
            for option in regex.options:
                inner_start, inner_end = self._fragment(option)
                self._add_eps(start, inner_start)
                self._add_eps(inner_end, end)
            return start, end
        if isinstance(regex, ast.Star):
            start = self._new_state()
            end = self._new_state()
            inner_start, inner_end = self._fragment(regex.inner)
            self._add_eps(start, inner_start)
            self._add_eps(start, end)
            self._add_eps(inner_end, inner_start)
            self._add_eps(inner_end, end)
            return start, end
        if isinstance(regex, ast.Plus):
            return self._fragment(ast.concat(regex.inner, ast.Star(regex.inner)))
        if isinstance(regex, ast.Repeat):
            # r{m,n}: m mandatory copies, then n-m optional ones (or a
            # star when unbounded). Expansion keeps the construction
            # structural; bounds in queries are small in practice.
            parts = [regex.inner] * regex.minimum
            if regex.maximum is None:
                parts.append(ast.Star(regex.inner))
            else:
                parts.extend(
                    ast.Option(regex.inner)
                    for _ in range(regex.maximum - regex.minimum)
                )
            return self._fragment(ast.concat(*parts))
        if isinstance(regex, ast.Option):
            return self._fragment(ast.union(regex.inner, ast.Epsilon()))
        raise QuerySemanticsError(f"unknown regex node {regex!r}")

    def _closure(self, state: int) -> FrozenSet[int]:
        seen = {state}
        frontier = deque([state])
        while frontier:
            current = frontier.popleft()
            for target in self._eps_edges.get(current, ()):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def _eliminate_epsilon(self, start: int, end: int) -> Nfa:
        closures = {state: self._closure(state) for state in range(self._count)}
        edges: Dict[int, Tuple[Edge, ...]] = {}
        for state in range(self._count):
            collected: List[Edge] = []
            for member in closures[state]:
                collected.extend(self._symbol_edges.get(member, ()))
            if collected:
                edges[state] = tuple(collected)
        accepting = [state for state in range(self._count) if end in closures[state]]
        nfa = Nfa(self._count, initial=[start], accepting=accepting, edges=edges)
        trimmed = nfa.trim()
        # A regex matching only ε trims to nothing but must keep acceptance.
        if not trimmed.accepting and nfa.accepts_empty_word:
            return Nfa(1, initial=[0], accepting=[0], edges={})
        return trimmed


def build_nfa(regex: ast.Regex, resolver: AtomResolver) -> Nfa:
    """Compile a regex AST into an ε-free NFA via a custom atom resolver."""
    return _ThompsonBuilder(resolver).build(regex)


def label_nfa(regex: ast.Regex, network: MplsNetwork) -> Nfa:
    """Compile a label regex, resolving atoms against the network's labels."""

    def resolver(atom: object) -> SymbolSet:
        if isinstance(atom, (AnyLabel, LabelAtom)):
            return resolve_label_atom(atom, network)
        raise QuerySemanticsError(f"link atom {atom} used in a label expression")

    return build_nfa(regex, resolver)


def link_nfa(regex: ast.Regex, network: MplsNetwork) -> Nfa:
    """Compile a link regex, resolving atoms against the network's links."""

    def resolver(atom: object) -> SymbolSet:
        if isinstance(atom, (AnyLink, LinkAtom)):
            return resolve_link_atom(atom, network)
        raise QuerySemanticsError(f"label atom {atom} used in a link expression")

    return build_nfa(regex, resolver)


def valid_header_nfa(network: MplsNetwork) -> Nfa:
    """The automaton of valid headers H, read top-of-stack first (§2.2).

    Words are ``mpls* smpls ip`` or a bare ``ip`` label.
    """
    mpls_set = frozenset(network.labels.mpls_labels)
    smpls_set = frozenset(network.labels.bottom_mpls_labels)
    ip_set = frozenset(network.labels.ip_labels)
    # States: 0 = start, 1 = inside the mpls* prefix, 2 = after the single
    # smpls label, 3 = accepting (complete header). A bare IP label is only
    # allowed straight from the start state.
    edges: Dict[int, Tuple[Edge, ...]] = {}
    start_edges: List[Edge] = []
    prefix_edges: List[Edge] = []
    if mpls_set:
        start_edges.append(Edge(mpls_set, 1))
        prefix_edges.append(Edge(mpls_set, 1))
    if smpls_set:
        start_edges.append(Edge(smpls_set, 2))
        prefix_edges.append(Edge(smpls_set, 2))
    if ip_set:
        start_edges.append(Edge(ip_set, 3))
        edges[2] = (Edge(ip_set, 3),)
    edges[0] = tuple(start_edges)
    if prefix_edges:
        edges[1] = tuple(prefix_edges)
    return Nfa(4, initial=[0], accepting=[3], edges=edges)


def header_language_nonempty(
    a_nfa: Nfa, c_nfa: Nfa, network: MplsNetwork
) -> bool:
    """Is Lang(a) ∩ Lang(c) ∩ H non-empty?

    Needed for the ε-path corner case of the satisfiability problem: when
    the path expression admits the empty link sequence the query cannot be
    answered by the PDA encoding (a trace needs at least one link), but
    callers may still want to know whether a single-configuration "trace"
    of length one is conceivable. Exposed mainly for the test-suite.
    """
    valid = valid_header_nfa(network)
    return not a_nfa.intersect(c_nfa).intersect(valid).is_empty()
