"""Weight expressions for the quantitative extension (§3).

The paper combines atomic quantities into linear expressions

    expr ::= p | a * expr | expr + expr        (a ∈ ℕ)

and prioritizes several of them as a vector ``(expr1, …, exprn)``
compared lexicographically. This module provides:

* :class:`LinearExpression` — a sum of (coefficient, quantity) terms,
* :class:`WeightVector` — a prioritized tuple of linear expressions,
* a small parser for the CLI syntax
  (``"hops, failures + 3*tunnels"``),
* trace-level evaluation (the semantic ground truth), and
* per-step evaluation (:meth:`WeightVector.step_weight`), which is what
  the PDA compiler attaches to rules.

Note on *Hops*: the paper defines Hops(σ) as the number of *distinct*
non-self-loop links, while per-rule weights are necessarily additive
per traversal. Minimal witnesses essentially never traverse one link
twice (doing so cannot decrease any quantity), so the tool — like the
original — uses the additive reading for rule weights; the trace-level
evaluator keeps the exact set semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.errors import WeightError
from repro.model.network import MplsNetwork
from repro.model.quantities import Quantity, evaluate_quantity
from repro.model.topology import Link
from repro.model.trace import Trace


@dataclass(frozen=True)
class StepCosts:
    """The atomic-quantity contributions of one trace step.

    Produced by the PDA compiler per rule; consumed by
    :meth:`WeightVector.step_weight`.
    """

    links: int = 0
    hops: int = 0
    distance: int = 0
    failures: int = 0
    tunnels: int = 0
    #: Scaled neg-log-probability of the failure set the step relies on
    #: (see :data:`repro.model.quantities.LIKELIHOOD_SCALE`).
    likelihood: int = 0

    def get(self, quantity: Quantity) -> int:
        """This step's contribution to one atomic quantity."""
        return getattr(self, quantity.value)

    @classmethod
    def for_link(
        cls,
        link: Link,
        distance_of: Callable[[Link], int],
        failures: int = 0,
        tunnels: int = 0,
        likelihood: int = 0,
    ) -> "StepCosts":
        """Costs of a step that traverses ``link``."""
        return cls(
            links=1,
            hops=0 if link.is_self_loop else 1,
            distance=distance_of(link),
            failures=failures,
            tunnels=tunnels,
            likelihood=likelihood,
        )


@dataclass(frozen=True)
class LinearExpression:
    """A linear combination ``Σ coefficient·quantity``."""

    terms: Tuple[Tuple[int, Quantity], ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise WeightError("a linear expression needs at least one term")
        for coefficient, _quantity in self.terms:
            if coefficient < 0:
                raise WeightError("weight coefficients must be non-negative")

    @classmethod
    def of(cls, *terms: "Tuple[int, Quantity] | Quantity") -> "LinearExpression":
        normalized = []
        for term in terms:
            if isinstance(term, Quantity):
                normalized.append((1, term))
            else:
                normalized.append(term)
        return cls(tuple(normalized))

    def evaluate_trace(
        self,
        network: MplsNetwork,
        trace: Trace,
        distance_of: Optional[Callable[[Link], int]] = None,
    ) -> int:
        """Exact trace-level value (set semantics for Hops)."""
        return sum(
            coefficient * evaluate_quantity(quantity, network, trace, distance_of)
            for coefficient, quantity in self.terms
        )

    def evaluate_step(self, costs: StepCosts) -> int:
        """Additive per-step value used as a PDA rule weight."""
        return sum(
            coefficient * costs.get(quantity) for coefficient, quantity in self.terms
        )

    def __str__(self) -> str:
        rendered = []
        for coefficient, quantity in self.terms:
            if coefficient == 1:
                rendered.append(quantity.value)
            else:
                rendered.append(f"{coefficient}*{quantity.value}")
        return " + ".join(rendered)


@dataclass(frozen=True)
class WeightVector:
    """A prioritized vector of linear expressions (lexicographic order)."""

    expressions: Tuple[LinearExpression, ...]

    def __post_init__(self) -> None:
        if not self.expressions:
            raise WeightError("a weight vector needs at least one expression")

    @classmethod
    def of(cls, *expressions: "LinearExpression | Quantity") -> "WeightVector":
        normalized = []
        for expression in expressions:
            if isinstance(expression, Quantity):
                normalized.append(LinearExpression.of(expression))
            else:
                normalized.append(expression)
        return cls(tuple(normalized))

    @property
    def arity(self) -> int:
        return len(self.expressions)

    def quantities(self) -> Tuple[Quantity, ...]:
        """Every atomic quantity mentioned anywhere in the vector."""
        seen = []
        for expression in self.expressions:
            for _coefficient, quantity in expression.terms:
                if quantity not in seen:
                    seen.append(quantity)
        return tuple(seen)

    def evaluate_trace(
        self,
        network: MplsNetwork,
        trace: Trace,
        distance_of: Optional[Callable[[Link], int]] = None,
    ) -> Tuple[int, ...]:
        """The vector value of a trace, compared lexicographically."""
        return tuple(
            expression.evaluate_trace(network, trace, distance_of)
            for expression in self.expressions
        )

    def step_weight(self, costs: StepCosts) -> Tuple[int, ...]:
        """The per-step rule weight attached by the PDA compiler."""
        return tuple(
            expression.evaluate_step(costs) for expression in self.expressions
        )

    def zero(self) -> Tuple[int, ...]:
        """The all-zero vector of this arity."""
        return (0,) * self.arity

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.expressions) + ")"


def parse_weight_vector(text: str) -> WeightVector:
    """Parse the CLI weight syntax, e.g. ``"hops, failures + 3*tunnels"``.

    Components are comma-separated (highest priority first); each
    component is a ``+``-separated sum of terms ``[coefficient *] quantity``.
    """
    components = [part.strip() for part in text.split(",")]
    if not any(components):
        raise WeightError("empty weight vector")
    expressions = []
    for component in components:
        if not component:
            raise WeightError(f"empty component in weight vector {text!r}")
        terms = []
        for raw_term in component.split("+"):
            raw_term = raw_term.strip()
            if "*" in raw_term:
                raw_coefficient, _, raw_quantity = raw_term.partition("*")
                try:
                    coefficient = int(raw_coefficient.strip())
                except ValueError:
                    raise WeightError(
                        f"bad coefficient {raw_coefficient.strip()!r} in {raw_term!r}"
                    )
            else:
                coefficient, raw_quantity = 1, raw_term
            terms.append((coefficient, Quantity.parse(raw_quantity)))
        expressions.append(LinearExpression(tuple(terms)))
    return WeightVector(tuple(expressions))
