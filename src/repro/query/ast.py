"""Abstract syntax of the query language (Definition 5).

A query ``⟨a⟩ b ⟨c⟩ k`` consists of two *label* regular expressions
(``a``, ``c``), one *link* regular expression (``b``) and a failure
bound ``k``. Both kinds of expression share the same regex combinators
(concatenation, union, Kleene star/plus, option) and differ only in
their atoms — :mod:`repro.query.atoms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.query.atoms import AnyLabel, AnyLink, LabelAtom, LinkAtom

#: The leaf type of a regular expression.
Atom = Union[LabelAtom, LinkAtom, AnyLabel, AnyLink]


@dataclass(frozen=True)
class Leaf:
    """A single atom occurrence."""

    atom: Atom

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class Concat:
    """Concatenation ``r1 r2 … rn`` (n ≥ 2)."""

    parts: Tuple["Regex", ...]

    def __str__(self) -> str:
        return " ".join(_wrap(part) for part in self.parts)


@dataclass(frozen=True)
class Union_:
    """Alternation ``r1 | r2 | … | rn`` (n ≥ 2)."""

    options: Tuple["Regex", ...]

    def __str__(self) -> str:
        return " | ".join(_wrap(option) for option in self.options)


@dataclass(frozen=True)
class Star:
    """Kleene star ``r*``."""

    inner: "Regex"

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


@dataclass(frozen=True)
class Plus:
    """One-or-more ``r+``."""

    inner: "Regex"

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}+"


@dataclass(frozen=True)
class Option:
    """Zero-or-one ``r?``."""

    inner: "Regex"

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}?"


@dataclass(frozen=True)
class Repeat:
    """Bounded repetition ``r{m,n}`` (``n = None`` means unbounded).

    An expressiveness extension over the paper's published language
    (its conclusion announces work in this direction): ``r{3}`` is
    exactly three copies, ``r{2,4}`` between two and four, ``r{2,}``
    at least two. ``r{0,1} = r?``, ``r{0,} = r*``, ``r{1,} = r+``.
    """

    inner: "Regex"
    minimum: int
    maximum: "int | None"

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise ValueError("repetition minimum must be non-negative")
        if self.maximum is not None and self.maximum < self.minimum:
            raise ValueError("repetition maximum must be >= minimum")

    def __str__(self) -> str:
        if self.maximum is None:
            bounds = f"{{{self.minimum},}}"
        elif self.maximum == self.minimum:
            bounds = f"{{{self.minimum}}}"
        else:
            bounds = f"{{{self.minimum},{self.maximum}}}"
        return f"{_wrap(self.inner)}{bounds}"


@dataclass(frozen=True)
class Epsilon:
    """The empty word (arises from an empty expression between ⟨ ⟩)."""

    def __str__(self) -> str:
        return "ε"


Regex = Union[Leaf, Concat, Union_, Star, Plus, Option, Repeat, Epsilon]


def _wrap(regex: Regex) -> str:
    """Parenthesize non-atomic sub-expressions when rendering."""
    if isinstance(regex, (Concat, Union_)):
        return f"({regex})"
    return str(regex)


def concat(*parts: Regex) -> Regex:
    """Smart concatenation: flattens nesting and drops ε."""
    flat = []
    for part in parts:
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return Epsilon()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(*options: Regex) -> Regex:
    """Smart alternation: flattens nesting and deduplicates."""
    flat = []
    for option in options:
        if isinstance(option, Union_):
            flat.extend(option.options)
        else:
            flat.append(option)
    unique = []
    for option in flat:
        if option not in unique:
            unique.append(option)
    if len(unique) == 1:
        return unique[0]
    return Union_(tuple(unique))


@dataclass(frozen=True)
class Query:
    """A full query ``⟨a⟩ b ⟨c⟩ k``."""

    initial_header: Regex
    path: Regex
    final_header: Regex
    max_failures: int

    def __str__(self) -> str:
        return (
            f"<{self.initial_header}> {self.path} "
            f"<{self.final_header}> {self.max_failures}"
        )
