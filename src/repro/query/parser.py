"""Recursive-descent parser for the query language (Definition 5).

Concrete syntax (whitespace-insensitive except as a concatenation
separator)::

    query       := '<' label-regex '>' link-regex '<' label-regex '>' INT
    label-regex := regular expression over label atoms
    link-regex  := regular expression over link atoms

Regex combinators, in increasing precedence: union ``|``, concatenation
(juxtaposition), postfix ``*`` / ``+`` / ``?``, parentheses.

Label atoms: ``ip`` / ``mpls`` / ``smpls`` class abbreviations, literal
labels (``s40``, ``$449550``), bracketed lists ``[s10, s11]`` (optionally
negated: ``[^s10]``), and the wildcard ``.``.

Link atoms: ``[v#u]`` with ``.`` wildcards on either side, optional
interface qualifiers (``[v0.ae1#v1.ae2]``), negation (``[^v2#v3]``), and
the bare wildcard ``.``.

The parser is context-aware (label vs. link position), which is what
lets ``.`` inside brackets belong to interface names while a bare ``.``
is a wildcard.
"""

from __future__ import annotations

import string
from typing import List, Optional

from repro.errors import QuerySyntaxError
from repro.query.ast import Epsilon, Leaf, Option, Plus, Query, Regex, Repeat, Star, concat, union
from repro.query.atoms import AnyLabel, AnyLink, LabelAtom, LinkAtom, LinkEndpoint

_NAME_CHARS = frozenset(string.ascii_letters + string.digits + "$_-/:")
_LABEL_CLASSES = frozenset({"ip", "mpls", "smpls"})


class _Scanner:
    """Character-level scanner with position tracking for diagnostics."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> QuerySyntaxError:
        return QuerySyntaxError(
            f"{message} (at offset {self.pos} in {self.text!r})", self.pos
        )

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        """Next character after whitespace, or '' at end of input."""
        self.skip_ws()
        if self.pos >= len(self.text):
            return ""
        return self.text[self.pos]

    def peek_raw(self) -> str:
        """Next character without skipping whitespace."""
        if self.pos >= len(self.text):
            return ""
        return self.text[self.pos]

    def take(self) -> str:
        char = self.peek()
        if char:
            self.pos += 1
        return char

    def expect(self, char: str) -> None:
        if self.peek() != char:
            found = self.peek() or "end of input"
            raise self.error(f"expected {char!r}, found {found!r}")
        self.pos += 1

    def read_name(self, extra: str = "") -> str:
        """Read a maximal run of name characters (plus ``extra`` chars)."""
        self.skip_ws()
        allowed = _NAME_CHARS | set(extra)
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in allowed:
            self.pos += 1
        if self.pos == start:
            found = self.peek_raw() or "end of input"
            raise self.error(f"expected a name, found {found!r}")
        return self.text[start : self.pos]

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)


class QueryParser:
    """Parses query strings into :class:`repro.query.ast.Query` values."""

    def parse(self, text: str) -> Query:
        """Parse a full query ``<a> b <c> k``."""
        scanner = _Scanner(text)
        scanner.expect("<")
        initial = self._regex(scanner, label_context=True, stop=">")
        scanner.expect(">")
        path = self._regex(scanner, label_context=False, stop="<")
        scanner.expect("<")
        final = self._regex(scanner, label_context=True, stop=">")
        scanner.expect(">")
        max_failures = self._integer(scanner)
        if not scanner.at_end():
            raise scanner.error("trailing input after the failure bound")
        return Query(initial, path, final, max_failures)

    def parse_label_regex(self, text: str) -> Regex:
        """Parse a bare label regular expression (used by the CLI)."""
        scanner = _Scanner(text)
        regex = self._regex(scanner, label_context=True, stop="")
        if not scanner.at_end():
            raise scanner.error("trailing input after the expression")
        return regex

    def parse_link_regex(self, text: str) -> Regex:
        """Parse a bare link regular expression (used by the CLI)."""
        scanner = _Scanner(text)
        regex = self._regex(scanner, label_context=False, stop="")
        if not scanner.at_end():
            raise scanner.error("trailing input after the expression")
        return regex

    # ------------------------------------------------------------------
    # regex structure
    # ------------------------------------------------------------------
    def _regex(self, scanner: _Scanner, label_context: bool, stop: str) -> Regex:
        options: List[Regex] = [self._concat(scanner, label_context, stop)]
        while scanner.peek() == "|":
            scanner.take()
            options.append(self._concat(scanner, label_context, stop))
        return union(*options)

    def _concat(self, scanner: _Scanner, label_context: bool, stop: str) -> Regex:
        parts: List[Regex] = []
        while True:
            char = scanner.peek()
            if char == "" or char == "|" or char == ")" or (stop and char == stop):
                break
            parts.append(self._postfix(scanner, label_context, stop))
        return concat(*parts) if parts else Epsilon()

    def _postfix(self, scanner: _Scanner, label_context: bool, stop: str) -> Regex:
        regex = self._atom(scanner, label_context, stop)
        while True:
            # Postfix operators bind without intervening whitespace skipping
            # concerns; '<a>*' style is not valid at query top level anyway.
            char = scanner.peek()
            if char == "*":
                scanner.take()
                regex = Star(regex)
            elif char == "+":
                scanner.take()
                regex = Plus(regex)
            elif char == "?":
                scanner.take()
                regex = Option(regex)
            elif char == "{":
                regex = self._repetition(scanner, regex)
            else:
                return regex

    def _atom(self, scanner: _Scanner, label_context: bool, stop: str) -> Regex:
        char = scanner.peek()
        if char == "(":
            scanner.take()
            inner = self._regex(scanner, label_context, stop=")")
            scanner.expect(")")
            return inner
        if char == ".":
            scanner.take()
            return Leaf(AnyLabel()) if label_context else Leaf(AnyLink())
        if char == "[":
            if label_context:
                return Leaf(self._label_bracket(scanner))
            return Leaf(self._link_bracket(scanner))
        if label_context and (char in _NAME_CHARS):
            name = scanner.read_name()
            if name in _LABEL_CLASSES:
                return Leaf(LabelAtom(classes=frozenset({name})))
            return Leaf(LabelAtom(literals=(name,)))
        found = char or "end of input"
        raise scanner.error(f"unexpected {found!r} in regular expression")

    def _repetition(self, scanner: _Scanner, inner: Regex) -> Regex:
        """Parse a ``{m}``, ``{m,}`` or ``{m,n}`` postfix bound."""
        scanner.expect("{")
        minimum = self._bound(scanner)
        maximum: Optional[int] = minimum
        if scanner.peek() == ",":
            scanner.take()
            maximum = None if scanner.peek() == "}" else self._bound(scanner)
        scanner.expect("}")
        if maximum is not None and maximum < minimum:
            raise scanner.error(
                f"repetition bound {{{minimum},{maximum}}} is empty"
            )
        return Repeat(inner, minimum, maximum)

    def _bound(self, scanner: _Scanner) -> int:
        scanner.skip_ws()
        start = scanner.pos
        while scanner.pos < len(scanner.text) and scanner.text[scanner.pos].isdigit():
            scanner.pos += 1
        if scanner.pos == start:
            raise scanner.error("expected a repetition bound")
        return int(scanner.text[start : scanner.pos])

    # ------------------------------------------------------------------
    # atoms
    # ------------------------------------------------------------------
    def _label_bracket(self, scanner: _Scanner) -> LabelAtom:
        scanner.expect("[")
        negated = False
        if scanner.peek() == "^":
            scanner.take()
            negated = True
        classes = set()
        literals: List[str] = []
        while True:
            # Label literals inside brackets may contain dots (IP addresses).
            name = scanner.read_name(extra=".")
            if name in _LABEL_CLASSES:
                classes.add(name)
            else:
                literals.append(name)
            char = scanner.peek()
            if char == ",":
                scanner.take()
                continue
            if char == "]":
                scanner.take()
                break
            if char in _NAME_CHARS or char == ".":
                continue  # whitespace-separated list
            raise scanner.error(f"expected ',' or ']' in label list, found {char!r}")
        return LabelAtom(
            classes=frozenset(classes), literals=tuple(literals), negated=negated
        )

    def _link_bracket(self, scanner: _Scanner) -> LinkAtom:
        scanner.expect("[")
        negated = False
        if scanner.peek() == "^":
            scanner.take()
            negated = True
        source = self._endpoint(scanner, terminator="#")
        scanner.expect("#")
        target = self._endpoint(scanner, terminator="]")
        scanner.expect("]")
        return LinkAtom(source, target, negated)

    def _endpoint(self, scanner: _Scanner, terminator: str) -> LinkEndpoint:
        char = scanner.peek()
        if char == ".":
            # Either the router wildcard '.' or '.' followed by nothing else
            # before the terminator. An interface on a wildcard router is
            # not supported (matches the paper's syntax).
            scanner.take()
            return LinkEndpoint(router=None)
        router = scanner.read_name()
        interface: Optional[str] = None
        if scanner.peek() == ".":
            scanner.take()
            # Interface names may themselves contain dots (ae1.11), so read
            # greedily up to the terminator.
            interface = self._interface_name(scanner, terminator)
        return LinkEndpoint(router=router, interface=interface)

    def _interface_name(self, scanner: _Scanner, terminator: str) -> str:
        scanner.skip_ws()
        start = scanner.pos
        while (
            scanner.pos < len(scanner.text)
            and scanner.text[scanner.pos] not in (terminator, "#", "]")
            and not scanner.text[scanner.pos].isspace()
        ):
            scanner.pos += 1
        if scanner.pos == start:
            raise scanner.error("expected an interface name after '.'")
        return scanner.text[start : scanner.pos]

    def _integer(self, scanner: _Scanner) -> int:
        scanner.skip_ws()
        start = scanner.pos
        while scanner.pos < len(scanner.text) and scanner.text[scanner.pos].isdigit():
            scanner.pos += 1
        if scanner.pos == start:
            found = scanner.peek_raw() or "end of input"
            raise scanner.error(f"expected the failure bound k, found {found!r}")
        return int(scanner.text[start : scanner.pos])


_DEFAULT_PARSER = QueryParser()


def parse_query(text: str) -> Query:
    """Parse a query string with the default parser."""
    return _DEFAULT_PARSER.parse(text)
