"""Moped-baseline backend: a faithful emulation of the external
pushdown model checker used by P-Rex and as the paper's baseline.

Moped [3, 35] is a *generic* pushdown model checker driven through a
textual input format (Remopla). Using it as a verification backend —
the architecture of P-Rex, and the "Moped" column of the paper's
Table 1 — therefore pays three structural costs that AalWiNes' native
engine avoids:

1. the (reduced) pushdown system is **serialized** to the text format;
2. the model checker **parses** it back into its own representation
   (everything crossing the boundary is text — no object sharing);
3. reachability is decided by an **exhaustive pre\\* fixpoint** with no
   early termination and no weight support, and the witness run comes
   back as text that the caller must map to its own rule objects.

This module implements exactly that boundary: :func:`serialize_remopla`
/ :func:`parse_remopla` define the format, :class:`MopedBackend` is the
"external process", and :func:`solve_with_moped` is the adapter the
verification engine calls. The pushdown semantics are identical to the
native engine's, so verdicts always agree — only the costs differ,
which is precisely the comparison the paper's evaluation makes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import FormatError, PdaError
from repro.pda.bdd import FALSE, Bdd, bits_needed
from repro.pda.prestar import prestar_single
from repro.pda.reductions import reduce_pushdown
from repro.pda.semiring import BOOLEAN
from repro.pda.solver import ReachabilityOutcome, SolverStats
from repro.pda.system import PushdownSystem, Rule
from repro.pda.witness import reconstruct_prestar_run

_HEADER = "# remopla (repro dialect)"


def serialize_remopla(
    pds: PushdownSystem, initial: Tuple[Any, Any], target: Tuple[Any, Any]
) -> Tuple[str, Dict[int, Rule]]:
    """Serialize a PDS to the text format handed to the model checker.

    Control states and stack symbols are interned as opaque identifiers
    (``s<i>`` / ``y<i>``), exactly like a Remopla export would; the rule
    table maps the per-line rule ids back to the caller's rule objects
    (needed to interpret the checker's textual witness).

    The local identifier maps are keyed by the system's *interned* ids —
    within one system id ↔ value is a bijection and rules are walked in
    the same order either way, so the emitted text is byte-identical to
    the historical value-keyed serializer while hashing only machine
    ints.
    """
    state_names: Dict[int, str] = {}
    symbol_names: Dict[int, str] = {}

    def state_id(ident: int) -> str:
        name = state_names.get(ident)
        if name is None:
            name = state_names[ident] = f"s{len(state_names)}"
        return name

    def symbol_id(ident: int) -> str:
        name = symbol_names.get(ident)
        if name is None:
            name = symbol_names[ident] = f"y{len(symbol_names)}"
        return name

    lines: List[str] = [_HEADER]
    rule_table: Dict[int, Rule] = {}
    for index, rule in enumerate(pds.rules):
        rule_table[index] = rule
        push = " ".join(symbol_id(s) for s in rule.push_ids)
        lines.append(
            f"r{index}: {state_id(rule.from_id)} <{symbol_id(rule.pop_id)}> --> "
            f"{state_id(rule.to_id)} <{push}>"
        )
    states, symbols = pds.state_table, pds.symbol_table
    lines.append(
        f"init: {state_id(states.intern(initial[0]))} "
        f"<{symbol_id(symbols.intern(initial[1]))}>"
    )
    lines.append(
        f"reach: {state_id(states.intern(target[0]))} "
        f"<{symbol_id(symbols.intern(target[1]))}>"
    )
    return "\n".join(lines) + "\n", rule_table


@dataclass
class _ParsedSystem:
    """The model checker's own view of the input (string identifiers)."""

    pds: PushdownSystem
    initial: Tuple[str, str]
    target: Tuple[str, str]


def parse_remopla(text: str) -> _ParsedSystem:
    """Parse the text format into a fresh PDS over string identifiers."""
    pds = PushdownSystem()
    initial: Optional[Tuple[str, str]] = None
    target: Optional[Tuple[str, str]] = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        head, _, rest = line.partition(":")
        head = head.strip()
        rest = rest.strip()
        if head == "init" or head == "reach":
            state, symbol = _parse_config(rest, line_number)
            if head == "init":
                initial = (state, symbol)
            else:
                target = (state, symbol)
            continue
        if not head.startswith("r"):
            raise FormatError(f"remopla line {line_number}: unknown directive {head!r}")
        try:
            rule_id = int(head[1:])
        except ValueError:
            raise FormatError(f"remopla line {line_number}: bad rule id {head!r}")
        source, arrow, destination = rest.partition("-->")
        if not arrow:
            raise FormatError(f"remopla line {line_number}: missing arrow")
        from_state, pop = _parse_config(source.strip(), line_number)
        to_state, push = _parse_push(destination.strip(), line_number)
        pds.add_rule(from_state, pop, to_state, push, True, tag=rule_id)
    if initial is None or target is None:
        raise FormatError("remopla input lacks init/reach directives")
    return _ParsedSystem(pds, initial, target)


def _parse_config(text: str, line_number: int) -> Tuple[str, str]:
    state, bracket, rest = text.partition("<")
    if not bracket or not rest.endswith(">"):
        raise FormatError(f"remopla line {line_number}: malformed configuration")
    symbols = rest[:-1].split()
    if len(symbols) != 1:
        raise FormatError(
            f"remopla line {line_number}: configurations carry exactly one symbol"
        )
    return state.strip(), symbols[0]


def _parse_push(text: str, line_number: int) -> Tuple[str, Tuple[str, ...]]:
    state, bracket, rest = text.partition("<")
    if not bracket or not rest.endswith(">"):
        raise FormatError(f"remopla line {line_number}: malformed rule target")
    return state.strip(), tuple(rest[:-1].split())


class SymbolicPrestar:
    """BDD-based pre* saturation — the decision procedure Moped runs.

    Control states and stack symbols are encoded in binary; the
    P-automaton's transition relation ``T(q, γ, q')`` lives in a BDD over
    seven variable blocks (four state blocks, three symbol blocks), and
    the Bouajjani–Esparza–Maler saturation becomes a relational fixpoint:

    * swap rules:  T += ∃p'γ'. R_swap(p, γ, p', γ') ∧ T(p', γ', q)
    * push rules:  T += ∃p'γ₁q₁γ₂. R_push(p, γ, p', γ₁, γ₂)
                         ∧ T(p', γ₁, q₁) ∧ T(q₁, γ₂, q)

    iterated semi-naively (only the delta of the previous round is
    recombined) until the relation stops growing.
    """

    #: Synthetic final state of the target automaton.
    FINAL = "__qf__"

    def __init__(self, pds: PushdownSystem, initial, target) -> None:
        self.pds = pds
        states = sorted(pds.states, key=str)
        symbols = sorted(pds.symbols, key=str)
        for extra in (initial[0], target[0]):
            if extra not in pds.states:
                states.append(extra)
        for extra in (initial[1], target[1]):
            if extra not in pds.symbols:
                symbols.append(extra)
        states.append(self.FINAL)
        self.state_index = {state: i for i, state in enumerate(states)}
        self.symbol_index = {symbol: i for i, symbol in enumerate(symbols)}
        self.bdd = Bdd()
        s_bits = bits_needed(len(states))
        y_bits = bits_needed(len(symbols))
        # Variable blocks, in global order: S1 Y1 S2 Y2 S3 Y3 S4.
        offsets = []
        position = 0
        for width in (s_bits, y_bits, s_bits, y_bits, s_bits, y_bits, s_bits):
            offsets.append(position)
            position += width
        self.s_bits, self.y_bits = s_bits, y_bits
        (
            self.S1,
            self.Y1,
            self.S2,
            self.Y2,
            self.S3,
            self.Y3,
            self.S4,
        ) = (
            tuple(range(offset, offset + width))
            for offset, width in zip(
                offsets, (s_bits, y_bits, s_bits, y_bits, s_bits, y_bits, s_bits)
            )
        )
        self.initial = initial
        self.target = target

    # -- encoding helpers ------------------------------------------------
    def _enc_state(self, state, block) -> int:
        return self.bdd.encode_value(self.state_index[state], block)

    def _enc_symbol(self, symbol, block) -> int:
        return self.bdd.encode_value(self.symbol_index[symbol], block)

    def _transition(self, source, symbol, destination) -> int:
        bdd = self.bdd
        return bdd.apply_and(
            self._enc_state(source, self.S1),
            bdd.apply_and(
                self._enc_symbol(symbol, self.Y1),
                self._enc_state(destination, self.S2),
            ),
        )

    def _block_map(self, *pairs) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        for source_block, target_block in pairs:
            for source_var, target_var in zip(source_block, target_block):
                mapping[source_var] = target_var
        return mapping

    # -- saturation --------------------------------------------------------
    def saturate(self, deadline: Optional[float] = None) -> int:
        """Run the fixpoint; returns the BDD of the final relation T."""
        bdd = self.bdd
        rounds = 0
        swap_relation = FALSE
        push_relation = FALSE
        relation = self._transition(self.target[0], self.target[1], self.FINAL)
        for rule in self.pds.rules:
            if rule.is_pop:
                relation = bdd.apply_or(
                    relation,
                    self._transition(rule.from_state, rule.pop, rule.to_state),
                )
            else:
                head = bdd.apply_and(
                    self._enc_state(rule.from_state, self.S1),
                    bdd.apply_and(
                        self._enc_symbol(rule.pop, self.Y1),
                        bdd.apply_and(
                            self._enc_state(rule.to_state, self.S2),
                            self._enc_symbol(rule.push[0], self.Y2),
                        ),
                    ),
                )
                if rule.is_swap:
                    swap_relation = bdd.apply_or(swap_relation, head)
                else:
                    push_relation = bdd.apply_or(
                        push_relation,
                        bdd.apply_and(head, self._enc_symbol(rule.push[1], self.Y3)),
                    )

        to_23 = self._block_map((self.S1, self.S2), (self.Y1, self.Y2), (self.S2, self.S3))
        to_34 = self._block_map((self.S1, self.S3), (self.Y1, self.Y3), (self.S2, self.S4))
        s3_back = self._block_map((self.S3, self.S2))
        s4_back = self._block_map((self.S4, self.S2))
        mid_vars = tuple(self.S2) + tuple(self.Y2)
        push_vars = mid_vars + tuple(self.S3) + tuple(self.Y3)

        delta = relation
        while delta != FALSE:
            rounds += 1
            if deadline is not None and time.perf_counter() > deadline:
                from repro.errors import VerificationTimeout

                raise VerificationTimeout("symbolic pre* exceeded its deadline")
            delta_23 = bdd.rename(delta, to_23)
            relation_23 = bdd.rename(relation, to_23)
            relation_34 = bdd.rename(relation, to_34)
            delta_34 = bdd.rename(delta, to_34)
            new = FALSE
            if swap_relation != FALSE:
                swaps = bdd.exists(
                    bdd.apply_and(swap_relation, delta_23), mid_vars
                )
                new = bdd.apply_or(new, bdd.rename(swaps, s3_back))
            if push_relation != FALSE:
                # Either leg of the push product may use the delta.
                left = bdd.apply_and(
                    push_relation, bdd.apply_and(delta_23, relation_34)
                )
                right = bdd.apply_and(
                    push_relation, bdd.apply_and(relation_23, delta_34)
                )
                pushes = bdd.exists(bdd.apply_or(left, right), push_vars)
                new = bdd.apply_or(new, bdd.rename(pushes, s4_back))
            updated = bdd.apply_or(relation, new)
            delta = bdd.apply_and(new, bdd.apply_not(relation))
            relation = updated
        if obs.enabled():
            # All accounting sits after the fixpoint: the loop itself
            # pays nothing for instrumentation.
            stats = bdd.stats()
            obs.add("moped.symbolic_rounds", rounds)
            obs.add("bdd.nodes_allocated", stats["nodes"])
            obs.gauge("bdd.nodes", stats["nodes"])
            obs.gauge(
                "bdd.cache_entries",
                stats["and_cache"]
                + stats["or_cache"]
                + stats["not_cache"]
                + stats["exists_cache"]
                + stats["rename_cache"],
            )
        return relation

    def is_reachable(self, relation: int) -> bool:
        """Does the saturated relation accept the initial configuration?"""
        query = self._transition(self.initial[0], self.initial[1], self.FINAL)
        return self.bdd.apply_and(relation, query) != FALSE


class MopedBackend:
    """The "external model checker": text in, text out.

    ``check`` takes the serialized system and returns the checker's
    textual answer: ``"NOT REACHABLE"`` or ``"REACHABLE\\nTRACE: r3 r17
    …"``. Reachability is decided by the symbolic (BDD-based) pre*
    fixpoint, exactly Moped's strategy: exhaustive, unweighted, with a
    separate trace-regeneration pass for reachable instances.
    """

    def check(self, text: str, deadline: Optional[float] = None) -> str:
        """Model-check one serialized instance; returns the textual verdict."""
        obs.add("moped.instances")
        with obs.span("moped.parse"):
            parsed = parse_remopla(text)
        with obs.span("moped.symbolic"):
            symbolic = SymbolicPrestar(parsed.pds, parsed.initial, parsed.target)
            relation = symbolic.saturate(deadline=deadline)
        if not symbolic.is_reachable(relation):
            return "NOT REACHABLE\n"
        # Trace regeneration (Moped's witness pass): an explicit pre*
        # with witness bookkeeping, guided to the initial configuration.
        with obs.span("moped.trace"):
            result = prestar_single(
                parsed.pds,
                BOOLEAN,
                parsed.target[0],
                parsed.target[1],
                source=parsed.initial,
                deadline=deadline,
            )
            weight, path = result.automaton.accept_weight(
                parsed.initial[0], (parsed.initial[1],)
            )
            if not weight:
                raise PdaError("moped trace pass disagrees with the symbolic check")
            rules = reconstruct_prestar_run(result.automaton, path)
        trace = " ".join(f"r{rule.tag}" for rule in rules)
        return f"REACHABLE\nTRACE: {trace}\n"


def solve_with_moped(
    pds: PushdownSystem,
    initial: Tuple[Any, Any],
    target: Tuple[Any, Any],
    use_reductions: bool = True,
    deadline: Optional[float] = None,
) -> ReachabilityOutcome:
    """Solve one reachability instance through the Moped boundary.

    Mirrors Figure 3 of the paper: the (optionally reduced) pushdown is
    *sent to the Moped engine*; the textual verdict and witness come
    back and are mapped onto the caller's rule objects.
    """
    start = time.perf_counter()
    system = pds
    reduction_report = None
    if use_reductions:
        with obs.span("reduce"):
            system, reduction_report = reduce_pushdown(
                pds, initial[0], initial[1], target[0]
            )
        if obs.enabled():
            obs.add("pda.rules_removed", pds.rule_count() - system.rule_count())
    with obs.span("moped.serialize"):
        text, rule_table = serialize_remopla(system, initial, target)
    answer = MopedBackend().check(text, deadline=deadline)

    lines = answer.splitlines()
    reachable = bool(lines) and lines[0] == "REACHABLE"
    rules: Optional[Tuple[Rule, ...]] = None
    if reachable:
        if len(lines) < 2 or not lines[1].startswith("TRACE: "):
            raise PdaError("moped backend returned no trace for a reachable query")
        ids = [int(token[1:]) for token in lines[1][len("TRACE: ") :].split()]
        rules = tuple(rule_table[rule_id] for rule_id in ids)
    stats = SolverStats(
        method="moped",
        rules_before=pds.rule_count(),
        rules_after=system.rule_count(),
        elapsed_seconds=time.perf_counter() - start,
        reduction=reduction_report,
    )
    return ReachabilityOutcome(reachable, reachable, rules, stats)
