"""SRLG-aware what-if verification.

Extends Problem 1 to *failure events*: "does a trace matching the query
exist under at most g shared-risk group failures?" A single event may
fail several links (conduit cut), so ``g`` events can exceed the
link-count budget ``k`` of the base query language.

Strategy (mirroring the paper's dual architecture):

1. **Over-approximation** — run the weighted (Failures-guided) engine
   with the link budget ``g · max-group-size`` (an upper bound on the
   links that g events can fail). UNSAT here is conclusive.
2. **Feasibility** — map the reconstructed witness's per-step failure
   requirements onto groups (:func:`minimal_failure_groups`): if ≤ g
   events cover them without killing a used link, the answer is SAT
   with the concrete event set.
3. **Exact bounded fallback** — enumerate the C(#groups, ≤g) event
   subsets explicitly, verifying the query under each induced link-set
   with bounded trace search. Exponential in g (exactly the enumeration
   the PDA encoding avoids for plain link failures), so it is bounded
   and optional; when it is skipped or its bounds are hit, the verdict
   is INCONCLUSIVE.

This module is an *extension* beyond the published tool (whose query
semantics counts individual links), in the spirit of the paper's
shared-risk-group motivation [6, 17, 30].
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Union

from repro.model.header import Header
from repro.model.network import MplsNetwork
from repro.model.srlg import SharedRiskGroups, minimal_failure_groups
from repro.model.trace import Trace, TraceStep, enumerate_traces
from repro.query.ast import Query
from repro.query.nfa import label_nfa, link_nfa, valid_header_nfa
from repro.query.parser import parse_query
from repro.verification.engine import weighted_engine
from repro.verification.explicit import enumerate_words
from repro.verification.results import Status


@dataclass
class SrlgResult:
    """Outcome of an SRLG-aware verification."""

    status: Status
    trace: Optional[Trace] = None
    #: The failure events enabling the witness (group names; singleton
    #: events are named ``link:<name>``).
    failed_groups: Optional[FrozenSet[str]] = None

    @property
    def satisfied(self) -> bool:
        return self.status is Status.SATISFIED


class SrlgEngine:
    """Verifies queries under a budget of shared-risk failure events.

    The ``k`` inside the query text is ignored in favour of the
    ``max_group_failures`` argument (documented quirk: SRLG semantics
    replaces the link-count bound).
    """

    def __init__(
        self,
        network: MplsNetwork,
        srlg: SharedRiskGroups,
        exact_fallback: bool = True,
        fallback_trace_length: int = 10,
        fallback_header_depth: int = 3,
    ) -> None:
        self.network = network
        self.srlg = srlg
        self.exact_fallback = exact_fallback
        self.fallback_trace_length = fallback_trace_length
        self.fallback_header_depth = fallback_header_depth

    def verify(
        self,
        query: Union[Query, str],
        max_group_failures: int,
        timeout_seconds: Optional[float] = None,
    ) -> SrlgResult:
        """Is the query satisfiable under at most this many events?"""
        if isinstance(query, str):
            query = parse_query(query)
        link_budget = max_group_failures * self.srlg.max_group_size()
        relaxed = Query(
            query.initial_header, query.path, query.final_header, link_budget
        )

        engine = weighted_engine(self.network, weight="failures")
        over = engine.verify(relaxed, timeout_seconds=timeout_seconds)
        if over.status is Status.UNSATISFIED:
            return SrlgResult(Status.UNSATISFIED)

        if over.status is Status.SATISFIED:
            events = minimal_failure_groups(
                self.network, over.trace, self.srlg, max_group_failures
            )
            if events is not None:
                return SrlgResult(Status.SATISFIED, over.trace, events)

        if self.exact_fallback:
            exact = self._exact_bounded(query, max_group_failures)
            if exact is not None:
                return exact
        return SrlgResult(Status.INCONCLUSIVE)

    def verify_under_event(
        self,
        query: Union[Query, str],
        group: str,
        timeout_seconds: Optional[float] = None,
    ) -> SrlgResult:
        """Deterministic what-if: *given* that one failure event has
        happened, does a matching trace exist?

        The event's links are baked into a degraded network (the 𝓐
        operator partially evaluated) and the query is verified there
        with ``k = 0`` — no further failures are hypothesized. This is
        the universally-quantified side of SRLG analysis: run it for
        every event to audit survivability of a policy.
        """
        if isinstance(query, str):
            query = parse_query(query)
        from repro.model.srlg import degrade_network
        from repro.verification.engine import dual_engine

        failed = self.srlg.links_of(group)
        degraded = degrade_network(self.network, failed, name=f"minus-{group}")
        pinned = Query(query.initial_header, query.path, query.final_header, 0)
        result = dual_engine(degraded).verify(pinned, timeout_seconds=timeout_seconds)
        return SrlgResult(
            result.status,
            result.trace,
            frozenset({group}) if result.trace is not None else None,
        )

    # ------------------------------------------------------------------
    def _exact_bounded(
        self, query: Query, max_group_failures: int
    ) -> Optional[SrlgResult]:
        """Enumerate event subsets and search for a witness under each.

        Returns SAT with the event set when a witness is found; None
        (→ INCONCLUSIVE) otherwise — bounded search cannot prove UNSAT.
        """
        network = self.network
        a_nfa = label_nfa(query.initial_header, network).intersect(
            valid_header_nfa(network)
        )
        b_nfa = link_nfa(query.path, network)
        c_nfa = label_nfa(query.final_header, network)
        headers = [
            Header(word)
            for word in enumerate_words(a_nfa, self.fallback_header_depth + 1)
        ]
        # Relevant events: groups plus singletons of links that occur in
        # some backup requirement (others can never be needed).
        events: List[str] = list(self.srlg.group_names())
        backup_links = set()
        for _link, _label, groups in network.routing.items():
            for index in range(1, len(groups.groups)):
                backup_links |= set(groups.required_failures(index))
        for link in sorted(backup_links, key=lambda l: l.name):
            events.extend(
                group
                for group in self.srlg.groups_of(link)
                if group.startswith(SharedRiskGroups.SINGLETON_PREFIX)
            )
        events = list(dict.fromkeys(events))

        for size in range(max_group_failures + 1):
            for combo in itertools.combinations(events, size):
                failed = self.srlg.links_of_groups(combo)
                witness = self._find_witness(headers, b_nfa, c_nfa, failed)
                if witness is not None:
                    return SrlgResult(Status.SATISFIED, witness, frozenset(combo))
        return None

    def _find_witness(self, headers, b_nfa, c_nfa, failed) -> Optional[Trace]:
        network = self.network
        for first_link in network.topology.links:
            if first_link in failed:
                continue
            if not b_nfa.step_set(b_nfa.initial, first_link):
                continue
            for header in headers:
                initial = TraceStep(first_link, header)
                for trace in enumerate_traces(
                    network,
                    initial,
                    failed,
                    self.fallback_trace_length,
                    self.fallback_header_depth,
                ):
                    if not b_nfa.accepts(trace.links):
                        continue
                    if not c_nfa.accepts(trace.last_header.labels):
                        continue
                    return trace
        return None
