"""Verification pipeline: query compilation, dual engine, baselines."""

from repro.verification.compiler import ACCEPT, START, CompiledQuery, QueryCompiler
from repro.verification.engine import (
    VerificationEngine,
    dual_engine,
    likelihood_engine,
    moped_engine,
    weighted_engine,
)
from repro.verification.explicit import ExplicitEngine, ExplicitResult
from repro.verification.reconstruction import (
    ReconstructedWitness,
    check_witness,
    trace_from_rules,
)
from repro.verification.batch import BatchItem, BatchSummary, BatchVerifier, parse_query_file
from repro.verification.moped import MopedBackend, SymbolicPrestar, solve_with_moped
from repro.verification.results import EngineStats, Status, VerificationResult
from repro.verification.srlg import SrlgEngine, SrlgResult

__all__ = [
    "ACCEPT",
    "BatchItem",
    "BatchSummary",
    "BatchVerifier",
    "MopedBackend",
    "SrlgEngine",
    "SrlgResult",
    "SymbolicPrestar",
    "CompiledQuery",
    "EngineStats",
    "ExplicitEngine",
    "ExplicitResult",
    "QueryCompiler",
    "ReconstructedWitness",
    "START",
    "Status",
    "VerificationEngine",
    "VerificationResult",
    "check_witness",
    "dual_engine",
    "likelihood_engine",
    "moped_engine",
    "trace_from_rules",
    "parse_query_file",
    "solve_with_moped",
    "weighted_engine",
]
