"""Compilation of (network, query) into a weighted pushdown system.

This implements the translation at the heart of AalWiNes (§4): a query
``⟨a⟩ b ⟨c⟩ k`` over an MPLS network becomes a single-source,
single-target reachability question on a pushdown system whose stack
holds the packet header. The construction has three phases:

1. **Header construction** — from the start state, push a word of
   ``Lang(a) ∩ H`` (valid headers) onto the stack. Pushing builds the
   stack bottom-up, so the phase walks the *reversed* product automaton
   of ``a`` and the valid-header automaton; each control state remembers
   the NFA state and the symbol just pushed (the current top), keeping
   every rule in normal form.
2. **Routing simulation** — control states ``(link e, A_b-state)``
   describe a packet that has just arrived on ``e`` with the path
   automaton at that state. Every routing-table entry becomes a chain of
   normal-form rules applying its operation sequence; an entry of
   priority group ``j`` is enabled iff the links of all higher-priority
   groups can fail, which is where the over-/under-approximation of the
   failure bound ``k`` enters:

   * *over-approximation*: the entry is usable whenever its required
     failed-link set has size ≤ k (i.e. "up to k links may fail at any
     router", §4.2);
   * *under-approximation*: the control state additionally carries a
     global budget ``f``; each step adds its required-failure count and
     the run blocks when the budget would exceed ``k`` (loops may count
     one failed link twice — hence *under*).

3. **Final check** — when the path automaton accepts, the stack is
   popped through the automaton of ``c``; reaching the bottom marker in
   an accepting state moves to the accept state.

Rule weights come from the query's weight vector (or ``True`` for the
unweighted engines): the quantitative contribution of each forwarding
step is attached to the first rule of its operation chain.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.errors import VerificationError
from repro.model.labels import BOTTOM, Label
from repro.model.network import MplsNetwork
from repro.model.operations import Operation, Push, Swap, stack_growth
from repro.model.quantities import failure_set_cost
from repro.model.topology import Link
from repro.pda.intern import SymbolTable
from repro.pda.semiring import BOOLEAN, Semiring, vector_semiring
from repro.pda.system import PushdownSystem
from repro.query.ast import Query
from repro.query.nfa import Nfa, label_nfa, link_nfa, valid_header_nfa
from repro.query.weights import StepCosts, WeightVector

#: Control-state tags.
START = ("start",)
ACCEPT = ("accept",)


@dataclass
class CompiledQuery:
    """A compiled reachability instance plus everything needed to map PDA
    runs back to network traces."""

    network: MplsNetwork
    query: Query
    mode: str  # "over" | "under"
    pds: PushdownSystem
    semiring: Semiring
    initial: Tuple[Any, Any]
    target: Tuple[Any, Any]
    weight_vector: Optional[WeightVector]

    def link_of_state(self, state: Any) -> Optional[Link]:
        """The network link of a phase-2 arrival state, None otherwise."""
        if isinstance(state, tuple) and state and state[0] == "link":
            return self.network.topology.link(state[1])
        return None


def find_one_step_witness(
    network: MplsNetwork,
    query: Query,
    weight_vector: Optional[WeightVector] = None,
    distance_of: Optional[Callable[[Link], int]] = None,
) -> Optional[Tuple[Any, Any]]:
    """Closed-form handling of one-step traces.

    A trace of length one — the packet arrives on a single link matching
    ``b`` with a header in ``Lang(a) ∩ Lang(c) ∩ H`` — involves no
    forwarding at all, so it can be decided by NFA products alone. The
    engine checks this first; the pushdown encoding then only has to
    cover traces of length ≥ 2, which keeps its entry phase linear.

    Returns ``(trace, weight)`` for the minimum-weight one-step witness
    (weight is None for unweighted verification), or None when no
    one-step witness exists. One-step traces never require failures, so
    the witness is always feasible.
    """
    from repro.model.header import Header
    from repro.model.trace import Trace, TraceStep
    from repro.query.nfa import Nfa

    distance = distance_of if distance_of is not None else network.topology.link_distance
    a_nfa = label_nfa(query.initial_header, network).intersect(
        valid_header_nfa(network)
    )
    c_nfa = label_nfa(query.final_header, network)
    product = a_nfa.intersect(c_nfa).trim()
    header_word = _shortest_word(product)
    if header_word is None:
        return None
    b_nfa = link_nfa(query.path, network)
    best_link: Optional[Link] = None
    best_weight: Optional[Tuple[int, ...]] = None
    for link in network.topology.links:
        if not b_nfa.accepts([link]):
            continue
        if weight_vector is None:
            best_link = link
            break
        weight = weight_vector.step_weight(StepCosts.for_link(link, distance))
        if best_weight is None or weight < best_weight:
            best_link, best_weight = link, weight
    if best_link is None:
        return None
    trace = Trace([TraceStep(best_link, Header(header_word))])
    return trace, best_weight


def _shortest_word(nfa: "Nfa") -> Optional[Tuple[Label, ...]]:
    """One shortest accepted word of an NFA (None for the empty language)."""
    from collections import deque as _deque

    frontier = _deque((state, ()) for state in nfa.initial)
    seen = set(nfa.initial)
    while frontier:
        state, word = frontier.popleft()
        if state in nfa.accepting:
            return word
        for edge in nfa.edges_from(state):
            if edge.target not in seen and edge.symbols:
                seen.add(edge.target)
                # min over the symbol set keeps the chosen word independent
                # of set iteration order (i.e. of PYTHONHASHSEED).
                symbol = min(edge.symbols, key=str)
                frontier.append((edge.target, word + (symbol,)))
    return None


class QueryCompiler:
    """Compiles queries against one fixed network.

    ``distance_of`` feeds the *Distance* atomic quantity; it defaults to
    the topology's link distance (geographic when coordinates exist).

    Compilations are memoized per ``(query, mode, weight vector)``:
    queries and weight vectors are frozen dataclasses, compilation is a
    pure function of them plus the fixed network, and a compiled system
    is safe to share — reductions build *new* systems and the interning
    tables are append-only arenas (with a thread-safe ``intern``), so
    concurrent solves over one memoized instance never interfere. This is
    what lets the farm's engine cache amortize compilation across a
    whole what-if sweep. ``memo_capacity=0`` disables memoization.
    """

    def __init__(
        self,
        network: MplsNetwork,
        distance_of: Optional[Callable[[Link], int]] = None,
        memo_capacity: int = 128,
        state_table: Optional[SymbolTable] = None,
        symbol_table: Optional[SymbolTable] = None,
        spec_table: Optional[SymbolTable] = None,
    ) -> None:
        self.network = network
        self._custom_distance = distance_of is not None
        self.distance_of = (
            distance_of if distance_of is not None else network.topology.link_distance
        )
        #: Content-hash key of the network in the shared artifact store;
        #: None keeps the store out of the loop (see
        #: :meth:`attach_artifact_key`).
        self.artifact_key: Optional[str] = None
        # Optional shared interning arenas: an incremental sweep compiles
        # the baseline and every variant into ONE id space (plus a rule
        # spec table) so rule sets diff as flat integer multisets. All
        # three tables must travel together — spec ids quote state and
        # symbol ids. Defaults (None) give every compiled system fresh
        # private tables, exactly as before.
        self.state_table = state_table
        self.symbol_table = symbol_table
        self.spec_table = spec_table
        self.memo_capacity = memo_capacity
        self.memo_hits = 0
        self.memo_misses = 0
        self._memo: "OrderedDict[Tuple[Query, str, Optional[WeightVector]], CompiledQuery]" = (
            OrderedDict()
        )
        self._memo_lock = threading.Lock()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def attach_artifact_key(self, key: str) -> None:
        """Name this compiler's network in the shared artifact store.

        Once attached (and when a store is active — see
        :func:`repro.farm.store.active_store`), compile-memo misses
        consult the store for a pickled :class:`CompiledQuery` built by
        a sibling process, and publish fresh compilations back. The key
        is ignored when compilation is not a pure function of the
        network's content: a custom ``distance_of`` callable or shared
        interning tables (the incremental family's compilers) make the
        artifact process-specific.
        """
        if self._custom_distance or self.state_table is not None:
            return
        self.artifact_key = key

    def _store_fetch(
        self,
        query: Query,
        mode: str,
        weight_vector: Optional[WeightVector],
    ) -> Tuple[Optional[CompiledQuery], Optional[Any], Optional[str]]:
        """(stored artifact, store, key) for a memo miss; Nones when the
        store is out of the loop."""
        if self.artifact_key is None:
            return None, None, None
        from repro.farm.store import active_store

        store = active_store()
        if store is None:
            return None, None, None
        from repro.farm.cache import hash_text

        key = hash_text(
            f"{self.artifact_key}|{mode}|{query!r}|{weight_vector!r}"
        )
        compiled = store.get_object("compiled", key)
        if compiled is not None:
            # The pickled artifact carries a *copy* of the network;
            # rebind ours so witness traces reference this process's
            # link objects (identity matters to failure-set reporting).
            compiled.network = self.network
            if obs.enabled():
                obs.add("compiler.store_hits")
        return compiled, store, key

    def compile(
        self,
        query: Query,
        mode: str = "over",
        weight_vector: Optional[WeightVector] = None,
    ) -> CompiledQuery:
        """Build the pushdown system for one query.

        ``mode`` selects the over- or under-approximating encoding of the
        failure bound; ``weight_vector`` switches on the quantitative
        (weighted) encoding.
        """
        if mode not in ("over", "under"):
            raise VerificationError(f"unknown compilation mode {mode!r}")
        if self.memo_capacity <= 0:
            return self._compile(query, mode, weight_vector)
        memo_key = (query, mode, weight_vector)
        # Like the farm's ArtifactCache, the build runs *under* the lock:
        # compilation is deterministic, and compile-once keeps the
        # observability counters independent of thread scheduling.
        with self._memo_lock:
            cached = self._memo.get(memo_key)
            if cached is not None:
                self._memo.move_to_end(memo_key)
                self.memo_hits += 1
                if obs.enabled():
                    obs.add("compiler.memo_hits")
                return cached
            compiled, store, store_key = self._store_fetch(
                query, mode, weight_vector
            )
            if compiled is None:
                compiled = self._compile(query, mode, weight_vector)
                if store is not None:
                    # Strip the network before publishing: the fetch path
                    # rebinds the reader's own network anyway (states and
                    # tags reference links by *name*), and the copy is
                    # pure dead weight — for small queries it dominates
                    # the artifact.
                    store.put_object(
                        "compiled", store_key, replace(compiled, network=None)
                    )
            self.memo_misses += 1
            if obs.enabled():
                obs.add("compiler.memo_misses")
            self._memo[memo_key] = compiled
            while len(self._memo) > self.memo_capacity:
                self._memo.popitem(last=False)
            return compiled

    def _compile(
        self,
        query: Query,
        mode: str,
        weight_vector: Optional[WeightVector],
    ) -> CompiledQuery:
        semiring: Semiring = (
            BOOLEAN if weight_vector is None else vector_semiring(weight_vector.arity)
        )
        with obs.span("compile", mode=mode):
            builder = _Builder(self, query, mode, weight_vector, semiring)
            pds = builder.build()
        if obs.enabled():
            obs.add("compiler.compilations")
            obs.add(f"compiler.{mode}_rules", pds.rule_count())
            obs.add(
                "compiler.nfa_states",
                builder.a_nfa.state_count
                + builder.b_nfa.state_count
                + builder.c_nfa.state_count,
            )
        return CompiledQuery(
            network=self.network,
            query=query,
            mode=mode,
            pds=pds,
            semiring=semiring,
            initial=(START, BOTTOM),
            target=(ACCEPT, BOTTOM),
            weight_vector=weight_vector,
        )


class _Builder:
    """One compilation run (kept separate to hold per-run state)."""

    def __init__(
        self,
        compiler: QueryCompiler,
        query: Query,
        mode: str,
        weight_vector: Optional[WeightVector],
        semiring: Semiring,
    ) -> None:
        self.network = compiler.network
        self.distance_of = compiler.distance_of
        self.query = query
        self.mode = mode
        self.weight_vector = weight_vector
        self.semiring = semiring
        self.max_failures = query.max_failures
        self.pds = PushdownSystem(
            compiler.state_table, compiler.symbol_table, spec_table=compiler.spec_table
        )
        # Compiled NFAs.
        network = self.network
        self.a_nfa = label_nfa(query.initial_header, network).intersect(
            valid_header_nfa(network)
        )
        self.b_nfa = link_nfa(query.path, network)
        self.c_nfa = label_nfa(query.final_header, network)
        self.reversed_a = self.a_nfa.reverse().trim()
        # Label pools for unknown-top op expansion. Sorted so rule order —
        # and therefore interned ids and equal-weight tie-breaking — is
        # identical across processes regardless of PYTHONHASHSEED.
        labels = network.labels
        self.plain_labels = tuple(sorted(labels.mpls_labels, key=str))
        self.bottom_labels = tuple(sorted(labels.bottom_mpls_labels, key=str))
        self.ip_labels = tuple(sorted(labels.ip_labels, key=str))

    # ------------------------------------------------------------------
    # weights
    # ------------------------------------------------------------------
    def _weight(self, costs: Optional[StepCosts]) -> Any:
        if self.weight_vector is None:
            return True
        if costs is None:
            return self.semiring.one
        return self.weight_vector.step_weight(costs)

    def _one(self) -> Any:
        return self.semiring.one

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> PushdownSystem:
        entry_states = self._build_header_phase()
        reachable_links = self._build_routing_phase(entry_states)
        self._build_check_phase(reachable_links)
        return self.pds

    # -- phase 1: header construction ----------------------------------
    def _build_header_phase(self) -> List[Tuple[Any, Label]]:
        """Push words of Lang(a) ∩ H (reversed) and hand over to entry links.

        Returns the list of phase-2 entry states paired with the header's
        top label (needed nowhere further, but useful for debugging).
        """
        reversed_a = self.reversed_a
        # Possible (NFA state, just-pushed top) pairs, discovered by BFS.
        initial_pairs = [(q, BOTTOM) for q in reversed_a.initial]
        seen: Set[Tuple[int, Label]] = set(initial_pairs)
        frontier = deque(initial_pairs)
        accepting_pairs: List[Tuple[int, Label]] = []
        while frontier:
            q, top = frontier.popleft()
            if q in reversed_a.accepting and top is not BOTTOM:
                accepting_pairs.append((q, top))
            for edge in reversed_a.edges_from(q):
                for label in sorted(edge.symbols, key=str):
                    source_state = ("hdr", q, top) if top is not BOTTOM else START
                    self.pds.add_rule(
                        source_state,
                        top,
                        ("hdr", edge.target, label),
                        (label, top),
                        self._one(),
                        tag=("hdr", label),
                    )
                    pair = (edge.target, label)
                    if pair not in seen:
                        seen.add(pair)
                        frontier.append(pair)

        # Hand over: for every completed header with top `t`, enter the
        # network on any link the path automaton can start with. An entry
        # is only useful when the packet can be forwarded further (the
        # link has a rule for that top label): one-step traces — where
        # the packet enters and immediately leaves — are handled in
        # closed form by :func:`find_one_step_witness`, never through the
        # pushdown, which keeps this construction linear instead of
        # |labels| × |links|.
        entry_states: List[Tuple[Any, Label]] = []
        b_nfa = self.b_nfa
        routing = self.network.routing
        for q, top in accepting_pairs:
            for link in self.network.topology.links:
                if not routing.has_rule(link, top):
                    continue
                for q_b in b_nfa.step_set(b_nfa.initial, link):
                    state = self._link_state(link, q_b, 0)
                    costs = StepCosts.for_link(link, self.distance_of)
                    self.pds.add_rule(
                        ("hdr", q, top),
                        top,
                        state,
                        (top,),
                        self._weight(costs),
                        tag=("entry", link.name),
                    )
                    entry_states.append((state, top))
        return entry_states

    def _link_state(self, link: Link, q_b: int, budget: int) -> Tuple[Any, ...]:
        if self.mode == "under":
            return ("link", link.name, q_b, budget)
        return ("link", link.name, q_b)

    # -- phase 2: routing simulation ------------------------------------
    def _build_routing_phase(
        self, entry_states: Sequence[Tuple[Any, Label]]
    ) -> List[Tuple[Any, ...]]:
        """Generate op-chain rules for every reachable (link, A_b state
        [, budget]) control state; returns all discovered link states."""
        routing = self.network.routing
        b_nfa = self.b_nfa
        # Insertion-ordered (dict-as-set) so the returned state list is
        # discovery-ordered, not hash-ordered.
        seen: Dict[Tuple[Any, ...], None] = {}
        frontier: deque = deque()
        for state, _top in entry_states:
            if state not in seen:
                seen[state] = None
                frontier.append(state)
        while frontier:
            state = frontier.popleft()
            link = self.network.topology.link(state[1])
            q_b = state[2]
            budget = state[3] if self.mode == "under" else 0
            for label in routing.labels_for_link(link):
                groups = routing.lookup(link, label)
                for priority_index, entry in groups.all_entries():
                    required = groups.required_failures(priority_index)
                    if entry.out_link in required:
                        continue  # the chosen link would itself be failed
                    failures_needed = len(required)
                    if self.mode == "over":
                        if failures_needed > self.max_failures:
                            continue
                        next_budget = 0
                    else:
                        next_budget = budget + failures_needed
                        if next_budget > self.max_failures:
                            continue
                    for q_b_next in b_nfa.step(q_b, entry.out_link):
                        target = self._link_state(entry.out_link, q_b_next, next_budget)
                        costs = StepCosts.for_link(
                            entry.out_link,
                            self.distance_of,
                            failures=failures_needed,
                            tunnels=max(0, stack_growth(entry.operations)),
                            likelihood=failure_set_cost(required),
                        )
                        self._compile_chain(
                            state, label, entry.operations, target, costs
                        )
                        if target not in seen:
                            seen[target] = None
                            frontier.append(target)
        return list(seen)

    def _compile_chain(
        self,
        source: Tuple[Any, ...],
        matched_label: Label,
        operations: Tuple[Operation, ...],
        target: Tuple[Any, ...],
        costs: StepCosts,
    ) -> None:
        """Translate one routing entry into a chain of normal-form rules.

        The quantitative weight of the whole step sits on the first rule;
        intermediate rules carry the neutral weight.
        """
        weight = self._weight(costs)
        if not operations:
            self.pds.add_rule(
                source, matched_label, target, (matched_label,), weight, tag=("fwd",)
            )
            return
        # Chain states are *content-addressed*: two compilations of the
        # same entry (even across network variants) name their
        # intermediate states identically, so the incremental solver can
        # diff baseline and variant rule sets symbolically and see only
        # the rules that actually changed. A per-run counter here would
        # renumber every chain after the first differing entry.
        chain_key = (source, matched_label, operations, target)
        current_state = source
        # Known top symbol, or None once a pop uncovered unknown content.
        known_top: Optional[Label] = matched_label
        for index, op in enumerate(operations):
            is_last = index == len(operations) - 1
            next_state = target if is_last else ("op", chain_key, index)
            rule_weight = weight if index == 0 else self._one()
            self._compile_op(current_state, known_top, op, next_state, rule_weight)
            known_top = self._next_known_top(known_top, op)
            current_state = next_state

    def _next_known_top(
        self, known_top: Optional[Label], op: Operation
    ) -> Optional[Label]:
        if isinstance(op, (Swap, Push)):
            return op.label
        return None  # after a pop the uncovered symbol is unknown

    def _tops_for_unknown(self, op: Operation) -> Tuple[Label, ...]:
        """Feasible top symbols for an operation on an *unknown* top.

        Validity of the rewritten header restricts the candidates by
        label kind, which keeps the expansion small.
        """
        if isinstance(op, Swap):
            if op.label.is_mpls:
                return self.plain_labels
            if op.label.is_bottom_mpls:
                return self.bottom_labels
            return self.ip_labels
        if isinstance(op, Push):
            if op.label.is_mpls:
                return self.plain_labels + self.bottom_labels
            if op.label.is_bottom_mpls:
                return self.ip_labels
            return ()
        # Pop: anything poppable.
        return self.plain_labels + self.bottom_labels

    def _compile_op(
        self,
        source: Any,
        known_top: Optional[Label],
        op: Operation,
        target: Any,
        weight: Any,
    ) -> None:
        tops = (known_top,) if known_top is not None else self._tops_for_unknown(op)
        for top in tops:
            if isinstance(op, Swap):
                if not self._swap_valid(top, op.label):
                    continue
                self.pds.add_rule(
                    source, top, target, (op.label,), weight, tag=("op", op)
                )
            elif isinstance(op, Push):
                if not self._push_valid(top, op.label):
                    continue
                self.pds.add_rule(
                    source, top, target, (op.label, top), weight, tag=("op", op)
                )
            else:  # Pop
                if top.is_ip or top.is_stack_bottom:
                    continue
                self.pds.add_rule(source, top, target, (), weight, tag=("op", op))

    @staticmethod
    def _swap_valid(top: Label, replacement: Label) -> bool:
        if top.is_stack_bottom:
            return False
        return top.kind is replacement.kind

    @staticmethod
    def _push_valid(top: Label, pushed: Label) -> bool:
        if top.is_stack_bottom:
            return False
        if top.is_ip:
            return pushed.is_bottom_mpls
        return pushed.is_mpls

    # -- phase 3: final-header check ------------------------------------
    def _build_check_phase(self, link_states: Iterable[Tuple[Any, ...]]) -> None:
        c_nfa = self.c_nfa
        # Pop-and-read rules inside the check phase. Only states reachable
        # *after* the first symbol can host them (entry rules below jump
        # straight past the first symbol of c).
        interior = {
            edge.target
            for state in range(c_nfa.state_count)
            for edge in c_nfa.edges_from(state)
        }
        for state in sorted(interior):
            for edge in c_nfa.edges_from(state):
                for label in sorted(edge.symbols, key=str):
                    self.pds.add_rule(
                        ("chk", state),
                        label,
                        ("chk", edge.target),
                        (),
                        self._one(),
                        tag=("chk",),
                    )
        # Entry into the check phase from accepting path states, merged
        # with the first pop (keeps the construction ε-free). A naive
        # expansion would emit |accepting states| × |first(c)| rules; we
        # instead run the top-of-stack analysis on the phases built so far
        # and only generate rules for labels that can actually be on top
        # at each state — the same static analysis the reductions use.
        from repro.pda.reductions import analyze_top_of_stack

        analysis = analyze_top_of_stack(self.pds, START, BOTTOM)
        first_targets: Dict[Label, Set[int]] = {}
        for q0 in c_nfa.initial:
            for edge in c_nfa.edges_from(q0):
                for label in edge.symbols:
                    first_targets.setdefault(label, set()).add(edge.target)
        accepting_b = self.b_nfa.accepting
        for state in link_states:
            if state[2] not in accepting_b:
                continue
            possible_tops = analysis.tops.get(state, ())
            for label in sorted(possible_tops, key=str):
                for target_state in sorted(first_targets.get(label, ())):
                    self.pds.add_rule(
                        state,
                        label,
                        ("chk", target_state),
                        (),
                        self._one(),
                        tag=("chk-enter",),
                    )
        # Acceptance once the stack is down to the bottom marker.
        for q in c_nfa.accepting:
            self.pds.add_rule(
                ("chk", q), BOTTOM, ACCEPT, (BOTTOM,), self._one(), tag=("accept",)
            )
