"""Explicit-state reference engine (test oracle).

The paper notes that representing MPLS networks symbolically as
pushdown automata gives an exponential speedup over "the direct encoding
of all possible sequences of header symbols". This module *is* that
direct encoding: it enumerates failure sets, initial headers and traces
explicitly, within user-supplied bounds. It is exponential and only
suitable for small networks — which makes it the perfect independent
oracle for the PDA-based engines in the test-suite, and an honest
baseline for the "symbolic vs. explicit" ablation benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from repro.model.header import Header
from repro.model.labels import Label
from repro.model.network import MplsNetwork
from repro.model.trace import Trace, TraceStep, enumerate_traces
from repro.query.ast import Query
from repro.query.nfa import Nfa, label_nfa, link_nfa, valid_header_nfa
from repro.query.parser import parse_query
from repro.query.weights import WeightVector


def enumerate_words(nfa: Nfa, max_length: int) -> Iterator[Tuple[Label, ...]]:
    """All words of length ≤ max_length accepted by an NFA (DFS)."""
    stack: List[Tuple[FrozenSet[int], Tuple[Label, ...]]] = [(nfa.initial, ())]
    while stack:
        states, word = stack.pop()
        if states & nfa.accepting:
            yield word
        if len(word) >= max_length:
            continue
        symbols: Set[Label] = set()
        for state in states:
            for edge in nfa.edges_from(state):
                symbols.update(edge.symbols)
        for symbol in symbols:
            successor = nfa.step_set(states, symbol)
            if successor:
                stack.append((successor, word + (symbol,)))


@dataclass
class ExplicitResult:
    """Ground-truth answer from exhaustive enumeration (within bounds)."""

    satisfied: bool
    witnesses: Tuple[Trace, ...]
    #: Lexicographically best (weight, trace) pair when a vector was given.
    best_weight: Optional[Tuple[int, ...]] = None
    best_trace: Optional[Trace] = None


class ExplicitEngine:
    """Bounded exhaustive verification by direct enumeration.

    ``max_trace_length`` bounds the number of links per trace,
    ``max_header_depth`` the number of MPLS labels pushed above the IP
    label, and ``max_initial_header`` the length of enumerated initial
    headers. Within those bounds the answer is exact.
    """

    def __init__(
        self,
        network: MplsNetwork,
        max_trace_length: int = 8,
        max_header_depth: int = 4,
        max_initial_header: int = 4,
        max_witnesses: int = 10_000,
    ) -> None:
        self.network = network
        self.max_trace_length = max_trace_length
        self.max_header_depth = max_header_depth
        self.max_initial_header = max_initial_header
        self.max_witnesses = max_witnesses

    def verify(
        self,
        query: Union[Query, str],
        weight_vector: Optional[WeightVector] = None,
    ) -> ExplicitResult:
        """Exhaustively answer a query within the configured bounds."""
        if isinstance(query, str):
            query = parse_query(query)
        network = self.network
        a_nfa = label_nfa(query.initial_header, network).intersect(
            valid_header_nfa(network)
        )
        b_nfa = link_nfa(query.path, network)
        c_nfa = label_nfa(query.final_header, network)

        initial_headers = [
            Header(word)
            for word in enumerate_words(a_nfa, self.max_initial_header)
        ]
        witnesses: Set[Trace] = set()
        links = list(network.topology.links)
        for size in range(query.max_failures + 1):
            for failed_combo in itertools.combinations(links, size):
                failed = frozenset(failed_combo)
                for first_link in links:
                    if first_link in failed:
                        continue
                    # Prune immediately when no path can start with this link.
                    if not b_nfa.step_set(b_nfa.initial, first_link):
                        continue
                    for header in initial_headers:
                        initial = TraceStep(first_link, header)
                        for trace in enumerate_traces(
                            network,
                            initial,
                            failed,
                            self.max_trace_length,
                            self.max_header_depth,
                        ):
                            if len(witnesses) >= self.max_witnesses:
                                break
                            if not b_nfa.accepts(trace.links):
                                continue
                            if not c_nfa.accepts(trace.last_header.labels):
                                continue
                            witnesses.add(trace)
        ordered = tuple(sorted(witnesses, key=str))
        result = ExplicitResult(satisfied=bool(ordered), witnesses=ordered)
        if weight_vector is not None and ordered:
            weighted = [
                (weight_vector.evaluate_trace(network, trace), trace)
                for trace in ordered
            ]
            weighted.sort(key=lambda pair: (pair[0], str(pair[1])))
            result.best_weight, result.best_trace = weighted[0]
        return result
