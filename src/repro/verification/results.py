"""Result types of the verification pipeline."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.model.topology import Link
from repro.model.trace import Trace
from repro.pda.solver import SolverStats
from repro.query.ast import Query


class Status(enum.Enum):
    """Answer to the query satisfiability problem (Problem 1).

    ``INCONCLUSIVE`` is the third outcome of the dual approximation
    scheme: the over-approximation found only spurious traces and the
    under-approximation found none (§4.2).
    """

    SATISFIED = "satisfied"
    UNSATISFIED = "unsatisfied"
    INCONCLUSIVE = "inconclusive"


@dataclass
class EngineStats:
    """Timing and size observability for one verification run."""

    #: Wall-clock seconds for the whole pipeline.
    total_seconds: float = 0.0
    #: Seconds spent compiling the over-approximation PDA.
    compile_over_seconds: float = 0.0
    #: Seconds spent compiling the under-approximation PDA (0 if skipped).
    compile_under_seconds: float = 0.0
    #: Solver statistics per phase (absent when the phase did not run).
    over_solver: Optional[SolverStats] = None
    under_solver: Optional[SolverStats] = None
    #: PDA rule counts as compiled (before reductions).
    over_rules: int = 0
    under_rules: int = 0
    #: Whether the under-approximation phase was needed at all.
    used_under_approximation: bool = False
    #: Seconds spent in the static triage tier (0 when triage was off).
    triage_seconds: float = 0.0
    #: Triage outcome ("proven_yes" / "proven_no" / "inconclusive"),
    #: None when triage did not run.
    triage_verdict: Optional[str] = None


@dataclass
class VerificationResult:
    """Outcome of verifying one query."""

    query: Query
    status: Status
    #: A witness trace when SATISFIED.
    trace: Optional[Trace] = None
    #: The failure set enabling the witness (empty set when none needed).
    failure_set: Optional[FrozenSet[Link]] = None
    #: Trace-level value of the weight vector, when one was given.
    weight: Optional[Tuple[int, ...]] = None
    #: True when the reported witness is guaranteed minimal w.r.t. the
    #: weight vector (it came from the over-approximation and is real, so
    #: its weight coincides with the true minimum — see engine docs).
    minimal_guaranteed: bool = False
    #: Exact probability of the witness's enabling failure set (product
    #: of the member links' failure probabilities), populated by
    #: likelihood-ranking engines. 1.0 means "needs no failures at all".
    witness_probability: Optional[float] = None
    stats: EngineStats = field(default_factory=EngineStats)

    @property
    def satisfied(self) -> bool:
        return self.status is Status.SATISFIED

    @property
    def conclusive(self) -> bool:
        return self.status is not Status.INCONCLUSIVE

    def summary(self) -> str:
        """One-line human-readable rendering (used by the CLI)."""
        parts = [f"{self.status.value.upper()}"]
        if self.weight is not None and self.trace is not None:
            parts.append(f"weight={tuple(self.weight)}")
        if self.trace is not None:
            parts.append(f"trace-length={len(self.trace)}")
        if self.failure_set:
            failed = ", ".join(sorted(link.name for link in self.failure_set))
            parts.append(f"failed-links={{{failed}}}")
        if self.witness_probability is not None:
            parts.append(f"witness-probability={self.witness_probability:.3g}")
        parts.append(f"time={self.stats.total_seconds:.3f}s")
        return "  ".join(parts)
