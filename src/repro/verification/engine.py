"""The verification engines: Dual, Weighted, and the Moped baseline.

The pipeline (§4.2, Figure 3, plus a closed-form fast path)::

    query ──▶ one-step analysis (NFA products; length-1 traces involve
              no forwarding) — settles loose queries instantly and
              removes the |labels|×|links| entry blow-up from the PDA
               │ not settled (or weighted: minimum still open)
               ▼
    query ──compile──▶ over-approx PDA ──solve──▶ UNSAT?  → UNSATISFIED
                                          │ SAT
                                          ▼
                            reconstruct + feasibility check
                                          │ feasible → SATISFIED
                                          ▼ spurious
    query ──compile──▶ under-approx PDA ──solve──▶ SAT → SATISFIED
                                          │ UNSAT / spurious
                                          ▼
                                     INCONCLUSIVE

Engine flavours (matching the three columns of the paper's Table 1):

* :func:`dual_engine` — the unweighted AalWiNes engine ("Dual"):
  post* saturation with reductions and early termination;
* :func:`weighted_engine` — the quantitative engine: the same pipeline
  over a lexicographic min-plus vector semiring, whose Dijkstra-ordered
  saturation performs the guided search toward minimal witnesses;
* :func:`moped_engine` — the baseline: the same dual loop but backed by
  a *generic* pushdown model checker configuration (exhaustive pre*,
  no reductions, no early termination), standing in for Moped.

On minimality: when the over-approximation's minimal witness turns out
feasible, its weight is simultaneously a lower bound (over-approximation
explores a superset of traces) and the value of a real trace, hence the
true minimum — ``minimal_guaranteed=True``. A witness recovered from the
under-approximation is real but possibly non-minimal (the failure
counter may double-count on loops), so the flag stays False.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Union

from repro import obs
from repro.errors import VerificationError
from repro.model.network import MplsNetwork
from repro.model.quantities import Quantity, link_failure_probability
from repro.model.topology import Link
from repro.pda.solver import solve_reachability
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.query.weights import WeightVector, parse_weight_vector
from repro.verification.compiler import (
    CompiledQuery,
    QueryCompiler,
    find_one_step_witness,
)
from repro.verification.reconstruction import ReconstructedWitness, check_witness
from repro.verification.results import EngineStats, Status, VerificationResult


class VerificationEngine:
    """Configurable dual-approximation verification engine.

    Parameters mirror the design space the paper evaluates:

    * ``backend`` — saturation direction (``"poststar"`` / ``"prestar"``);
    * ``use_reductions`` — run the static PDA reductions first;
    * ``early_termination`` — stop saturation at the target transition;
    * ``weight`` — a :class:`WeightVector` (or its textual form) enabling
      the quantitative engine; None keeps the boolean engine;
    * ``core`` — saturation representation: the dense-id ``"interned"``
      core (default), the symbolic ``"tuple"`` reference core (used by
      the differential tests and as the benchmark baseline), the
      generation-batched numpy ``"vectorized"`` core (falls back to the
      interned core — with a :class:`~repro.errors.NumpyFallbackWarning`
      — when numpy or a weight codec is unavailable), or
      ``"incremental"`` — solve against a persistent baseline-saturated
      automaton repaired per variant (see
      :mod:`repro.verification.incremental`); ``baseline`` optionally
      names the network the sweep varies around (defaults to this
      engine's own network);
    * ``triage`` — the static triage tier (:mod:`repro.analysis.triage`):
      ``"off"`` (default) never runs it, ``"auto"`` runs it as a fast
      path and falls through to the full pipeline when inconclusive,
      ``"only"`` answers from triage alone (INCONCLUSIVE when it cannot
      prove either way) and never compiles a pushdown system.
    """

    def __init__(
        self,
        network: MplsNetwork,
        backend: str = "poststar",
        use_reductions: bool = True,
        early_termination: bool = True,
        weight: Union[WeightVector, str, None] = None,
        distance_of: Optional[Callable[[Link], int]] = None,
        name: Optional[str] = None,
        core: str = "interned",
        triage: str = "off",
        baseline: Optional[MplsNetwork] = None,
        baseline_key: Optional[str] = None,
    ) -> None:
        self.network = network
        self.backend = backend
        self.use_reductions = use_reductions
        self.early_termination = early_termination
        if core not in ("interned", "tuple", "vectorized", "incremental"):
            raise VerificationError(
                f"unknown solver core {core!r} "
                "(expected interned, tuple, vectorized or incremental)"
            )
        self.core = core
        self._family = None
        if core == "incremental":
            if backend == "moped":
                raise VerificationError(
                    "the Moped backend cannot use the incremental core"
                )
            if distance_of is not None:
                # A custom distance function is not part of the baseline
                # family's cache key, so sharing solvers would be unsound.
                raise VerificationError(
                    "the incremental core does not support a custom distance_of"
                )
            from repro.verification.incremental import incremental_family

            self._family = incremental_family(
                baseline if baseline is not None else network, key=baseline_key
            )
        elif baseline is not None or baseline_key is not None:
            raise VerificationError(
                "baseline networks are only meaningful with core='incremental'"
            )
        if triage not in ("auto", "off", "only"):
            raise VerificationError(
                f"unknown triage mode {triage!r} (expected auto, off or only)"
            )
        self.triage = triage
        if isinstance(weight, str):
            weight = parse_weight_vector(weight)
        if weight is not None and backend == "moped":
            # §4.2: "possible only if the weight requirements are not
            # specified" — Moped cannot handle weighted pushdown automata.
            raise VerificationError(
                "the Moped backend does not support weighted verification"
            )
        self.weight_vector = weight
        self.distance_of = distance_of
        if self._family is not None:
            # Compile in the family's shared id space so variant solves
            # diff rule sets as flat integer multisets (fast path).
            self.compiler = self._family.compiler_for(network)
        else:
            self.compiler = QueryCompiler(network, distance_of)
        self.name = name if name is not None else self._default_name()

    def attach_artifact_key(self, key: str) -> None:
        """Name this engine's network in the shared artifact store.

        Delegates to the compiler (see
        :meth:`~repro.verification.compiler.QueryCompiler.attach_artifact_key`);
        a no-op for incremental-family compilers, whose shared interning
        tables make compiled systems process-specific.
        """
        self.compiler.attach_artifact_key(key)

    def _default_name(self) -> str:
        if self.weight_vector is not None:
            return f"weighted({self.weight_vector})"
        if self.backend == "prestar" and not self.use_reductions:
            return "moped"
        return "dual"

    # ------------------------------------------------------------------
    # verification pipeline
    # ------------------------------------------------------------------
    def verify(
        self,
        query: Union[Query, str],
        timeout_seconds: Optional[float] = None,
    ) -> VerificationResult:
        """Answer one query; raises
        :class:`repro.errors.VerificationTimeout` past the time budget."""
        with obs.span("verify", engine=self.name):
            result = self._verify(query, timeout_seconds)
        if obs.enabled():
            obs.add("engine.queries")
            obs.add(f"engine.verdicts.{result.status.value}")
        return result

    def _verify(
        self,
        query: Union[Query, str],
        timeout_seconds: Optional[float],
    ) -> VerificationResult:
        if isinstance(query, str):
            with obs.span("parse"):
                query = parse_query(query)
        start = time.perf_counter()
        deadline = start + timeout_seconds if timeout_seconds is not None else None
        stats = EngineStats()

        # Static triage tier: prove the verdict before any PDA is built.
        if self.triage != "off":
            from repro.analysis.triage import TriageVerdict, run_triage

            with obs.span("triage", engine=self.name):
                triaged = run_triage(self.network, query)
            stats.triage_seconds = triaged.elapsed_seconds
            stats.triage_verdict = triaged.verdict.value
            if triaged.verdict is TriageVerdict.PROVEN_NO:
                # Sound even for weighted engines: no trace exists, so
                # there is no minimum to report either.
                stats.total_seconds = time.perf_counter() - start
                return VerificationResult(query, Status.UNSATISFIED, stats=stats)
            if triaged.verdict is TriageVerdict.PROVEN_YES and triaged.trace is not None:
                # Weighted "auto" engines must keep going: the triage
                # witness is real but not necessarily minimal.
                if self.weight_vector is None or self.triage == "only":
                    stats.total_seconds = time.perf_counter() - start
                    return self._satisfied(
                        query,
                        ReconstructedWitness(triaged.trace, frozenset()),
                        stats,
                        minimal=False,
                    )
            if self.triage == "only":
                stats.total_seconds = time.perf_counter() - start
                return VerificationResult(query, Status.INCONCLUSIVE, stats=stats)

        # Phase 0: one-step traces in closed form (the pushdown encoding
        # only covers traces of length ≥ 2 — see find_one_step_witness).
        with obs.span("one_step"):
            one_step = find_one_step_witness(
                self.network, query, self.weight_vector, self.distance_of
            )
        if one_step is not None and self.weight_vector is None:
            # Unweighted: any witness settles the query; skip the PDA.
            trace, _ = one_step
            stats.total_seconds = time.perf_counter() - start
            obs.add("engine.one_step_hits")
            return self._satisfied(
                query,
                ReconstructedWitness(trace, frozenset()),
                stats,
                minimal=True,
            )

        # Phase A: over-approximation.
        compile_start = time.perf_counter()
        over = self.compiler.compile(query, mode="over", weight_vector=self.weight_vector)
        stats.compile_over_seconds = time.perf_counter() - compile_start
        stats.over_rules = over.pds.rule_count()

        outcome = self._solve(over, deadline)
        stats.over_solver = outcome.stats
        if not outcome.reachable:
            stats.total_seconds = time.perf_counter() - start
            if one_step is not None:
                # No multi-step trace at all: the one-step one is minimal.
                trace, _ = one_step
                return self._satisfied(
                    query, ReconstructedWitness(trace, frozenset()), stats, minimal=True
                )
            return VerificationResult(query, Status.UNSATISFIED, stats=stats)

        if one_step is not None:
            # Weighted: when the one-step witness is at least as cheap as
            # the over-approximation's minimum, it is the global minimum
            # (one-step witnesses are always feasible).
            trace, weight = one_step
            if weight is not None and not (outcome.weight < weight):
                stats.total_seconds = time.perf_counter() - start
                return self._satisfied(
                    query, ReconstructedWitness(trace, frozenset()), stats, minimal=True
                )

        witness = check_witness(over, outcome.rules)
        if witness.feasible:
            stats.total_seconds = time.perf_counter() - start
            return self._satisfied(query, witness, stats, minimal=True)

        # Phase B: under-approximation.
        stats.used_under_approximation = True
        obs.add("engine.under_phase_runs")
        compile_start = time.perf_counter()
        under = self.compiler.compile(
            query, mode="under", weight_vector=self.weight_vector
        )
        stats.compile_under_seconds = time.perf_counter() - compile_start
        stats.under_rules = under.pds.rule_count()

        under_outcome = self._solve(under, deadline)
        stats.under_solver = under_outcome.stats
        stats.total_seconds = time.perf_counter() - start
        if under_outcome.reachable:
            under_witness = check_witness(under, under_outcome.rules)
            if under_witness.feasible:
                if one_step is not None:
                    # Report the cheaper of the two real witnesses; the
                    # spurious over-minimum below both prevents a
                    # minimality guarantee either way.
                    trace, weight = one_step
                    if weight is not None and not (under_outcome.weight < weight):
                        return self._satisfied(
                            query,
                            ReconstructedWitness(trace, frozenset()),
                            stats,
                            minimal=False,
                        )
                return self._satisfied(query, under_witness, stats, minimal=False)

        if one_step is not None:
            trace, _weight = one_step
            return self._satisfied(
                query, ReconstructedWitness(trace, frozenset()), stats, minimal=False
            )
        return VerificationResult(query, Status.INCONCLUSIVE, stats=stats)

    def _solve(self, compiled: CompiledQuery, deadline: Optional[float]):
        if self.backend == "moped":
            from repro.verification.moped import solve_with_moped

            return solve_with_moped(
                compiled.pds,
                compiled.initial,
                compiled.target,
                use_reductions=self.use_reductions,
                deadline=deadline,
            )
        if self._family is not None:
            return self._family.solve(
                compiled,
                method=self.backend,
                use_reductions=self.use_reductions,
                early_termination=self.early_termination,
                want_witness=True,
                deadline=deadline,
            )
        return solve_reachability(
            compiled.pds,
            compiled.semiring,
            compiled.initial,
            compiled.target,
            method=self.backend,
            use_reductions=self.use_reductions,
            early_termination=self.early_termination,
            want_witness=True,
            deadline=deadline,
            core=self.core,
        )

    def _satisfied(
        self,
        query: Query,
        witness: ReconstructedWitness,
        stats: EngineStats,
        minimal: bool,
    ) -> VerificationResult:
        weight = None
        witness_probability = None
        if self.weight_vector is not None:
            weight = self.weight_vector.evaluate_trace(
                self.network, witness.trace, self.distance_of
            )
            if (
                Quantity.LIKELIHOOD in self.weight_vector.quantities()
                and witness.failure_set is not None
            ):
                witness_probability = 1.0
                for link in witness.failure_set:
                    witness_probability *= link_failure_probability(link)
        return VerificationResult(
            query,
            Status.SATISFIED,
            trace=witness.trace,
            failure_set=witness.failure_set,
            weight=weight,
            minimal_guaranteed=minimal and self.weight_vector is not None,
            witness_probability=witness_probability,
            stats=stats,
        )


# ----------------------------------------------------------------------
# factory helpers matching the paper's engine names
# ----------------------------------------------------------------------


def dual_engine(network: MplsNetwork, **kwargs) -> VerificationEngine:
    """The unweighted AalWiNes engine (the paper's "Dual" column)."""
    return VerificationEngine(network, name="dual", **kwargs)


def weighted_engine(
    network: MplsNetwork,
    weight: Union[WeightVector, str] = "failures",
    **kwargs,
) -> VerificationEngine:
    """The quantitative engine (the paper's "Failures" column defaults to
    minimizing the number of failed links)."""
    return VerificationEngine(network, weight=weight, name="weighted", **kwargs)


def likelihood_engine(network: MplsNetwork, **kwargs) -> VerificationEngine:
    """The probability-ranking engine: minimizes the scaled
    neg-log-probability of the failures a trace relies on, so the minimal
    witness is the *most likely* way the queried behaviour can occur
    (see :mod:`repro.prob`). Results carry ``witness_probability``."""
    return VerificationEngine(
        network,
        weight=WeightVector.of(Quantity.LIKELIHOOD),
        name="likelihood",
        **kwargs,
    )


def moped_engine(network: MplsNetwork, **kwargs) -> VerificationEngine:
    """The generic-model-checker baseline (the paper's "Moped" column).

    Per Figure 3 of the paper the reduced pushdown is *sent* to Moped,
    so reductions stay on; the costs specific to this backend are the
    textual serialization boundary and the exhaustive, non-early-
    terminating fixpoint — see :mod:`repro.verification.moped`.
    """
    return VerificationEngine(
        network,
        backend="moped",
        early_termination=False,
        name="moped",
        **kwargs,
    )
