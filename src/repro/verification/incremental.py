"""Baseline-anchored incremental solving for sweep variants.

A what-if sweep asks the *same queries* of many networks that differ
from one baseline by a few failed links. The PDA-level machinery for
exploiting that lives in :mod:`repro.pda.incremental`; this module owns
the verification-layer bookkeeping around it:

* :class:`IncrementalFamily` — one baseline network plus a cache of
  :class:`~repro.pda.incremental.IncrementalSolver` instances, one per
  ``(query, mode, weight vector, method)``. Solving a variant's
  compiled query retargets the matching solver to the variant's rule
  set (paying only for the delta) and answers from the repaired
  automaton.

* :func:`incremental_family` — a process-global registry keyed by the
  baseline network's content hash, so farm workers that receive the
  baseline artifact once (via the content-hash cache) share saturated
  state across every variant job they execute.

The family compiles queries against the **baseline** with its own
:class:`~repro.verification.compiler.QueryCompiler`; variants arrive
already compiled by the engine. Because the compiler's op-chain states
are content-addressed, the two compilations agree on every state name
and the symbolic rule diff is exactly the entries that changed.

Solvers whose repair is interrupted (deadline, step budget) poison
themselves; the family drops and rebuilds them on next use, so one
timed-out variant cannot corrupt answers for its siblings.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro import obs
from repro.model.network import MplsNetwork
from repro.pda.incremental import IncrementalSolver
from repro.pda.intern import EPSILON, SymbolTable
from repro.pda.solver import ReachabilityOutcome, incremental_outcome
from repro.verification.compiler import CompiledQuery, QueryCompiler

#: Solver cache key inside one family.
SolverKey = Tuple[Hashable, str, Hashable, str]


class IncrementalFamily:
    """Incremental solvers for one baseline network.

    ``max_solvers`` bounds the per-family solver cache (LRU): each
    solver holds a fully saturated automaton, which for large networks
    is the dominant memory cost of a sweep.
    """

    def __init__(self, baseline: MplsNetwork, max_solvers: int = 16) -> None:
        self.baseline = baseline
        # One id space for the whole family: the baseline and every
        # variant compile into these shared arenas, so a variant's rule
        # set diffs against a solver's current one as a flat integer
        # multiset (see PushdownSystem.spec_ids) instead of by hashing
        # tens of thousands of symbolic tuples per sweep job.
        self.state_table = SymbolTable()
        self.symbol_table = SymbolTable(reserve=(EPSILON,))
        self.spec_table = SymbolTable()
        self.compiler = self.compiler_for(baseline)
        self.max_solvers = max_solvers
        self._solvers: "OrderedDict[SolverKey, IncrementalSolver]" = OrderedDict()
        self._lock = threading.RLock()
        #: Baseline saturations performed (== solver cache misses).
        self.baseline_solves = 0
        #: Variant solves answered by delta repair.
        self.variant_solves = 0

    def compiler_for(self, network: MplsNetwork) -> QueryCompiler:
        """A compiler for ``network`` in the family's shared id space.

        Engines verifying a variant against this family's baseline must
        compile through this (the engine constructor does), or variant
        solves lose the integer-diff fast path and fall back to the
        symbolic one.
        """
        if network is self.baseline and getattr(self, "compiler", None) is not None:
            return self.compiler
        return QueryCompiler(
            network,
            state_table=self.state_table,
            symbol_table=self.symbol_table,
            spec_table=self.spec_table,
        )

    def _solver_for(
        self,
        compiled: CompiledQuery,
        method: str,
        deadline: Optional[float],
    ) -> IncrementalSolver:
        key: SolverKey = (compiled.query, compiled.mode, compiled.weight_vector, method)
        solver = self._solvers.get(key)
        if solver is not None and not solver.poisoned:
            self._solvers.move_to_end(key)
            return solver
        base = self.compiler.compile(
            compiled.query, mode=compiled.mode, weight_vector=compiled.weight_vector
        )
        solver = IncrementalSolver(
            base.pds,
            base.semiring,
            base.initial,
            base.target,
            method=method,
            deadline=deadline,
        )
        self.baseline_solves += 1
        if obs.enabled():
            obs.add("pda.incremental.baseline_solves")
        self._solvers[key] = solver
        self._solvers.move_to_end(key)
        while len(self._solvers) > self.max_solvers:
            self._solvers.popitem(last=False)
        return solver

    def solve(
        self,
        compiled: CompiledQuery,
        method: str = "poststar",
        use_reductions: bool = True,
        early_termination: bool = True,
        want_witness: bool = True,
        deadline: Optional[float] = None,
    ) -> ReachabilityOutcome:
        """Answer ``compiled`` (a variant's instance) by delta repair.

        ``use_reductions`` / ``early_termination`` only steer the
        scratch witness-extraction pass on reachable outcomes — the
        persistent automaton itself is always fully saturated and
        unreduced (see the module docs of :mod:`repro.pda.incremental`).
        """
        started = time.perf_counter()
        with self._lock:
            solver = self._solver_for(compiled, method, deadline)
            solver.retarget(compiled.pds, deadline=deadline)
            self.variant_solves += 1
            if obs.enabled():
                obs.add("pda.incremental.variant_solves")
            return incremental_outcome(
                solver,
                compiled.pds,
                use_reductions=use_reductions,
                early_termination=early_termination,
                want_witness=want_witness,
                deadline=deadline,
                start_time=started,
            )

    def __repr__(self) -> str:
        return (
            f"IncrementalFamily(solvers={len(self._solvers)}, "
            f"baseline_solves={self.baseline_solves}, "
            f"variant_solves={self.variant_solves})"
        )


# ----------------------------------------------------------------------
# process-global registry
# ----------------------------------------------------------------------

_FAMILIES: "OrderedDict[str, IncrementalFamily]" = OrderedDict()
_FAMILY_IDS: Dict[int, str] = {}
_FAMILIES_LOCK = threading.Lock()
_MAX_FAMILIES = 8


def network_key(network: MplsNetwork) -> str:
    """Content hash identifying a baseline network across processes."""
    from repro.farm.cache import hash_text
    from repro.io.json_format import network_to_json

    key = _FAMILY_IDS.get(id(network))
    if key is None:
        key = hash_text(network_to_json(network))
        _FAMILY_IDS[id(network)] = key
    return key


def incremental_family(
    network: MplsNetwork, key: Optional[str] = None
) -> IncrementalFamily:
    """The process-wide family for ``network`` (created on first use).

    ``key`` may pass a precomputed content hash (farm workers already
    have one); otherwise the network is hashed. Families are shared by
    content, so two engines over equal baselines reuse one set of
    saturated solvers.
    """
    if key is None:
        key = network_key(network)
    with _FAMILIES_LOCK:
        family = _FAMILIES.get(key)
        if family is None:
            family = IncrementalFamily(network)
            _FAMILIES[key] = family
            while len(_FAMILIES) > _MAX_FAMILIES:
                _FAMILIES.popitem(last=False)
        else:
            _FAMILIES.move_to_end(key)
        return family


def clear_incremental_families() -> None:
    """Drop all cached families (test isolation hook)."""
    with _FAMILIES_LOCK:
        _FAMILIES.clear()
        _FAMILY_IDS.clear()


def family_stats() -> Dict[str, int]:
    """Aggregate counters across live families (for metrics surfaces)."""
    with _FAMILIES_LOCK:
        return {
            "families": len(_FAMILIES),
            "baseline_solves": sum(f.baseline_solves for f in _FAMILIES.values()),
            "variant_solves": sum(f.variant_solves for f in _FAMILIES.values()),
        }


__all__ = [
    "IncrementalFamily",
    "incremental_family",
    "clear_incremental_families",
    "family_stats",
    "network_key",
]
