"""Mapping PDA witness runs back to network traces, and checking them.

The compiler's control states remember which network link a
configuration corresponds to, and the PDA stack *is* the packet header,
so a reconstructed rule run can be replayed into a network trace
directly. The resulting trace is then validated against Definition 4
and the global failure bound via
:func:`repro.model.trace.minimal_failure_set` — the step that makes the
over-approximation's answers trustworthy (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence

from repro.errors import VerificationError
from repro.model.header import Header
from repro.model.labels import BOTTOM, Label
from repro.model.topology import Link
from repro.model.trace import Trace, TraceStep, minimal_failure_set
from repro.pda.system import Configuration, Rule, run_rules
from repro.verification.compiler import CompiledQuery


@dataclass
class ReconstructedWitness:
    """A network trace recovered from a PDA run, plus its feasibility."""

    trace: Trace
    #: The smallest failure set enabling the trace, when one of size ≤ k
    #: exists; None means the trace needs more than k distinct failures
    #: (or conflicts with its own used links) — i.e. it is spurious.
    failure_set: Optional[FrozenSet[Link]]

    @property
    def feasible(self) -> bool:
        return self.failure_set is not None


def trace_from_rules(
    compiled: CompiledQuery, rules: Sequence[Rule]
) -> Trace:
    """Replay a PDA rule run and extract the network trace it encodes.

    Every configuration whose control state is a phase-2 arrival state
    contributes one (link, header) step; the stack below the bottom
    marker is the header.
    """
    initial = Configuration(compiled.initial[0], (compiled.initial[1],))
    configurations = run_rules(initial, rules)
    steps = []
    for configuration in configurations:
        link = compiled.link_of_state(configuration.state)
        if link is None:
            continue
        stack = configuration.stack
        if not stack or stack[-1] is not BOTTOM:
            raise VerificationError(
                f"malformed PDA stack during replay: {configuration!r}"
            )
        # Boundary guard of the interned core: everything that reaches a
        # user-facing Trace must be symbolic — a bare int here means an
        # interned id escaped the PDA layer unresolved.
        for symbol in stack[:-1]:
            if not isinstance(symbol, Label):
                raise VerificationError(
                    f"non-symbolic stack content leaked into a trace: {symbol!r}"
                )
        steps.append(TraceStep(link, Header(stack[:-1])))
    if not steps:
        raise VerificationError("PDA run visited no network link states")
    return Trace(steps)


def check_witness(
    compiled: CompiledQuery, rules: Sequence[Rule]
) -> ReconstructedWitness:
    """Reconstruct the trace of a witness run and test its feasibility.

    Feasibility means: a set ``F`` of at most ``k`` failed links exists
    that activates every fallback rule the trace relies on while keeping
    every used link alive (the polynomial check of §4.2).
    """
    trace = trace_from_rules(compiled, rules)
    failure_set = minimal_failure_set(
        compiled.network, trace, compiled.query.max_failures
    )
    return ReconstructedWitness(trace=trace, failure_set=failure_set)
