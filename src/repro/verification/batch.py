"""Batch verification of query suites.

The paper's operator workflow runs thousands of queries against one
dataplane snapshot (§4.2 reports statistics over 6,000). This module
provides that workflow as a first-class API: a :class:`BatchVerifier`
runs a list of (named) queries through one engine, capturing per-query
results, timeouts and errors, and aggregates the §4.2-style statistics
(verdict counts, inconclusive rate, total/worst times).

With ``jobs=N`` the batch fans out over the verification farm
(:mod:`repro.farm`): the queries are shipped to a pool of worker
processes that share a content-hash artifact cache. The parallel path
runs the exact same per-query code (:func:`run_single`) on an engine
rebuilt from the same configuration, so it returns the same verdicts
and summary counts as the serial loop — only the timing fields differ.

The CLI exposes it via ``aalwines --queries-file FILE [--jobs N]``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ReproError, VerificationTimeout
from repro.verification.engine import VerificationEngine
from repro.verification.results import VerificationResult

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.analysis.diagnostics import Diagnostic


@dataclass
class BatchItem:
    """Outcome of one query in a batch run."""

    name: str
    query: str
    #: "satisfied" / "unsatisfied" / "inconclusive" / "timeout" / "error".
    outcome: str
    seconds: float
    result: Optional[VerificationResult] = None
    error: Optional[str] = None
    #: Static pre-flight lint findings for the network variant this item
    #: ran against (empty unless the run asked for ``preflight``).
    diagnostics: Tuple["Diagnostic", ...] = ()
    #: Triage outcome ("proven_yes" / "proven_no" / "inconclusive") when
    #: the engine ran the static triage tier; None otherwise.
    triage: Optional[str] = None

    @property
    def conclusive(self) -> bool:
        return self.outcome in ("satisfied", "unsatisfied")

    @property
    def triaged(self) -> bool:
        """True when the static triage tier settled this query."""
        return self.triage in ("proven_yes", "proven_no")


@dataclass
class BatchSummary:
    """§4.2-style aggregate statistics over a batch."""

    total: int = 0
    satisfied: int = 0
    unsatisfied: int = 0
    inconclusive: int = 0
    timeouts: int = 0
    errors: int = 0
    #: Queries the static triage tier settled without compilation.
    triaged: int = 0
    total_seconds: float = 0.0
    worst_seconds: float = 0.0
    worst_query: Optional[str] = None

    def add(self, item: BatchItem) -> None:
        """Fold one item into the aggregate."""
        self.total += 1
        self.total_seconds += item.seconds
        if item.triaged:
            self.triaged += 1
        if item.outcome == "satisfied":
            self.satisfied += 1
        elif item.outcome == "unsatisfied":
            self.unsatisfied += 1
        elif item.outcome == "inconclusive":
            self.inconclusive += 1
        elif item.outcome == "timeout":
            self.timeouts += 1
        else:
            self.errors += 1
        if item.seconds > self.worst_seconds:
            self.worst_seconds = item.seconds
            self.worst_query = item.name

    @property
    def inconclusive_rate(self) -> float:
        """Fraction of *answered* queries that were inconclusive (the
        paper reports 8/6000 = 0.13% for the operator network)."""
        answered = self.satisfied + self.unsatisfied + self.inconclusive
        if answered == 0:
            return 0.0
        return self.inconclusive / answered

    def format(self) -> str:
        """Human-readable multi-line rendering (used by the CLI)."""
        lines = [
            f"queries:       {self.total}",
            f"satisfied:     {self.satisfied}",
            f"unsatisfied:   {self.unsatisfied}",
            f"inconclusive:  {self.inconclusive} "
            f"({100 * self.inconclusive_rate:.2f}%)",
        ]
        if self.timeouts:
            lines.append(f"timeouts:      {self.timeouts}")
        if self.errors:
            lines.append(f"errors:        {self.errors}")
        if self.triaged:
            lines.append(f"triaged:       {self.triaged} (settled statically)")
        lines.append(f"total time:    {self.total_seconds:.2f}s")
        if self.worst_query is not None:
            lines.append(
                f"slowest query: {self.worst_query} ({self.worst_seconds:.2f}s)"
            )
        return "\n".join(lines)


def summarize(items: Iterable[BatchItem]) -> BatchSummary:
    """Aggregate a finished item list into a :class:`BatchSummary`."""
    summary = BatchSummary()
    for item in items:
        summary.add(item)
    return summary


def run_single(
    engine: VerificationEngine,
    name: str,
    query: str,
    timeout: Optional[float] = None,
) -> BatchItem:
    """Verify one query, capturing failures as items — never raises.

    This is the per-query kernel shared verbatim by the serial loop and
    the farm's worker processes, which is what makes the parallel path
    verdict-equivalent to the serial one.
    """
    start = time.perf_counter()
    try:
        result = engine.verify(query, timeout_seconds=timeout)
        return BatchItem(
            name=name,
            query=query,
            outcome=result.status.value,
            seconds=time.perf_counter() - start,
            result=result,
            triage=result.stats.triage_verdict,
        )
    except VerificationTimeout:
        return BatchItem(
            name=name,
            query=query,
            outcome="timeout",
            seconds=time.perf_counter() - start,
        )
    except ReproError as error:
        return BatchItem(
            name=name,
            query=query,
            outcome="error",
            seconds=time.perf_counter() - start,
            error=str(error),
        )


#: Optional per-item progress callback (index, total, item). The serial
#: path calls it in index order; with ``jobs=N`` it fires in completion
#: order (the index argument stays correct).
ProgressCallback = Callable[[int, int, BatchItem], None]


class BatchVerifier:
    """Runs many queries through one verification engine.

    ``jobs`` selects the execution strategy: 1 (default) runs the
    classic serial loop in-process; N > 1 fans the queries out over N
    farm worker processes. Both paths produce the same items (order,
    names, verdicts) and summary counts; only timings differ.

    With ``preflight=True`` the network is statically linted once
    (:func:`repro.analysis.analyze` — no pushdown system) before any
    verification runs, and the findings are attached to every item's
    ``diagnostics``.
    """

    def __init__(
        self,
        engine: VerificationEngine,
        timeout_per_query: Optional[float] = None,
        jobs: int = 1,
        preflight: bool = False,
    ) -> None:
        self.engine = engine
        self.timeout_per_query = timeout_per_query
        self.jobs = max(1, int(jobs))
        self.preflight = preflight

    def run(
        self,
        queries: Iterable[Union[str, Tuple[str, str]]],
        progress: Optional[ProgressCallback] = None,
    ) -> Tuple[List[BatchItem], BatchSummary]:
        """Verify every query; never raises on a per-query failure.

        ``queries`` may be bare query strings or (name, query) pairs.
        """
        named: List[Tuple[str, str]] = []
        for entry in queries:
            if isinstance(entry, str):
                named.append((f"q{len(named):04d}", entry))
            else:
                named.append(entry)

        diagnostics: Tuple["Diagnostic", ...] = ()
        if self.preflight:
            from repro.analysis import analyze

            diagnostics = analyze(self.engine.network).diagnostics

        if self.jobs > 1 and len(named) > 1 and self.engine.distance_of is None:
            items, summary = self._run_parallel(named, progress)
            for item in items:
                item.diagnostics = diagnostics
            return items, summary

        items: List[BatchItem] = []
        summary = BatchSummary()
        for index, (name, query) in enumerate(named):
            item = self._run_one(name, query)
            item.diagnostics = diagnostics
            items.append(item)
            summary.add(item)
            if progress is not None:
                progress(index, len(named), item)
        return items, summary

    def _run_parallel(
        self,
        named: Sequence[Tuple[str, str]],
        progress: Optional[ProgressCallback],
    ) -> Tuple[List[BatchItem], BatchSummary]:
        """Fan the suite out over the farm's worker pool."""
        from repro.farm.cache import hash_text
        from repro.farm.pool import EngineConfig, FarmJob, run_jobs
        from repro.io.json_format import network_to_json

        config = EngineConfig.from_engine(self.engine)
        payload = network_to_json(self.engine.network)
        key = hash_text(payload)
        jobs = [
            FarmJob(
                name=name,
                query=query,
                network_key=key,
                config=config,
                timeout=self.timeout_per_query,
            )
            for name, query in named
        ]
        results = run_jobs(
            jobs,
            networks={key: payload},
            max_workers=self.jobs,
            progress=progress,
            prebuilt={key: self.engine.network},
        )
        # Without a cancellation hook every slot is filled.
        items = [item for item in results if item is not None]
        return items, summarize(items)

    def _run_one(self, name: str, query: str) -> BatchItem:
        return run_single(self.engine, name, query, self.timeout_per_query)


def parse_query_file(text: str) -> List[Tuple[str, str]]:
    """Parse a query file: one query per line.

    Blank lines and ``#`` comments are skipped; a line may carry an
    optional leading ``name:`` (with the name containing no ``<``).
    """
    queries: List[Tuple[str, str]] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name = f"line{line_number}"
        if ":" in line and "<" in line:
            candidate, _, rest = line.partition(":")
            if "<" not in candidate and rest.strip():
                name, line = candidate.strip(), rest.strip()
        queries.append((name, line))
    return queries
