"""Command-line interface — the library's equivalent of the AalWiNes
binary (and of every function of the web GUI described in §4).

Typical usage::

    # Verify a query on the built-in running example.
    aalwines --builtin example --query "<ip> [.#v0] .* [v3#.] <ip> 0"

    # Quantitative verification with a minimization vector (§3).
    aalwines --builtin example \
        --query "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1" \
        --weight "hops, failures + 3*tunnels"

    # Verify against XML input files (Appendix A).
    aalwines --topology topo.xml --routing route.xml \
        --coordinates loc.json --query "..." --engine moped

    # Parallel what-if sweep: the query under every ≤2-link failure
    # combination, fanned out over 4 farm workers.
    aalwines --builtin example --query "<ip> [.#v0] .* [v3#.] <ip> 0" \
        --sweep-failures 2 --jobs 4

    # Convert an IS-IS extract to the vendor-agnostic format
    # (Appendix A.1's --write-topology / --write-routing flow).
    aalwines --isis mapping.txt --isis-dir extracts/ \
        --write-topology topo.xml --write-routing route.xml

Exit codes: 0 = query satisfied, 1 = not satisfied, 2 = inconclusive,
3 = usage or input error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional

from repro import obs
from repro.datasets.builtins import BUILTIN_NETWORKS, load_builtin
from repro.errors import ReproError, VerificationTimeout
from repro.io.coords import read_coordinates
from repro.io.isis import network_from_isis
from repro.io.json_format import network_to_json, read_network_json, trace_to_json
from repro.io.xml_format import read_network, routing_to_xml, topology_to_xml
from repro.model.network import MplsNetwork
from repro.verification.engine import VerificationEngine
from repro.verification.results import Status, VerificationResult


def _add_network_arguments(parser: argparse.ArgumentParser) -> None:
    """The network-source argument group shared by all subcommands."""
    source = parser.add_argument_group("network input")
    source.add_argument("--topology", help="topo.xml file (Appendix A)")
    source.add_argument("--routing", help="route.xml file (Appendix A)")
    source.add_argument("--network", help="single-file JSON network")
    source.add_argument(
        "--builtin",
        choices=BUILTIN_NETWORKS,
        help="use a built-in network (running example / substitutes)",
    )
    source.add_argument(
        "--coordinates", help="router location JSON (Appendix A.2)"
    )
    source.add_argument("--isis", help="IS-IS mapping file (Appendix A.1)")
    source.add_argument(
        "--isis-dir", help="directory containing the per-router IS-IS extracts"
    )


def build_parser() -> argparse.ArgumentParser:
    """The aalwines argument parser (exposed for doc generation)."""
    parser = argparse.ArgumentParser(
        prog="aalwines",
        description="Fast quantitative what-if analysis for MPLS networks",
    )
    _add_network_arguments(parser)

    query = parser.add_argument_group("verification")
    query.add_argument("--query", help="query <a> b <c> k (Definition 5)")
    query.add_argument(
        "--queries-file",
        help="verify every query in a file (one per line, optional 'name:' prefix)",
    )
    query.add_argument(
        "--engine",
        choices=("dual", "moped", "poststar", "prestar"),
        default="dual",
        help="backend engine (default: dual — the AalWiNes engine)",
    )
    query.add_argument(
        "--weight",
        help='minimization vector, e.g. "hops, failures + 3*tunnels" (§3)',
    )
    query.add_argument(
        "--no-reductions",
        action="store_true",
        help="disable the static PDA reductions (§4.2)",
    )
    query.add_argument(
        "--triage",
        choices=("auto", "off", "only"),
        default="off",
        help="static triage tier: 'auto' tries to prove the verdict by "
        "abstract interpretation before building any pushdown system "
        "(falling back to the full engine when inconclusive), 'only' "
        "answers from triage alone and reports INCONCLUSIVE otherwise "
        "(exit 0/1/2, lint-style), 'off' disables it (default)",
    )
    query.add_argument(
        "--core",
        choices=("interned", "tuple", "vectorized", "incremental"),
        default="interned",
        help="saturation core: 'interned' dense-integer worklist "
        "(default), 'tuple' symbolic reference, 'vectorized' "
        "generation-batched numpy kernel (falls back to interned when "
        "numpy or a weight codec is unavailable), 'incremental' "
        "delta-saturation across sweep variants",
    )
    query.add_argument(
        "--timeout", type=float, default=None, help="time budget in seconds"
    )
    query.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="verify on N parallel farm workers (batch and sweep modes)",
    )
    query.add_argument(
        "--sweep-failures",
        type=int,
        default=None,
        metavar="K",
        help="what-if sweep: verify the query under every combination "
        "of at most K failed links (each baked into a degraded network)",
    )
    query.add_argument(
        "--sweep-limit",
        type=int,
        default=10_000,
        metavar="J",
        help="refuse failure sweeps generating more than J jobs "
        "(default: 10000)",
    )
    query.add_argument(
        "--prob-threshold",
        type=float,
        default=None,
        metavar="P",
        help="probabilistic what-if: decide whether the query holds with "
        "probability ≥ P over independent link failures, ranking "
        "scenarios by likelihood and stopping as soon as the verdict "
        "cannot flip (exit 0 holds / 1 fails / 2 undecided)",
    )
    query.add_argument(
        "--sweep-prob",
        action="store_true",
        help="probabilistic what-if without a threshold: report bounds "
        "on P(query holds) over the most likely failure scenarios",
    )
    query.add_argument(
        "--prob-default",
        type=float,
        default=None,
        metavar="P",
        help="failure probability assumed for links that do not declare "
        "one (default: 1e-3)",
    )
    query.add_argument(
        "--prob-limit",
        type=int,
        default=512,
        metavar="N",
        help="enumerate at most N failure scenarios, most likely first "
        "(default: 512)",
    )
    query.add_argument(
        "--preflight",
        action="store_true",
        help="lint each degraded sweep variant and report its diagnostics "
        "alongside the verification verdicts",
    )
    query.add_argument(
        "--trace-json", action="store_true", help="print the witness trace as JSON"
    )
    query.add_argument("--stats", action="store_true", help="print engine statistics")
    query.add_argument(
        "--profile",
        action="store_true",
        help="record tracing spans and solver counters during verification "
        "and print the per-phase time table afterwards (repro.obs)",
    )
    query.add_argument(
        "--profile-trace",
        metavar="FILE",
        help="with --profile: also export the recorded spans as a JSON "
        "trace file",
    )

    convert = parser.add_argument_group("conversion")
    convert.add_argument(
        "--write-topology", help="write the loaded network's topo.xml here"
    )
    convert.add_argument(
        "--write-routing", help="write the loaded network's route.xml here"
    )
    convert.add_argument(
        "--write-json", help="write the loaded network as single-file JSON here"
    )
    return parser


def build_lint_parser() -> argparse.ArgumentParser:
    """The ``aalwines lint`` argument parser (exposed for doc generation)."""
    parser = argparse.ArgumentParser(
        prog="aalwines lint",
        description="Statically lint MPLS routing tables — black holes, "
        "loops, stack underflows and failover defects, without building "
        "any pushdown system. Exit code: 0 clean, 1 warnings, 2 errors, "
        "3 usage/input error.",
    )
    _add_network_arguments(parser)
    lint = parser.add_argument_group("linting")
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--rules",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all registered)",
    )
    lint.add_argument(
        "--suppress",
        metavar="CODES",
        help="comma-separated rule codes to suppress",
    )
    lint.add_argument(
        "--min-severity",
        choices=("info", "warning", "error"),
        default=None,
        help="drop findings below this severity",
    )
    lint.add_argument(
        "--failed-links",
        metavar="LINKS",
        help="comma-separated link names to assume failed (what-if lint)",
    )
    lint.add_argument(
        "--query",
        action="append",
        default=[],
        metavar="QUERY",
        dest="queries",
        help="also lint this query against the network (DP007 flags "
        "statically unsatisfiable queries; repeatable)",
    )
    lint.add_argument(
        "--queries-file",
        metavar="FILE",
        help="lint every query in a file (one per line, optional "
        "'name:' prefix) against the network",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _split_codes(text: Optional[str]) -> Optional[list]:
    if text is None:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def lint_main(argv: Optional[list] = None) -> int:
    """Entry point of the ``aalwines lint`` subcommand."""
    from repro.analysis import LintConfig, all_rules, analyze

    parser = build_lint_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for info in all_rules():
            print(
                f"{info.code}  {info.default_severity.value:<8} "
                f"{info.title} — {info.description}"
            )
        return 0
    try:
        network = _load_network(args)
        config = LintConfig.of(
            enabled=_split_codes(args.rules),
            suppressed=_split_codes(args.suppress) or (),
            min_severity=args.min_severity,
        )
        failed = frozenset(_split_codes(args.failed_links) or ())
        queries: list = list(args.queries)
        if args.queries_file:
            from repro.verification.batch import parse_query_file

            with open(args.queries_file, "r", encoding="utf-8") as handle:
                queries.extend(parse_query_file(handle.read()))
        report = analyze(
            network, failed_links=failed, config=config, queries=queries
        )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format_text())
    return report.exit_code


def _load_network(args: argparse.Namespace) -> MplsNetwork:
    sources = [
        bool(args.builtin),
        bool(args.network),
        bool(args.topology or args.routing),
        bool(args.isis),
    ]
    if sum(sources) != 1:
        raise ReproError(
            "specify exactly one network source: --builtin, --network, "
            "--topology/--routing, or --isis"
        )
    if args.builtin:
        return load_builtin(args.builtin)
    if args.network:
        return read_network_json(args.network)
    if args.isis:
        directory = args.isis_dir or os.path.dirname(args.isis) or "."
        with open(args.isis, "r", encoding="utf-8") as handle:
            mapping_text = handle.read()
        documents: Dict[str, str] = {}
        for file_name in os.listdir(directory):
            if file_name.endswith(".xml"):
                with open(
                    os.path.join(directory, file_name), "r", encoding="utf-8"
                ) as handle:
                    documents[file_name] = handle.read()
        return network_from_isis(mapping_text, documents)
    if not (args.topology and args.routing):
        raise ReproError("--topology and --routing must be given together")
    coordinates = read_coordinates(args.coordinates) if args.coordinates else None
    return read_network(args.topology, args.routing, coordinates=coordinates)


def _backend_of(args: argparse.Namespace) -> str:
    return "poststar" if args.engine == "dual" else args.engine


def _make_engine(network: MplsNetwork, args: argparse.Namespace) -> VerificationEngine:
    return VerificationEngine(
        network,
        backend=_backend_of(args),
        use_reductions=not args.no_reductions,
        weight=args.weight,
        core=args.core,
        triage=args.triage,
    )


def _print_result(result: VerificationResult, args: argparse.Namespace) -> None:
    print(result.summary())
    if result.trace is not None:
        print("witness trace:")
        print(result.trace.pretty())
        if args.trace_json:
            print(trace_to_json(result.trace), end="")
    if args.stats:
        stats = result.stats
        if stats.triage_verdict is not None:
            print(
                f"triage:         {stats.triage_seconds:.3f}s  "
                f"verdict={stats.triage_verdict}"
            )
        print(f"compile(over):  {stats.compile_over_seconds:.3f}s "
              f"({stats.over_rules} rules)")
        if stats.used_under_approximation:
            print(
                f"compile(under): {stats.compile_under_seconds:.3f}s "
                f"({stats.under_rules} rules)"
            )
        for phase, solver in (("over", stats.over_solver), ("under", stats.under_solver)):
            if solver is None:
                continue
            print(
                f"solve({phase}):    {solver.elapsed_seconds:.3f}s  "
                f"method={solver.method}  rules={solver.rules_after}  "
                f"iterations={solver.saturation_iterations}  "
                f"early-exit={solver.early_terminated}"
            )


def _print_item(item) -> None:
    print(f"{item.name:<24} {item.outcome:<13} {item.seconds:8.3f}s  {item.query}")


def _run_batch(network: MplsNetwork, args: argparse.Namespace) -> int:
    """Verify a whole query file; exit 0 when everything was answered."""
    from repro.verification.batch import BatchVerifier, parse_query_file

    with open(args.queries_file, "r", encoding="utf-8") as handle:
        queries = parse_query_file(handle.read())
    engine = _make_engine(network, args)
    verifier = BatchVerifier(
        engine,
        timeout_per_query=args.timeout,
        jobs=args.jobs,
        preflight=args.preflight,
    )

    def progress(_index: int, _total: int, item) -> None:
        _print_item(item)

    items, summary = verifier.run(queries, progress=progress)
    if args.preflight and items and items[0].diagnostics:
        print()
        print(f"preflight findings on {network.name}:")
        for diagnostic in items[0].diagnostics:
            print(f"  {diagnostic.format()}")
    print()
    print(summary.format())
    return 0 if summary.timeouts == 0 and summary.errors == 0 else 3


def _run_sweep(network: MplsNetwork, args: argparse.Namespace) -> int:
    """What-if failure sweep: every ≤K link-failure combination, on the
    verification farm when --jobs asks for workers."""
    from repro.farm.pool import EngineConfig, run_jobs
    from repro.farm.scenarios import failure_scenarios, scenarios_to_jobs
    from repro.verification.batch import parse_query_file, summarize

    if args.queries_file:
        with open(args.queries_file, "r", encoding="utf-8") as handle:
            queries = parse_query_file(handle.read())
    elif args.query:
        queries = [("query", args.query)]
    else:
        raise ReproError("--sweep-failures needs --query or --queries-file")
    if args.engine == "moped" and args.weight:
        raise ReproError("the Moped backend does not support weighted verification")

    config = EngineConfig(
        backend=_backend_of(args),
        use_reductions=not args.no_reductions,
        weight=args.weight,
        core=args.core,
        triage=args.triage,
    )
    scenarios = failure_scenarios(
        network,
        queries,
        max_failures=args.sweep_failures,
        limit=args.sweep_limit,
        preflight=args.preflight,
    )
    jobs, payloads, prebuilt = scenarios_to_jobs(
        scenarios, config, timeout=args.timeout
    )
    workers = max(1, args.jobs)
    print(
        f"sweep: {len(jobs)} scenarios "
        f"(≤{args.sweep_failures} failed links × {len(queries)} queries) "
        f"on {workers} worker{'s' if workers != 1 else ''}"
    )
    items = run_jobs(
        jobs,
        payloads,
        max_workers=workers,
        progress=lambda _i, _t, item: _print_item(item),
        prebuilt=prebuilt,
    )
    for scenario, item in zip(scenarios, items):
        if item is not None and scenario.diagnostics:
            item.diagnostics = scenario.diagnostics
    if args.preflight:
        flagged = [s for s in scenarios if s.diagnostics]
        print()
        print(
            f"preflight: {len(flagged)}/{len(scenarios)} scenarios "
            "with lint findings"
        )
        for scenario in flagged:
            codes = ", ".join(sorted({d.code for d in scenario.diagnostics}))
            print(f"  {scenario.name}: {codes}")
    summary = summarize(item for item in items if item is not None)
    print()
    print(summary.format())
    return 0 if summary.timeouts == 0 and summary.errors == 0 else 3


def _run_prob_sweep(network: MplsNetwork, args: argparse.Namespace) -> int:
    """Probabilistic what-if: bounds on P(query holds), ranked scenarios.

    Exit codes mirror the plain verdict codes: 0 the query holds with
    the requested probability, 1 it does not, 2 undecided (no threshold
    given, or the scenario budget ran out before the verdict settled).
    """
    from repro.farm.pool import EngineConfig
    from repro.model.quantities import DEFAULT_FAILURE_PROBABILITY
    from repro.prob import ProbVerdict, run_probabilistic_sweep

    if not args.query:
        raise ReproError("--prob-threshold/--sweep-prob need --query")
    if args.engine == "moped" and args.weight:
        raise ReproError("the Moped backend does not support weighted verification")
    config = EngineConfig(
        backend=_backend_of(args),
        use_reductions=not args.no_reductions,
        weight=args.weight,
        core=args.core,
        triage=args.triage,
    )
    default = (
        args.prob_default
        if args.prob_default is not None
        else DEFAULT_FAILURE_PROBABILITY
    )
    result = run_probabilistic_sweep(
        network,
        args.query,
        threshold=args.prob_threshold,
        default=default,
        max_scenarios=args.prob_limit,
        config=config,
        max_workers=max(1, args.jobs),
        timeout=args.timeout,
    )
    print(result.summary())
    if result.most_likely_witness is not None:
        print(
            "most likely witness scenario "
            f"(p={result.most_likely_witness_probability:.6g}):"
        )
        print(result.most_likely_witness.pretty())
        if args.trace_json:
            print(trace_to_json(result.most_likely_witness), end="")
    if result.most_likely_counterexample is not None:
        failed = ", ".join(result.most_likely_counterexample) or "none"
        print(
            "most likely counterexample "
            f"(p={result.most_likely_counterexample_probability:.6g}): "
            f"failed links {{{failed}}}"
        )
    if result.verdict is ProbVerdict.HOLDS:
        return 0
    if result.verdict is ProbVerdict.FAILS:
        return 1
    return 2


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``aalwines serve`` argument parser (exposed for doc generation)."""
    parser = argparse.ArgumentParser(
        prog="aalwines serve",
        description="Run the HTTP verification service — multi-worker "
        "pre-fork serving with a shared on-disk artifact store "
        "(see repro.service).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes sharing the listening socket (default 1; "
        "N>1 uses the pre-fork model, POSIX only)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        help="shared artifact store directory: compiled networks and "
        "queries are built once and reused across workers, and workers "
        "see each other's job runs (strongly recommended with --workers)",
    )
    limits = parser.add_argument_group("per-client limits")
    limits.add_argument(
        "--rate-limit",
        action="store_true",
        help="enable the production rate-limit defaults (50 interactive "
        "requests/s with burst 100, 0.5 sweep submissions/s with burst "
        "4, 4 active job runs per client)",
    )
    limits.add_argument(
        "--interactive-rate",
        type=float,
        metavar="R",
        help="sustained interactive requests/second per client "
        "(implies rate limiting)",
    )
    limits.add_argument(
        "--sweep-rate",
        type=float,
        metavar="R",
        help="sustained POST /jobs submissions/second per client "
        "(implies rate limiting)",
    )
    limits.add_argument(
        "--max-active-jobs",
        type=int,
        metavar="N",
        help="max concurrently active job runs per client "
        "(implies rate limiting)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every request"
    )
    parser.add_argument(
        "--no-observe",
        action="store_true",
        help="leave the observability registry off (disables /metrics "
        "content; endpoints still respond)",
    )
    return parser


def serve_main(argv: Optional[list] = None) -> int:
    """Entry point of the ``aalwines serve`` subcommand."""
    from repro.service.prefork import serve_forever
    from repro.service.ratelimit import RateLimitConfig

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    rate_limit = None
    if (
        args.rate_limit
        or args.interactive_rate is not None
        or args.sweep_rate is not None
        or args.max_active_jobs is not None
    ):
        defaults = RateLimitConfig.production_defaults()
        rate_limit = RateLimitConfig(
            interactive_rate=(
                args.interactive_rate
                if args.interactive_rate is not None
                else defaults.interactive_rate
            ),
            interactive_burst=defaults.interactive_burst,
            sweep_rate=(
                args.sweep_rate
                if args.sweep_rate is not None
                else defaults.sweep_rate
            ),
            sweep_burst=defaults.sweep_burst,
            active_jobs_per_client=(
                args.max_active_jobs
                if args.max_active_jobs is not None
                else defaults.active_jobs_per_client
            ),
        )
    try:
        serve_forever(
            host=args.host,
            port=args.port,
            workers=args.workers,
            store=args.store,
            rate_limit=rate_limit,
            verbose=args.verbose,
            observe=not args.no_observe,
        )
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "verify":
        # Explicit subcommand form; verification is also the default.
        argv = argv[1:]
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.profile:
        with obs.recording():
            code = _verify_main(args)
            print()
            print(obs.summary())
            if args.profile_trace:
                obs.write_trace(args.profile_trace)
        return code
    return _verify_main(args)


def _verify_main(args: argparse.Namespace) -> int:
    try:
        network = _load_network(args)
        wrote_something = False
        if args.write_topology:
            with open(args.write_topology, "w", encoding="utf-8") as handle:
                handle.write(topology_to_xml(network.topology))
            wrote_something = True
        if args.write_routing:
            with open(args.write_routing, "w", encoding="utf-8") as handle:
                handle.write(routing_to_xml(network))
            wrote_something = True
        if args.write_json:
            with open(args.write_json, "w", encoding="utf-8") as handle:
                handle.write(network_to_json(network))
            wrote_something = True
        if args.prob_threshold is not None or args.sweep_prob:
            return _run_prob_sweep(network, args)
        if args.sweep_failures is not None:
            return _run_sweep(network, args)
        if args.queries_file:
            return _run_batch(network, args)
        if args.query is None:
            if wrote_something:
                return 0
            print(
                f"loaded {network!r}; give --query to verify "
                "or --write-* to convert",
                file=sys.stderr,
            )
            return 3
        engine = _make_engine(network, args)
        result = engine.verify(args.query, timeout_seconds=args.timeout)
    except VerificationTimeout:
        print("TIMEOUT", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    try:
        _print_result(result, args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly with the
        # verdict code, like a well-behaved Unix tool.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    if result.status is Status.SATISFIED:
        return 0
    if result.status is Status.UNSATISFIED:
        return 1
    return 2


if __name__ == "__main__":
    sys.exit(main())
