"""What-if failover audit of a backbone network.

The motivating scenario of the paper's introduction: a human operator
must reason about what the network does *under failures*. This example
audits the GEANT-like European backbone:

1. for every label-switched path of the synthesized dataplane, check
   that the destination stays reachable when up to k links fail
   (policy compliance under failures — Problem 1);
2. for pairs that survive, quantify the *cost* of surviving: the extra
   hops of the minimal witness at k=1 versus the failure-free path
   (a quantitative property — Problem 2);
3. flag pairs whose protection is incomplete (reachable at k=0 but not
   guaranteed at k=1 — exactly the class of bugs §1 warns about).

Run:  python examples/failover_audit.py
"""

from repro import dual_engine, weighted_engine
from repro.datasets.queries import lsp_pairs
from repro.datasets.synthesis import SynthesisOptions, synthesize_network
from repro.datasets.zoo import geant
from repro.verification.results import Status


def main() -> None:
    network, report = synthesize_network(
        geant(), SynthesisOptions(service_tunnels=4, max_lsp_pairs=60, seed=3)
    )
    print(f"network: {network!r}")
    print(f"edge routers: {', '.join(report.edge_routers)}")
    print(f"protected links: {report.protected_links}")
    print()

    dual = dual_engine(network)
    hops_engine = weighted_engine(network, weight="hops")

    pairs = lsp_pairs(network)[:12]  # audit a slice, keep the demo quick
    print(f"{'ingress':<12} {'egress':<12} {'k=0':>6} {'k=1':>6} "
          f"{'hops':>5} {'hops@k1':>8}  note")
    print("-" * 72)
    fragile = []
    for ingress, egress in pairs:
        base_query = f"<ip> [.#{ingress}] .* [.#{egress}] <ip> 0"
        failover_query = f"<ip> [.#{ingress}] .* [.#{egress}] <ip> 1"
        base = dual.verify(base_query)
        failover = dual.verify(failover_query)

        note = ""
        base_hops = failover_hops = None
        if base.status is Status.SATISFIED:
            base_hops = hops_engine.verify(base_query).weight[0]
        if failover.status is Status.SATISFIED:
            failover_hops = hops_engine.verify(failover_query).weight[0]
        if base.satisfied and not failover.conclusive:
            note = "INCONCLUSIVE at k=1 — needs exact analysis"
            fragile.append((ingress, egress))
        elif base.satisfied and not failover.satisfied:
            note = "LOSES connectivity under single failure!"
            fragile.append((ingress, egress))

        print(
            f"{ingress:<12} {egress:<12} "
            f"{base.status.value[:5]:>6} {failover.status.value[:5]:>6} "
            f"{base_hops if base_hops is not None else '—':>5} "
            f"{failover_hops if failover_hops is not None else '—':>8}  {note}"
        )

    print()
    if fragile:
        print(f"{len(fragile)} pair(s) need operator attention: {fragile}")
    else:
        print("All audited pairs keep connectivity under any single failure.")

    # Deep-dive one pair: what does the failover route actually look like?
    ingress, egress = pairs[0]
    print()
    print(f"minimal-failure witness for {ingress} -> {egress} at k=1:")
    failures_engine = weighted_engine(network, weight="failures, hops")
    result = failures_engine.verify(
        f"<ip> [.#{ingress}] .* [.#{egress}] <ip> 1"
    )
    if result.trace is not None:
        print(result.trace.pretty())
        failed = sorted(link.name for link in result.failure_set)
        print(f"  requires failed links: {failed if failed else 'none'}")


if __name__ == "__main__":
    main()
