"""Quickstart: the paper's running example, end to end.

Builds the 5-router network of Figure 1, verifies the queries φ0–φ4 of
Figure 1d with the dual engine, and solves the §3 minimum-witness
problem (minimizing the vector ``(Hops, Failures + 3·Tunnels)``).

Run:  python examples/quickstart.py
"""

from repro import NetworkBuilder, dual_engine, weighted_engine
from repro.datasets.example import EXAMPLE_QUERIES, build_example_network


def build_tiny_network():
    """A minimal hand-built network, to show the builder API itself."""
    builder = NetworkBuilder("tiny")
    builder.link("in", "A", "B")
    builder.link("mid", "B", "C")
    builder.link("out", "C", "D")
    builder.rule("in", "ip1", "mid", "push(s10)")
    builder.rule("mid", "s10", "out", "pop")
    return builder.build()


def main() -> None:
    print("=" * 72)
    print("1. A three-hop network built with the public API")
    print("=" * 72)
    tiny = build_tiny_network()
    result = dual_engine(tiny).verify("<ip> [.#B] .* [C#.] <ip> 0")
    print(f"query: <ip> [.#B] .* [C#.] <ip> 0  ->  {result.summary()}")
    print(result.trace.pretty())

    print()
    print("=" * 72)
    print("2. The paper's running example (Figure 1), queries φ0–φ4")
    print("=" * 72)
    network = build_example_network()
    engine = dual_engine(network)
    for name, query in EXAMPLE_QUERIES:
        result = engine.verify(query)
        print(f"\n{name}:  {query}")
        print(f"  -> {result.summary()}")
        if result.trace is not None:
            print(result.trace.pretty())

    print()
    print("=" * 72)
    print("3. Minimum witness (§3): minimize (Hops, Failures + 3*Tunnels)")
    print("=" * 72)
    weighted = weighted_engine(network, weight="hops, failures + 3*tunnels")
    result = weighted.verify(dict(EXAMPLE_QUERIES)["phi4"])
    print(f"minimal witness weight: {result.weight} "
          f"(guaranteed minimal: {result.minimal_guaranteed})")
    print(result.trace.pretty())
    print("\nThe paper computes (5, 7) for σ2 and (5, 0) for σ3; the engine "
          "returns σ3, the lexicographic minimum.")


if __name__ == "__main__":
    main()
