"""Shared-risk link group what-if analysis (extension).

The paper motivates multi-failure analysis with *shared risk link
groups*: a single conduit cut or line-card failure takes down several
model links at once, so counting individual link failures understates
the real risk. This example models SRLGs on the NSFNET backbone and
asks the question an operator actually cares about: **which traffic
survives any single physical failure event?**

Run:  python examples/srlg_whatif.py
"""

from repro.datasets.queries import lsp_pairs
from repro.datasets.synthesis import SynthesisOptions, synthesize_network
from repro.datasets.zoo import nsfnet
from repro.model.srlg import SharedRiskGroups
from repro.verification.results import Status
from repro.verification.srlg import SrlgEngine


def shared_conduits(network):
    """Model conduits: both directions of a physical link always share
    fate, and a few geographically parallel spans share a trench."""
    groups = {}
    seen = set()
    for link in network.topology.links:
        if link.name in seen or link.source.name.startswith("ext_"):
            continue
        reverse = network.topology.reverse_link(link)
        if reverse is None or link.target.name.startswith("ext_"):
            continue
        seen.add(link.name)
        seen.add(reverse.name)
        groups[f"conduit_{link.source.name}_{link.target.name}"] = [
            link.name,
            reverse.name,
        ]
    return groups


def main() -> None:
    network, report = synthesize_network(
        nsfnet(), SynthesisOptions(service_tunnels=2, max_lsp_pairs=30, seed=5)
    )
    groups = shared_conduits(network)
    srlg = SharedRiskGroups(network, groups)
    print(f"network: {network!r}")
    print(f"failure events modelled: {len(groups)} conduits "
          f"(each kills both directions of a physical span)")
    print()

    engine = SrlgEngine(network, srlg, fallback_trace_length=9)
    pairs = lsp_pairs(network)[:8]
    print("Survivability audit: for every pair, verify delivery *given*")
    print("each conduit cut (universally quantified over failure events).")
    print()
    print(f"{'ingress':<8} {'egress':<8} {'survives':>9} {'of':>4}  first failing event")
    print("-" * 60)
    at_risk = []
    for ingress, egress in pairs:
        query = f"<ip> [.#{ingress}] .* [.#{egress}] <ip> 0"
        survived = 0
        first_failure = ""
        for event in sorted(groups):
            outcome = engine.verify_under_event(query, event)
            if outcome.status is Status.SATISFIED:
                survived += 1
            elif not first_failure:
                first_failure = event
        print(
            f"{ingress:<8} {egress:<8} {survived:>9} {len(groups):>4}  "
            f"{first_failure or '—'}"
        )
        if survived < len(groups):
            at_risk.append((ingress, egress, first_failure))
    print()

    # Contrast link-counting and event-counting semantics on one pair.
    ingress, egress = pairs[0]
    from repro.verification.engine import dual_engine

    link_view = dual_engine(network).verify(
        f"<ip> [.#{ingress}] .* [.#{egress}] <ip> 2"
    )
    event_view = engine.verify(
        f"<ip> [.#{ingress}] .* [.#{egress}] <ip> 0", max_group_failures=1
    )
    print(f"semantics comparison for {ingress} -> {egress}:")
    print(f"  ≤2 individual link failures: {link_view.status.value}")
    print(f"  ≤1 conduit event (≈2 links): {event_view.status.value}"
          + (f", event {sorted(event_view.failed_groups)}"
             if event_view.failed_groups else ""))
    if at_risk:
        print("\npairs needing attention (pair, first failing event):")
        for ingress, egress, event in at_risk:
            print(f"  {ingress} -> {egress}: vulnerable to {event}")
    else:
        print("\nEvery audited pair survives any single conduit cut.")


if __name__ == "__main__":
    main()
