"""Service-label transparency audit (the φ3 scenario of the paper).

An MPLS operator that carries neighbour traffic under *service labels*
must never leak internal transport labels to the neighbour: a packet
entering with service label ``s`` must leave with exactly one label on
top of its IP header. Query φ3 of the paper checks this for one label;
this example audits *every* service label of the NORDUnet substitute,
under 0, 1 and 2 link failures — the multi-failure case is where
hand-written failover rules typically break.

Run:  python examples/transparency_check.py
"""

from repro import dual_engine
from repro.datasets.nordunet import build_nordunet
from repro.datasets.queries import service_tunnel_route
from repro.verification.results import Status


def main() -> None:
    network, report = build_nordunet()
    print(f"network: {network!r}")
    service_labels = sorted(
        str(label)
        for label in network.labels.bottom_mpls_labels
        if label.name.startswith("svc") and label.name[3:].isdigit()
    )
    print(f"auditing {len(service_labels)} service labels "
          f"({', '.join(service_labels[:6])}, …)")
    print()

    engine = dual_engine(network)
    leaks = []
    print(f"{'service':<10} {'route':<30} {'k=0':>6} {'k=1':>6} {'k=2':>6}")
    print("-" * 64)
    for service in service_labels[:10]:  # audit a slice, keep the demo quick
        route = service_tunnel_route(network, service)
        if route is None:
            continue
        ingress = route[0].target.name
        egress = route[-1].source.name
        verdicts = []
        for k in (0, 1, 2):
            # Does any trace leak an extra MPLS label at the egress?
            query = (
                f"<[{service}] ip> [.#{ingress}] .* [{egress}#.] "
                f"<mpls+ smpls ip> {k}"
            )
            result = engine.verify(query)
            if result.status is Status.SATISFIED:
                verdicts.append("LEAK")
                leaks.append((service, k, result.trace))
            elif result.status is Status.INCONCLUSIVE:
                verdicts.append("?")
            else:
                verdicts.append("ok")
        route_text = "->".join(
            link.target.name for link in route if not link.target.name.startswith("ext_")
        )
        print(f"{service:<10} {route_text[:30]:<30} "
              f"{verdicts[0]:>6} {verdicts[1]:>6} {verdicts[2]:>6}")

    print()
    if leaks:
        service, k, trace = leaks[0]
        print(f"{len(leaks)} leak(s) found! Example: {service} at k={k}:")
        print(trace.pretty())
    else:
        print("No service label leaks internal transport labels, even under "
              "two simultaneous link failures — the dataplane is transparent.")

    # Bonus: confirm the service paths themselves survive failures.
    print()
    survivors = 0
    audited = 0
    for service in service_labels[:10]:
        route = service_tunnel_route(network, service)
        if route is None or len(route) < 3:
            continue
        ingress = route[0].target.name
        egress = route[-1].source.name
        audited += 1
        query = f"<[{service}] ip> [.#{ingress}] .* [{egress}#.] <smpls ip> 1"
        if engine.verify(query).status is Status.SATISFIED:
            survivors += 1
    print(f"service delivery under one failure: {survivors}/{audited} tunnels "
          "still reach their egress with the service label intact")


if __name__ == "__main__":
    main()
