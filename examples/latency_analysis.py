"""Quantitative latency what-if analysis (the §3 motivation).

"For example, traffic should be rerouted along *short* paths, e.g.,
regarding link latency …, even under a certain number of link
failures." This example uses the *Distance* atomic quantity with real
geographic coordinates (great-circle kilometres) on the Abilene
backbone:

1. for a set of city pairs, compute the km-length of the best
   failure-free route;
2. compute the best route achievable when a failure forces the traffic
   onto backup tunnels (minimizing ``(failures, distance)`` surfaces the
   cheapest rerouting, minimizing ``distance`` alone under k=1 bounds
   the best case);
3. report the worst-case *latency stretch* the failover design imposes,
   and the label-stack cost (tunnels) of surviving.

Run:  python examples/latency_analysis.py
"""

from repro import weighted_engine
from repro.datasets.queries import lsp_pairs, lsp_route
from repro.datasets.synthesis import SynthesisOptions, synthesize_network
from repro.datasets.zoo import abilene
from repro.verification.results import Status


def main() -> None:
    network, report = synthesize_network(
        abilene(), SynthesisOptions(service_tunnels=2, max_lsp_pairs=40, seed=9)
    )
    print(f"network: {network!r} (distances = great-circle km)")
    print()

    distance_engine = weighted_engine(network, weight="distance")
    reroute_engine = weighted_engine(network, weight="failures, distance")
    tunnel_engine = weighted_engine(network, weight="tunnels, distance")

    pairs = lsp_pairs(network)[:8]
    print(f"{'ingress':<14} {'egress':<14} {'km (k=0)':>9} {'km (k=1)':>9} "
          f"{'stretch':>8} {'tunnels':>8}")
    print("-" * 68)
    worst_stretch = 1.0
    worst_pair = None
    for ingress, egress in pairs:
        base_query = f"<ip> [.#{ingress}] .* [.#{egress}] <ip> 0"
        base = distance_engine.verify(base_query)
        if base.status is not Status.SATISFIED:
            continue
        base_km = base.weight[0]

        # Force a reroute: exclude the first primary link, allow 1 failure.
        route = lsp_route(network, ingress, egress)
        primary_first = route[1] if route is not None and len(route) > 1 else None
        if primary_first is None:
            continue
        reroute_query = (
            f"<ip> [.#{ingress}] "
            f"[^{primary_first.source.name}#{primary_first.target.name}] "
            f".* [.#{egress}] <ip> 1"
        )
        rerouted = reroute_engine.verify(reroute_query)
        if rerouted.status is Status.SATISFIED:
            rerouted_km = rerouted.weight[1]
            stretch = rerouted_km / max(1, base_km)
            tunnels_result = tunnel_engine.verify(reroute_query)
            tunnel_depth = tunnels_result.weight[0]
            if stretch > worst_stretch:
                worst_stretch = stretch
                worst_pair = (ingress, egress)
            print(f"{ingress:<14} {egress:<14} {base_km:>9} {rerouted_km:>9} "
                  f"{stretch:>7.2f}x {tunnel_depth:>8}")
        else:
            print(f"{ingress:<14} {egress:<14} {base_km:>9} {'—':>9} "
                  f"{'—':>8} {'—':>8}  (no reroute avoids the primary link)")

    print()
    if worst_pair is not None:
        print(f"worst latency stretch under rerouting: {worst_stretch:.2f}x "
              f"for {worst_pair[0]} -> {worst_pair[1]}")

    # Show one minimal-latency failover route in full.
    ingress, egress = pairs[0]
    print(f"\ncheapest single-failure routing {ingress} -> {egress} "
          "(minimizing failures, then km):")
    result = reroute_engine.verify(f"<ip> [.#{ingress}] .* [.#{egress}] <ip> 1")
    if result.trace is not None:
        print(result.trace.pretty())
        print(f"  weight (failures, km) = {result.weight}")


if __name__ == "__main__":
    main()
