"""Tests for the farm worker pool: parity, containment, crashes."""

import multiprocessing
import os

import pytest

from repro.datasets.example import EXAMPLE_QUERIES, build_example_network
from repro.errors import FarmError
from repro.farm.cache import hash_text
from repro.farm.pool import EngineConfig, FarmJob, execute_job, run_jobs
from repro.io.json_format import network_to_json
from repro.verification.engine import dual_engine, weighted_engine


@pytest.fixture(scope="module")
def network():
    return build_example_network()


@pytest.fixture(scope="module")
def payloads(network):
    payload = network_to_json(network)
    return {hash_text(payload): payload}


def _jobs_for(payloads, queries, **kwargs):
    (key,) = payloads
    return [
        FarmJob(name=name, query=text, network_key=key, **kwargs)
        for name, text in queries
    ]


class TestEngineConfig:
    def test_from_engine_round_trips_settings(self, network):
        engine = weighted_engine(network, weight="hops, failures + 3*tunnels")
        config = EngineConfig.from_engine(engine)
        assert config.weight == "hops, failures + 3*tunnels"
        rebuilt = config.build(network)
        assert rebuilt.backend == engine.backend
        assert rebuilt.weight_vector == engine.weight_vector

    def test_rejects_unpicklable_distance_callable(self, network):
        engine = dual_engine(network, distance_of=lambda link: 1)
        with pytest.raises(FarmError, match="distance_of"):
            EngineConfig.from_engine(engine)


class TestExecuteJob:
    def test_runs_one_job_in_process(self, network, payloads):
        (job,) = _jobs_for(payloads, [("phi0", EXAMPLE_QUERIES[0][1])])
        item = execute_job(job)
        assert item.outcome == "satisfied"
        assert item.result is not None

    def test_unknown_network_key_is_contained(self):
        job = FarmJob(name="q", query="<ip> . <ip> 0", network_key="deadbeef")
        results = run_jobs([job], networks={}, max_workers=1)
        assert results[0].outcome == "error"
        assert "no network registered" in results[0].error


class TestParallelParity:
    def test_verdicts_match_serial(self, payloads):
        jobs = _jobs_for(payloads, list(EXAMPLE_QUERIES))
        serial = run_jobs(jobs, payloads, max_workers=1)
        parallel = run_jobs(jobs, payloads, max_workers=2)
        assert [(i.name, i.outcome) for i in serial] == [
            (i.name, i.outcome) for i in parallel
        ]

    def test_progress_reports_every_index(self, payloads):
        jobs = _jobs_for(payloads, list(EXAMPLE_QUERIES))
        seen = []
        run_jobs(
            jobs,
            payloads,
            max_workers=2,
            progress=lambda index, total, item: seen.append((index, total)),
        )
        assert sorted(index for index, _ in seen) == [0, 1, 2, 3, 4]
        assert all(total == 5 for _, total in seen)

    def test_bad_query_becomes_error_item_in_workers(self, payloads):
        jobs = _jobs_for(
            payloads,
            [("bad", "<ip .* garbage"), ("good", EXAMPLE_QUERIES[0][1])],
        )
        results = run_jobs(jobs, payloads, max_workers=2)
        assert results[0].outcome == "error"
        assert results[1].outcome == "satisfied"

    def test_cancellation_skips_remaining(self, payloads):
        jobs = _jobs_for(payloads, list(EXAMPLE_QUERIES))
        fired = []

        def cancelled():
            return bool(fired)

        def progress(index, total, item):
            fired.append(index)

        results = run_jobs(
            jobs, payloads, max_workers=1, progress=progress, cancelled=cancelled
        )
        assert results[0] is not None
        assert results[-1] is None  # later jobs never ran


class _CrashingConfig(EngineConfig):
    """An engine config whose build kills the worker process outright."""

    def build(self, network):
        os._exit(13)


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash injection relies on fork inheriting the test class",
)
def test_worker_crash_surfaces_as_error_items(payloads):
    (key,) = payloads
    jobs = [
        FarmJob(
            name=f"crash{i}",
            query=EXAMPLE_QUERIES[0][1],
            network_key=key,
            config=_CrashingConfig(),
        )
        for i in range(3)
    ]
    results = run_jobs(jobs, payloads, max_workers=2)
    assert all(item is not None for item in results)
    assert all(item.outcome == "error" for item in results)
    assert any("worker failed" in item.error for item in results)


# ----------------------------------------------------------------------
# incremental-core crash containment
# ----------------------------------------------------------------------

#: Worker-local build counter for the mid-sweep crash injection; each
#: forked worker starts from the parent's (zero) value.
_INCREMENTAL_BUILDS = 0


class _MidSweepCrashConfig(EngineConfig):
    """An incremental-core config that kills its worker *mid-sweep*:
    the first variant engines build (and solve against the shared
    baseline family) normally, then one build never returns — the
    tightest crash point injectable without reaching into the solver."""

    def build(self, network, baseline=None):
        global _INCREMENTAL_BUILDS
        _INCREMENTAL_BUILDS += 1
        if _INCREMENTAL_BUILDS >= 3:
            os._exit(13)
        return super().build(network, baseline)


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash injection relies on fork inheriting the test class",
)
def test_incremental_worker_crash_is_contained(network):
    """A worker killed mid-variant must surface as error items in the
    run snapshot — and must not corrupt the shared baseline artifact:
    the identical sweep re-run afterwards matches a scratch-core sweep
    verdict for verdict."""
    from repro.farm.jobs import JobManager
    from repro.farm.scenarios import link_audit_scenarios, scenarios_to_jobs
    from repro.verification.incremental import clear_incremental_families

    scenarios = link_audit_scenarios(network, [("phi0", EXAMPLE_QUERIES[0][1])])
    crashing = _MidSweepCrashConfig(triage="off", core="incremental")
    jobs, payloads, prebuilt = scenarios_to_jobs(
        scenarios, config=crashing, baseline=network
    )
    assert all(job.config.baseline_key is not None for job in jobs)

    manager = JobManager()
    run = manager.submit(jobs, payloads, max_workers=2, prebuilt=prebuilt)
    assert run.wait(180)
    snapshot = run.snapshot()
    assert snapshot["state"] == "done"
    assert snapshot["summary"]["errors"] >= 1  # the crash is reported
    assert any(
        item is not None
        and item.outcome == "error"
        and "worker failed" in item.error
        for item in run.items
    )

    # Same sweep again, serially in this (parent) process: the baseline
    # artifact and solver family the crashed workers shared must still
    # produce exactly the scratch core's verdicts.
    clear_incremental_families()
    clean = EngineConfig(triage="off", core="incremental")
    jobs2, payloads2, prebuilt2 = scenarios_to_jobs(
        scenarios, config=clean, baseline=network
    )
    repaired = run_jobs(jobs2, payloads2, max_workers=1, prebuilt=prebuilt2)
    scratch_jobs, scratch_payloads, scratch_prebuilt = scenarios_to_jobs(
        scenarios, config=EngineConfig(triage="off")
    )
    scratch = run_jobs(
        scratch_jobs, scratch_payloads, max_workers=1, prebuilt=scratch_prebuilt
    )
    assert [item.outcome for item in repaired] == [
        item.outcome for item in scratch
    ]
    assert [repr(item.result.trace) if item.result else None for item in repaired] == [
        repr(item.result.trace) if item.result else None for item in scratch
    ]
