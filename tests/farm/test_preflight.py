"""Tests for pre-flight linting of farm sweeps and batches.

Pre-flight attaches :mod:`repro.analysis` findings to scenarios, batch
items and job snapshots so a sweep's what-if verdicts arrive alongside
the static defects of each degraded variant.
"""

import pytest

from repro.datasets.example import EXAMPLE_QUERIES, build_example_network
from repro.farm.jobs import DONE, JobManager
from repro.farm.scenarios import (
    clear_preflight_memo,
    failure_scenarios,
    preflight_index,
    preflight_scenarios,
    scenarios_to_jobs,
    suite_scenarios,
)
from repro.verification.batch import BatchVerifier
from repro.verification.engine import VerificationEngine

PHI0 = EXAMPLE_QUERIES[0][1]


@pytest.fixture(autouse=True)
def fresh_memo():
    """The preflight lint memo is process-global and content-keyed, so
    earlier tests' runs would satisfy later counts; start each clean."""
    clear_preflight_memo()
    yield
    clear_preflight_memo()


@pytest.fixture(scope="module")
def network():
    return build_example_network()


class TestScenarioPreflight:
    def test_default_sweep_attaches_nothing(self, network):
        for scenario in failure_scenarios(network, PHI0, max_failures=1):
            assert scenario.diagnostics == ()

    def test_preflight_attaches_findings(self, network):
        scenarios = failure_scenarios(
            network, PHI0, max_failures=1, preflight=True
        )
        by_name = {s.name: s for s in scenarios}
        # The intact example carries the deliberate DP006 overlap.
        baseline = by_name["query@baseline"]
        assert [d.code for d in baseline.diagnostics] == ["DP006"]
        # Failing e5 exhausts a protection chain: the degraded variant
        # lints as a DP001 black hole on top of the overlap.
        codes = {d.code for d in by_name["query@fail(e5)"].diagnostics}
        assert "DP001" in codes

    def test_variants_are_linted_once(self, network, monkeypatch):
        from repro.analysis import analyze as real_analyze

        calls = []

        def counting(net, *args, **kwargs):
            calls.append(net)
            return real_analyze(net, *args, **kwargs)

        import repro.analysis

        monkeypatch.setattr(repro.analysis, "analyze", counting)
        queries = [PHI0, EXAMPLE_QUERIES[1][1], EXAMPLE_QUERIES[2][1]]
        scenarios = failure_scenarios(
            network, queries, max_failures=1, preflight=True
        )
        variants = {id(s.network) for s in scenarios}
        # One network lint per variant, plus one DP007 query lint per
        # (variant, query) pair — each memoized by content, so no
        # variant or query pays twice.
        assert len(calls) == len(variants) * (1 + len(queries))
        assert len(scenarios) == len(variants) * len(queries)

    def test_suite_preflight(self, network):
        scenarios = suite_scenarios(network, [PHI0], preflight=True)
        assert [d.code for d in scenarios[0].diagnostics] == ["DP006"]

    def test_preflight_scenarios_is_idempotent(self, network):
        once = preflight_scenarios(suite_scenarios(network, [PHI0]))
        twice = preflight_scenarios(once)
        assert [s.diagnostics for s in once] == [s.diagnostics for s in twice]

    def test_preflight_index(self, network):
        scenarios = suite_scenarios(network, [PHI0, PHI0], preflight=True)
        index = preflight_index(scenarios)
        assert set(index) == {0, 1}
        assert all(d.code == "DP006" for ds in index.values() for d in ds)
        assert preflight_index(suite_scenarios(network, [PHI0])) == {}


class TestJobManagerPreflight:
    def test_snapshot_surfaces_findings(self, network):
        manager = JobManager()
        try:
            scenarios = suite_scenarios(network, [PHI0], preflight=True)
            jobs, payloads, prebuilt = scenarios_to_jobs(scenarios)
            run = manager.submit(
                jobs,
                payloads,
                prebuilt=prebuilt,
                preflight=preflight_index(scenarios),
            )
            assert run.wait(timeout=120)
            assert run.state == DONE
            document = run.snapshot()
            assert document["preflight"]["flagged"] == 1
            assert document["preflight"]["diagnostics"] == 1
            assert document["items"][0]["diagnostics"][0]["code"] == "DP006"
        finally:
            manager.shutdown(timeout=10)

    def test_no_preflight_keeps_snapshot_unchanged(self, network):
        manager = JobManager()
        try:
            scenarios = suite_scenarios(network, [PHI0])
            jobs, payloads, prebuilt = scenarios_to_jobs(scenarios)
            run = manager.submit(jobs, payloads, prebuilt=prebuilt)
            assert run.wait(timeout=120)
            document = run.snapshot()
            assert "preflight" not in document
            assert "diagnostics" not in document["items"][0]
        finally:
            manager.shutdown(timeout=10)


class TestBatchPreflight:
    def test_serial_batch_attaches_diagnostics(self, network):
        verifier = BatchVerifier(VerificationEngine(network), preflight=True)
        items, summary = verifier.run([PHI0])
        assert summary.satisfied == 1
        assert [d.code for d in items[0].diagnostics] == ["DP006"]

    def test_parallel_batch_attaches_diagnostics(self, network):
        verifier = BatchVerifier(
            VerificationEngine(network), jobs=2, preflight=True
        )
        items, summary = verifier.run([PHI0, EXAMPLE_QUERIES[1][1]])
        assert summary.total == 2
        for item in items:
            assert [d.code for d in item.diagnostics] == ["DP006"]

    def test_batch_default_attaches_nothing(self, network):
        verifier = BatchVerifier(VerificationEngine(network))
        items, _summary = verifier.run([PHI0])
        assert items[0].diagnostics == ()
